//! # jade-repro — umbrella crate
//!
//! Re-exports the reproduction's crates so the workspace-level examples
//! and integration tests have a single dependency root. See the `jade`
//! crate for the system itself.

#![forbid(unsafe_code)]

pub use jade;
pub use jade_cluster;
pub use jade_fractal;
pub use jade_rubis;
pub use jade_sim;
pub use jade_tiers;
