//! Self-sizing demo: the paper's headline behaviour (§4–§5) on a
//! compressed workload ramp. Watch Jade allocate database backends and
//! application servers as the load climbs, and release them as it falls.
//!
//! ```sh
//! cargo run --release --example self_sizing
//! ```

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade::system::ManagedTier;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn main() {
    let mut cfg = SystemConfig::paper_managed();
    // The paper's 80 → 500 → 80 ramp, compressed 3× so the demo runs in a
    // couple of seconds of wall time (1000 s of virtual time).
    cfg.ramp = WorkloadRamp {
        base_clients: 80,
        peak_clients: 500,
        step_clients: 42,
        step_interval: SimDuration::from_secs(30),
        warmup: SimDuration::from_secs(60),
        plateau: SimDuration::from_secs(120),
    };
    println!("running the compressed 80 → 500 → 80 ramp against the managed system…");
    let out = run_experiment(cfg, SimDuration::from_secs(1000));

    println!("\nreconfiguration journal (the autonomic manager at work):");
    for (t, line) in &out.app.reconfig_log {
        println!("  [{t:>9}] {line}");
    }

    println!("\nreplica counts over time:");
    for tier in [ManagedTier::Database, ManagedTier::Application] {
        print!("  {tier:?}: ");
        for (t, v) in out.replica_steps(tier) {
            print!("{v:.0} (t={t:.0}s) → ");
        }
        println!("end");
    }

    println!(
        "\nclients were served throughout: {} completed, {} failed, mean latency {:.0} ms",
        out.app.stats.total_completed(),
        out.app.stats.total_failed(),
        out.mean_latency_ms()
    );
    assert!(out.max_replicas(ManagedTier::Database) >= 2);
}
