//! Capacity planning: the analytic queueing model vs the simulated
//! system.
//!
//! The paper calibrated Jade's thresholds "experimentally with some
//! benchmarks" (§4.2). The [`jade::planner`] module provides the
//! closed-form counterpart; this example prints its predictions for the
//! Figure 5 scenario and then runs the simulation to compare.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade::planner::CapacityModel;
use jade::system::ManagedTier;
use jade_sim::SimDuration;

fn main() {
    let cfg = SystemConfig::paper_managed();
    let model = CapacityModel::from_workload(cfg.think_time.as_secs_f64());
    println!(
        "workload calibration: servlet {:.1} ms, database {:.1} ms per interaction, think {:.1} s",
        model.servlet_demand_s * 1e3,
        model.db_demand_s * 1e3,
        model.think_time_s
    );

    // Sizing questions a capacity planner answers without simulating.
    println!("\nanalytic sizing (threshold 0.75 db / 0.70 app):");
    for clients in [80.0, 200.0, 350.0, 500.0] {
        let db = model.replicas_needed(clients, model.db_demand_s, 0.75);
        let app = model.replicas_needed(clients, model.servlet_demand_s, 0.70);
        let r = model.response_time_s(clients, app, db);
        println!(
            "  {clients:>5.0} clients -> {db} database backend(s), {app} application server(s), \
             predicted response {:.0} ms",
            r * 1e3
        );
    }

    // Predicted Figure 5 transitions.
    let predicted = model.predict_ramp_up(
        80.0,
        500.0,
        cfg.jade.db_loop.max_threshold,
        cfg.jade.app_loop.max_threshold,
        4,
    );
    println!("\npredicted scale-up points for the 80 -> 500 ramp:");
    for t in &predicted {
        println!(
            "  ~{:>4.0} clients: {} -> {} replicas",
            t.clients,
            if t.database {
                "database"
            } else {
                "application"
            },
            t.replicas
        );
    }

    // Now the ground truth: the simulated managed run.
    println!("\nsimulating the managed ramp (3000 s of virtual time)…");
    let out = run_experiment(cfg, SimDuration::from_secs(3000));
    let clients_at = |t: f64| {
        out.series("clients")
            .iter()
            .take_while(|&&(ct, _)| ct <= t)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    println!("simulated scale-up points:");
    for tier in [ManagedTier::Database, ManagedTier::Application] {
        let mut last = 1.0;
        for (t, v) in out.replica_steps(tier) {
            if v > last {
                println!(
                    "  ~{:>4.0} clients: {tier:?} -> {v:.0} replicas",
                    clients_at(t)
                );
            }
            last = v;
        }
    }
    println!(
        "\n(the analytic model ignores the 60–90 s sensor smoothing, which delays the simulated \
         transitions slightly — the agreement is the paper's calibration made explicit)"
    );
}
