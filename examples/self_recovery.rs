//! Self-recovery demo (paper §3.4's second control loop, detailed in
//! reference [4]): a node hosting a Tomcat replica crashes mid-run; the
//! failure detector spots the failed component, detaches it from the load
//! balancer, and redeploys a replacement on a fresh node — without human
//! intervention. Later a database backend's node crashes; its replacement
//! resynchronizes through the C-JDBC recovery log before activating.
//!
//! ```sh
//! cargo run --release --example self_recovery
//! ```

use jade::config::SystemConfig;
use jade::experiment::run_experiment_with;
use jade::system::{ManagedTier, Msg};
use jade_cluster::NodeId;
use jade_rubis::WorkloadRamp;
use jade_sim::{Addr, SimDuration, SimTime};
use jade_tiers::Tier;

fn main() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(120);
    cfg.jade.self_repair = true;
    // Start with two replicas at each tier so the service survives the
    // hit, and tell the self-optimizer never to go below two (otherwise
    // it would rightly reclaim the idle replicas before the crash).
    cfg.description.application.replicas = 2;
    cfg.description.database.replicas = 2;
    cfg.jade.app_loop.min_replicas = 2;
    cfg.jade.db_loop.min_replicas = 2;

    println!("running 120 clients against 2 Tomcats + 2 MySQLs with self-recovery enabled…");
    let out = run_experiment_with(cfg, SimDuration::from_secs(600), |engine| {
        // Deployment order is deterministic: node1=C-JDBC, node2=PLB,
        // node3/4=Tomcat1/2, node5/6=MySQL1/2.
        engine.schedule(
            SimTime::from_secs(150),
            Addr::ROOT,
            Msg::CrashNode(NodeId(3)), // Tomcat2's node
        );
        engine.schedule(
            SimTime::from_secs(350),
            Addr::ROOT,
            Msg::CrashNode(NodeId(5)), // MySQL2's node
        );
    });

    println!("\nreconfiguration journal:");
    for (t, line) in &out.app.reconfig_log {
        println!("  [{t:>9}] {line}");
    }

    let app = out.app.running_replicas(ManagedTier::Application);
    let db = out.app.running_replicas(ManagedTier::Database);
    println!("\nfinal replicas: application={app}, database={db} (both restored to 2)");
    assert_eq!(app, 2, "the application tier must be repaired");
    assert_eq!(db, 2, "the database tier must be repaired");

    // The repaired database tier is consistent: every running replica
    // holds the same state (recovery-log replay, paper §4.1).
    let digests: Vec<u64> = out
        .app
        .legacy
        .running_servers_of(Tier::Database)
        .into_iter()
        .map(|s| out.app.legacy.mysql(s).expect("db server").digest())
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replicas must converge after repair"
    );
    println!("database replicas converged (identical content digests) ✓");
    println!(
        "service continuity: {} requests completed, {} failed during the two crashes",
        out.app.stats.total_completed(),
        out.app.stats.total_failed()
    );
}
