//! Quickstart: describe a clustered J2EE application in the ADL, deploy
//! it on the simulated cluster under Jade's management, run it under load
//! for five virtual minutes, and introspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jade::adl::J2eeDescription;
use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade::system::ManagedTier;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn main() {
    // 1. The architecture, as the paper's XML ADL (§3.3).
    let adl = r#"
        <j2ee name="rubis">
            <!-- one replicated servlet tier behind PLB -->
            <tier kind="application" replicas="1" policy="round-robin"/>
            <!-- one replicated database tier behind C-JDBC -->
            <tier kind="database" replicas="1" read-policy="least-pending"/>
        </j2ee>
    "#;
    let description = J2eeDescription::from_xml(adl).expect("valid ADL");
    println!(
        "deploying '{}' ({} initial nodes + client emulator)",
        description.name,
        description.initial_nodes()
    );

    // 2. Configure the experiment: Jade managed, steady 80 clients.
    let mut cfg = SystemConfig::paper_managed();
    cfg.description = description;
    cfg.ramp = WorkloadRamp::constant(80);

    // 3. Run five virtual minutes.
    let out = run_experiment(cfg, SimDuration::from_secs(300));

    // 4. Introspect: the management layer sees the whole architecture as
    //    one composite component (paper §3.2).
    println!("\nmanaged architecture:\n{}", out.app.render_architecture());
    println!("Jade's own components:\n{}", {
        // Jade administrates itself: the managers are components too.
        let reg = &out.app.registry;
        let jade_root = reg
            .ids()
            .into_iter()
            .find(|&id| reg.name(id).as_deref() == Ok("jade"))
            .expect("jade composite");
        reg.render_tree(jade_root)
    });

    // 5. What happened.
    println!(
        "served {} requests at {:.1} req/s, mean latency {:.0} ms, {} failures",
        out.app.stats.total_completed(),
        out.throughput(),
        out.mean_latency_ms(),
        out.app.stats.total_failed()
    );
    println!(
        "replicas: application={}, database={}, nodes allocated={}",
        out.app.running_replicas(ManagedTier::Application),
        out.app.running_replicas(ManagedTier::Database),
        out.app.allocated_nodes()
    );
    println!(
        "management operations journaled: {}",
        out.app.registry.journal_len()
    );
}
