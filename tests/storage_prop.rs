//! Differential property test: the interned, index-accelerated storage
//! engine (`jade_tiers::Database`) against the original name-keyed
//! scan-everything engine it replaced (kept as `jade_bench::NaiveDatabase`).
//!
//! Random schemas (some columns indexed, some not) are driven through
//! random create / insert / update / delete / select / count sequences,
//! including NULL values in inserts, update-to-NULL (column removal) and
//! NULL equality filters. After *every* statement the two engines must
//! agree on
//!
//! * the result — rows converted to the naive column-map form, NULLs
//!   elided — and on which statements error,
//! * the content digest (the interned engine reproduces the historical
//!   digest byte for byte, so this is exact equality, not isomorphism).
//!
//! A second property replays the C-JDBC recovery log into a late-joining
//! replica and requires convergence to the active replicas' digest — the
//! paper's §4.1 state-reconciliation invariant, now across both engines.
//!
//! Reproduce a failure with `PROPCHECK_SEED` / `PROPCHECK_CASES` as
//! printed by the harness.

use jade_bench::{NaiveDatabase, NaiveQueryResult, NaiveRow};
use jade_propcheck::{run, Gen};
use jade_tiers::cjdbc::{CjdbcController, ReadPolicy};
use jade_tiers::sql::{ColId, QueryResult, Schema, Statement, TableId, Value};
use jade_tiers::storage::Database;
use jade_tiers::ServerId;
use std::sync::Arc;

const TABLE_NAMES: &[&str] = &["t0", "t1", "t2"];
const COL_NAMES: &[&str] = &["c0", "c1", "c2", "c3"];
const MAX_KEY: u64 = 32;

/// A random schema: 1–3 tables, 1–4 columns each, roughly half of the
/// columns carrying a secondary index.
fn gen_schema(g: &mut Gen) -> Arc<Schema> {
    let tables = g.usize(1..4);
    let mut b = Schema::builder();
    let mut indexed = Vec::new();
    for t in TABLE_NAMES.iter().take(tables) {
        let cols = g.usize(1..5);
        b = b.table(t, &COL_NAMES[..cols]);
        for c in COL_NAMES.iter().take(cols) {
            if g.bool() {
                indexed.push((*t, *c));
            }
        }
    }
    for (t, c) in indexed {
        b = b.index(t, c);
    }
    b.build()
}

fn gen_value(g: &mut Gen) -> Value {
    match g.weighted(&[2, 5, 2]) {
        0 => Value::Null,
        // A small value domain so equality filters and no-op updates hit.
        1 => Value::Int(g.u64(0..6) as i64),
        _ => Value::Text(g.choose(&["x", "y", "zz"]).to_string()),
    }
}

/// One random statement against `schema`. Tables are drawn from the full
/// name pool, so statements against never-created tables exercise the
/// error path of both engines.
fn gen_statement(g: &mut Gen, schema: &Schema) -> Statement {
    let table = TableId(g.u64(0..schema.len() as u64) as u16);
    let def = schema.table(table).expect("in range");
    let width = def.width();
    match g.weighted(&[2, 6, 4, 2, 5, 5, 2]) {
        0 => Statement::CreateTable { table },
        1 => {
            let row = (0..width).map(|_| gen_value(g)).collect();
            Statement::Insert { table, row }
        }
        2 => {
            let set = (0..g.usize(1..width + 1))
                .map(|_| (ColId(g.u64(0..width as u64) as u16), gen_value(g)))
                .collect();
            Statement::Update {
                table,
                key: g.u64(0..MAX_KEY),
                set,
            }
        }
        3 => Statement::Delete {
            table,
            key: g.u64(0..MAX_KEY),
        },
        4 => Statement::SelectByKey {
            table,
            key: g.u64(0..MAX_KEY),
        },
        5 => Statement::SelectWhere {
            table,
            column: ColId(g.u64(0..width as u64) as u16),
            value: gen_value(g),
            limit: g.usize(1..8),
        },
        _ => Statement::Count { table },
    }
}

/// Converts an interned result into the naive engine's shape: rows become
/// name-keyed column maps with NULL holes elided.
fn naive_shape(schema: &Schema, stmt: &Statement, res: &QueryResult) -> NaiveQueryResult {
    match res {
        QueryResult::Ack {
            inserted_key,
            affected,
        } => NaiveQueryResult::Ack {
            inserted_key: *inserted_key,
            affected: *affected,
        },
        QueryResult::Count(n) => NaiveQueryResult::Count(*n),
        QueryResult::Rows(rows) => {
            let def = schema.table(stmt.table()).expect("in catalog");
            NaiveQueryResult::Rows(
                rows.iter()
                    .map(|(k, row)| {
                        let mut cols = NaiveRow::new();
                        for (ci, v) in row.iter().enumerate() {
                            if !v.is_null() {
                                cols.insert(def.column(ColId(ci as u16)).to_owned(), v.clone());
                            }
                        }
                        (*k, cols)
                    })
                    .collect(),
            )
        }
    }
}

/// Both engines agree on every result, every error, and the digest after
/// every single statement.
#[test]
fn interned_engine_matches_naive_reference() {
    run("interned_engine_matches_naive_reference", 256, |g| {
        let schema = gen_schema(g);
        let stmts = g.vec(1..80, |g| gen_statement(g, &schema));
        let mut interned = Database::new(Arc::clone(&schema));
        let mut naive = NaiveDatabase::new();
        for (step, stmt) in stmts.iter().enumerate() {
            let a = interned.execute(stmt);
            let b = naive.execute(&schema, stmt);
            match (&a, &b) {
                (Ok(ra), Ok(rb)) => {
                    assert_eq!(
                        &naive_shape(&schema, stmt, ra),
                        rb,
                        "result mismatch at step {step} on {stmt:?}"
                    );
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "error mismatch at step {step} on {stmt:?}")
                }
                _ => panic!("outcome mismatch at step {step} on {stmt:?}: {a:?} vs {b:?}"),
            }
            assert_eq!(
                interned.digest(),
                naive.digest(),
                "digest diverged at step {step} after {stmt:?}"
            );
        }
    });
}

/// Recovery-log replay converges a late joiner on both engines: writes go
/// through the controller to one active replica of each kind; a second
/// pair of replicas then joins by replaying the logged statements, and all
/// four digests must be equal.
#[test]
fn recovery_replay_converges_on_both_engines() {
    run("recovery_replay_converges_on_both_engines", 128, |g| {
        let schema = gen_schema(g);
        let writes: Vec<Statement> = {
            // Only writes reach the log; creates come first so most
            // statements land in existing tables.
            let mut out: Vec<Statement> = (0..schema.len())
                .map(|t| Statement::CreateTable {
                    table: TableId(t as u16),
                })
                .collect();
            out.extend(
                g.vec(1..60, |g| gen_statement(g, &schema))
                    .into_iter()
                    .filter(|s| s.is_write()),
            );
            out
        };

        let mut ctrl = CjdbcController::new(ReadPolicy::RoundRobin, Arc::clone(&schema));
        let active = ServerId(0);
        ctrl.register_backend(active);
        assert!(ctrl.begin_enable(active).unwrap().is_empty());
        assert!(ctrl.finish_replay(active).unwrap().is_none());

        let mut interned = Database::new(Arc::clone(&schema));
        let mut naive = NaiveDatabase::new();
        for stmt in &writes {
            let stmt = Arc::new(stmt.clone());
            ctrl.route_write(Arc::clone(&stmt)).unwrap();
            let _ = interned.execute(&stmt);
            let _ = naive.execute(&schema, &stmt);
        }

        // A fresh pair of replicas joins by replaying the exact log suffix.
        let joiner = ServerId(1);
        ctrl.register_backend(joiner);
        let mut late_interned = Database::new(Arc::clone(&schema));
        let mut late_naive = NaiveDatabase::new();
        let mut batch = ctrl.begin_enable(joiner).unwrap();
        loop {
            for entry in &batch.entries {
                let _ = late_interned.execute(&entry.statement);
                let _ = late_naive.execute(&schema, &entry.statement);
            }
            match ctrl.finish_replay(joiner).unwrap() {
                Some(next) => batch = next,
                None => break,
            }
        }

        let d = interned.digest();
        assert_eq!(d, naive.digest(), "engines diverged on the write stream");
        assert_eq!(d, late_interned.digest(), "interned joiner diverged");
        assert_eq!(d, late_naive.digest(), "naive joiner diverged");
    });
}
