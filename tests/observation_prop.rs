//! Differential property tests of the streaming observation plane
//! against the retained naive implementations in `jade_bench`.
//!
//! The streamed structures — the ring-buffer [`MovingAverage`], the
//! cursor-cached [`TimeSeries`] window reads, the dense probe-tick
//! spatial averages, and the dense heartbeat table — all replaced
//! allocation-heavy equivalents (`VecDeque` windows, from-scratch
//! window scans, `BTreeMap`-keyed samples and heartbeats). These
//! properties pin the replacements to the originals **bit-for-bit**
//! (`to_bits()`, not approximate equality): the optimization must not
//! perturb a single float, or every committed experiment digest drifts.

use jade_bench::{naive_time_weighted_mean, naive_value_at, NaiveMovingAverage, NaiveObservation};
use jade_cluster::{ClusterManager, NodeId, NodeSpec};
use jade_propcheck::run;
use jade_sim::{JobId, MovingAverage, Retention, SeriesCursor, SimDuration, SimTime, TimeSeries};
use std::collections::BTreeMap;

/// The ring-backed moving average is bit-identical to the `VecDeque`
/// baseline across random sample cadences — including cadences much
/// faster than the sizing period, which force the ring through its
/// `grow()` path, and gaps much longer than the window, which evict
/// everything at once.
#[test]
fn ring_moving_average_matches_vecdeque() {
    run("ring_moving_average_matches_vecdeque", 256, |g| {
        let window = SimDuration::from_micros(g.u64(1..120_000_000));
        let period = SimDuration::from_micros(g.u64(0..10_000_000));
        let mut ring = if g.bool() {
            MovingAverage::with_period(window, period)
        } else {
            MovingAverage::new(window)
        };
        let mut naive = NaiveMovingAverage::new(window);
        let mut t = SimTime::ZERO;
        let steps = g.usize(1..400);
        for _ in 0..steps {
            // Mostly short steps (dense sampling, eviction at the window
            // boundary), occasionally a jump past the whole window.
            let dt = if g.u8() < 16 {
                g.u64(0..4 * window.as_micros().max(1))
            } else {
                g.u64(0..2_000_000)
            };
            t += SimDuration::from_micros(dt);
            let v = g.f64(-1.0..2.0);
            ring.record(t, v);
            naive.record(t, v);
            assert_eq!(ring.sample_count(), naive.sample_count());
            match (ring.value(), naive.value()) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "ring {a} != naive {b} at t={t:?}")
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    });
}

/// Cursor-cached window reads over a `TimeSeries` equal both the
/// from-scratch `time_weighted_mean` and the naive linear-scan
/// reference, under a random walk of the window — forward sweeps
/// (the hot path) and arbitrary rewinds (which invalidate the cursor).
#[test]
fn cached_window_reads_match_scratch() {
    run("cached_window_reads_match_scratch", 256, |g| {
        let mut ts = TimeSeries::new();
        let mut t = 0u64;
        let n = g.usize(1..300);
        for _ in 0..n {
            t += g.u64(0..3_000_000);
            ts.record(SimTime::from_micros(t), g.f64(-10.0..10.0));
        }
        let mut mean_cursor = SeriesCursor::new();
        let mut at_cursor = SeriesCursor::new();
        let span = t + 4_000_000;
        let mut from = 0u64;
        let reads = g.usize(1..60);
        for _ in 0..reads {
            // Mostly advance, sometimes rewind to a random earlier point.
            from = if g.u8() < 48 {
                g.u64(0..span)
            } else {
                (from + g.u64(0..span / 8 + 1)).min(span)
            };
            let to = from + g.u64(0..span / 4 + 1);
            let (f, to) = (SimTime::from_micros(from), SimTime::from_micros(to));
            let cached = ts.time_weighted_mean_cached(&mut mean_cursor, f, to);
            let scratch = ts.time_weighted_mean(f, to);
            let naive = naive_time_weighted_mean(ts.points(), f, to);
            assert_eq!(cached.map(f64::to_bits), scratch.map(f64::to_bits));
            assert_eq!(cached.map(f64::to_bits), naive.map(f64::to_bits));

            let at = ts.value_at_cached(&mut at_cursor, f, -1.0);
            assert_eq!(at.to_bits(), naive_value_at(ts.points(), f, -1.0).to_bits());
            assert_eq!(at.to_bits(), ts.value_at(f, -1.0).to_bits());
        }
    });
}

/// Ring retention keeps a suffix of the full series: every retained
/// point appears in the keep-all twin at the same position from the
/// end, and windowed reads over the retained span agree bit-for-bit.
#[test]
fn ring_retention_is_a_suffix() {
    run("ring_retention_is_a_suffix", 128, |g| {
        let cap = g.usize(1..64);
        let mut ring = TimeSeries::with_retention(Retention::Ring(cap));
        let mut full = TimeSeries::new();
        let mut t = 0u64;
        for _ in 0..g.usize(1..400) {
            t += g.u64(1..2_000_000);
            let v = g.f64(-5.0..5.0);
            let at = SimTime::from_micros(t);
            ring.record(at, v);
            full.record(at, v);
        }
        assert!(
            ring.len() <= 2 * cap,
            "ring kept {} of cap {cap}",
            ring.len()
        );
        let suffix = &full.points()[full.len() - ring.len()..];
        assert_eq!(ring.points(), suffix);
        // A window inside the retained span reads identically.
        if let Some(&(first, _)) = ring.points().first() {
            let to = SimTime::from_micros(t + 1);
            let a = ring.time_weighted_mean(first, to);
            let b = full.time_weighted_mean(first, to);
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    });
}

/// The probe tick's dense spatial averages — samples in a flat array
/// indexed by node id, summed over sorted tier node lists — are
/// byte-identical to the `BTreeMap` path they replaced. Two identical
/// clusters receive the same random job load; one is sampled through
/// `sample_cpus_into` + dense indexing, the other node-by-node into a
/// `BTreeMap` consumed by `NaiveObservation::spatial_avg`.
#[test]
fn probe_tick_spatial_avg_matches_btreemap() {
    run("probe_tick_spatial_avg_matches_btreemap", 128, |g| {
        let nodes = g.usize(2..40);
        let spec = NodeSpec::default();
        let mut dense_cm = ClusterManager::homogeneous(nodes, spec, 64);
        let mut map_cm = ClusterManager::homogeneous(nodes, spec, 64);
        let mut samples: Vec<f64> = Vec::new();
        let mut job = 0u64;
        let mut t = 0u64;
        for _ in 0..g.usize(1..20) {
            // Load both clusters identically (sampling resets each
            // node's utilization window, so the twins must see the same
            // submissions *and* the same sample times).
            for _ in 0..g.usize(0..30) {
                let n = NodeId(g.u32(0..nodes as u32));
                let demand = SimDuration::from_micros(g.u64(1..5_000_000));
                let at = SimTime::from_micros(t);
                job += 1;
                for cm in [&mut dense_cm, &mut map_cm] {
                    cm.node_mut(n).unwrap().cpu.submit(at, JobId(job), demand);
                }
            }
            t += g.u64(1..3_000_000);
            let now = SimTime::from_micros(t);

            // Random tier partition, sorted like the legacy registry's
            // `nodes_of_tier_into` output.
            let mut tier: Vec<NodeId> =
                (0..nodes as u32).filter(|_| g.bool()).map(NodeId).collect();
            tier.sort_unstable();

            dense_cm.sample_cpus_into(now, &mut samples);
            let dense = if tier.is_empty() {
                0.0
            } else {
                tier.iter().map(|&n| samples[n.0 as usize]).sum::<f64>() / tier.len() as f64
            };
            let dense_all = samples.iter().sum::<f64>() / samples.len() as f64;

            let mut map: BTreeMap<NodeId, f64> = BTreeMap::new();
            for i in 0..nodes as u32 {
                let n = NodeId(i);
                map.insert(n, map_cm.node_mut(n).unwrap().sample_cpu(now));
            }
            let naive = NaiveObservation::spatial_avg(&map, &tier);
            let all: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
            let naive_all = NaiveObservation::spatial_avg(&map, &all);

            assert_eq!(dense.to_bits(), naive.to_bits());
            assert_eq!(dense_all.to_bits(), naive_all.to_bits());
        }
    });
}

/// The dense heartbeat table (a `Vec<Option<SimTime>>` grown on demand,
/// as `ManagedSystem::record_heartbeat` maintains it) answers staleness
/// queries exactly like the `BTreeMap` store it replaced, under random
/// node churn — including nodes never heard from, which must read as
/// stale.
#[test]
fn heartbeat_dense_matches_map() {
    run("heartbeat_dense_matches_map", 256, |g| {
        let universe = g.u32(1..64);
        let timeout = SimDuration::from_micros(g.u64(1..10_000_000));
        let mut dense: Vec<Option<SimTime>> = Vec::new();
        let mut map: BTreeMap<u32, SimTime> = BTreeMap::new();
        let mut t = 0u64;
        for _ in 0..g.usize(1..200) {
            t += g.u64(0..2_000_000);
            let now = SimTime::from_micros(t);
            let node = g.u32(0..universe);
            if g.u8() < 192 {
                // Heartbeat, exactly as `record_heartbeat` does it.
                let slot = node as usize;
                if slot >= dense.len() {
                    dense.resize(slot + 1, None);
                }
                dense[slot] = Some(now);
                map.insert(node, now);
            } else {
                // Failure-detector read on a random node.
                let probe = g.u32(0..universe);
                let dense_stale = dense
                    .get(probe as usize)
                    .copied()
                    .flatten()
                    .map(|hb| now.since(hb) >= timeout)
                    .unwrap_or(true);
                let map_stale = map
                    .get(&probe)
                    .map(|&hb| now.since(hb) >= timeout)
                    .unwrap_or(true);
                assert_eq!(dense_stale, map_stale, "node {probe} at t={t}");
            }
        }
    });
}
