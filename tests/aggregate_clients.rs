//! Aggregate client emulation ≈ per-client emulation.
//!
//! The aggregate pool (`jade_rubis::ClientPool`) collapses idle sessions
//! into per-state counts and samples think-time expiries from the
//! binomial that exponential memorylessness implies. That is an *exact*
//! distributional collapse, so at the paper's scale (a fig5-shaped ramp
//! to 500 clients) an aggregate run must land on the same macroscopic
//! trajectory as the per-client run it replaces: the same autonomic
//! scale-up decisions at about the same times, the same request volume,
//! and the same latency regime. These tests pin that equivalence,
//! seed-swept through the harness's common-random-number rebasing.

use jade::config::{ClientMode, SystemConfig};
use jade::ManagedTier;
use jade_bench::{Harness, RunSpec};
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

/// A compressed fig5 shape: the paper's 80 → 500 → 80 ramp at twice the
/// paper's step rate (+21 clients per 30 s instead of per minute), so a
/// debug-profile test finishes quickly while the managers still keep up
/// with the ramp the way Figure 5 shows. (Much steeper ramps drive the
/// thrashing-prone node model into a bistable congestion regime where
/// *any* two stochastic replicas — including two per-client seeds — can
/// take macroscopically different recovery paths; that regime is
/// explicitly not what this equivalence is about.)
fn fig5_ramp() -> WorkloadRamp {
    WorkloadRamp {
        base_clients: 80,
        peak_clients: 500,
        step_clients: 21,
        step_interval: SimDuration::from_secs(30),
        warmup: SimDuration::from_secs(60),
        plateau: SimDuration::from_secs(180),
    }
}

fn cfg(mode: ClientMode) -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = fig5_ramp();
    cfg.markov_navigation = true;
    cfg.client_mode = mode;
    cfg
}

const HORIZON: SimDuration = SimDuration::from_secs(900);
const TICK: SimDuration = SimDuration::from_millis(100);

/// Runs the per-client / aggregate pair for one CRN stream (both specs on
/// the same stream ⇒ the harness rebases them onto the same derived
/// seed) and checks the macroscopic trajectories agree.
fn assert_modes_agree(root_seed: u64) {
    let h = Harness {
        jobs: 2,
        seed: Some(root_seed),
    };
    let results = h.run(vec![
        RunSpec::new("per-client", cfg(ClientMode::PerClient), HORIZON),
        RunSpec::new(
            "aggregate",
            cfg(ClientMode::Aggregate { tick: TICK }),
            HORIZON,
        ),
    ]);
    let (pc, ag) = (&results[0], &results[1]);
    assert_eq!(pc.record.seed, ag.record.seed, "CRN rebase shares the seed");

    // Both runs answered a comparable request volume...
    let (c_pc, c_ag) = (pc.record.completed, ag.record.completed);
    let rel = (c_pc as f64 - c_ag as f64).abs() / (c_pc as f64);
    assert!(
        rel < 0.10,
        "completed requests diverged: per-client {c_pc}, aggregate {c_ag} ({:.1}%)",
        rel * 100.0
    );
    // ...with hardly anything failing in either mode.
    let fail_pc = pc.out.app.stats.total_failed();
    let fail_ag = ag.out.app.stats.total_failed();
    assert!(
        fail_pc * 100 <= c_pc && fail_ag * 100 <= c_ag,
        "failure rate above 1%: per-client {fail_pc}/{c_pc}, aggregate {fail_ag}/{c_ag}"
    );

    // The autonomic manager made the same scale-up decision: same peak
    // replica count, reached at about the same time (the smoothing
    // window is 60 s, so a ±45 s slack is tight in units of the control
    // loop's own inertia).
    for tier in [ManagedTier::Application, ManagedTier::Database] {
        let max_pc = pc.out.max_replicas(tier);
        let max_ag = ag.out.max_replicas(tier);
        assert_eq!(
            max_pc, max_ag,
            "peak {tier:?} replicas diverged (per-client {max_pc}, aggregate {max_ag})"
        );
        let first_up =
            |steps: &[(f64, f64)]| steps.iter().find(|&&(_, v)| v > 1.0).map(|&(t, _)| t);
        let up_pc = first_up(&pc.out.replica_steps(tier));
        let up_ag = first_up(&ag.out.replica_steps(tier));
        match (up_pc, up_ag) {
            (Some(a), Some(b)) => assert!(
                (a - b).abs() < 45.0,
                "{tier:?} first scale-up drifted: per-client {a:.0}s, aggregate {b:.0}s"
            ),
            (a, b) => assert_eq!(a, b, "{tier:?} scaled up in only one mode"),
        }
    }

    // Latency regime: the windowed latency histograms describe the same
    // system. Mean latencies agree within 25% (both runs sit in the
    // comfortable sub-second regime when the manager keeps up).
    let (l_pc, l_ag) = (pc.out.mean_latency_ms(), ag.out.mean_latency_ms());
    assert!(
        l_pc > 0.0 && l_ag > 0.0,
        "both modes must complete requests (latency {l_pc:.1} / {l_ag:.1} ms)"
    );
    let lrel = (l_pc - l_ag).abs() / l_pc;
    assert!(
        lrel < 0.25,
        "mean latency diverged: per-client {l_pc:.1} ms, aggregate {l_ag:.1} ms ({:.0}%)",
        lrel * 100.0
    );
}

#[test]
fn aggregate_matches_per_client_on_the_fig5_ramp() {
    assert_modes_agree(0xA66);
}

#[test]
fn aggregate_matches_per_client_on_a_second_seed() {
    assert_modes_agree(0x5EED2);
}

/// The aggregate population follows the ramp exactly: the recorded
/// `clients` series is the configured target at every ramp tick, and the
/// pool conserves sessions (idle + busy = target) at the end.
#[test]
fn aggregate_population_tracks_the_ramp() {
    let mut c = cfg(ClientMode::Aggregate { tick: TICK });
    c.seed = 77;
    let out = jade::experiment::run_experiment(c, HORIZON);
    let ramp = fig5_ramp();
    let series = out.series("clients");
    assert!(!series.is_empty());
    for &(t, v) in &series {
        let want = ramp.clients_at(jade_sim::SimTime::from_micros((t * 1e6) as u64));
        assert_eq!(v as u32, want, "clients series off target at t={t:.0}s");
    }
}
