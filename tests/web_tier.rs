//! The full four-layer topology of paper Figure 2: an L4 switch balancing
//! replicated Apache web servers, connected through mod_jk to replicated
//! Tomcats, C-JDBC and replicated MySQLs.

use jade::adl::J2eeDescription;
use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade::system::ManagedTier;
use jade_cluster::NodeId;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

const FIGURE2_ADL: &str = r#"
    <j2ee name="rubis">
        <tier kind="web" replicas="2"/>
        <tier kind="application" replicas="2"/>
        <tier kind="database" replicas="1"/>
    </j2ee>
"#;

fn figure2_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.description = J2eeDescription::from_xml(FIGURE2_ADL).expect("valid ADL");
    cfg.nodes = 12;
    cfg.ramp = WorkloadRamp::constant(120);
    cfg.jade.app_loop.min_replicas = 2;
    cfg
}

#[test]
fn figure2_topology_deploys_and_serves() {
    let out = run_experiment(figure2_cfg(), SimDuration::from_secs(300));
    let tree = out.app.render_architecture();
    for name in ["L4-switch", "Apache1", "Apache2", "Tomcat1", "Tomcat2"] {
        assert!(tree.contains(name), "missing {name}:\n{tree}");
    }
    // Each Apache is bound to both Tomcats (Figure 2's cross wiring).
    assert!(
        tree.contains("Apache1 [started] (ajp-itf -> Tomcat1) (ajp-itf -> Tomcat2)"),
        "{tree}"
    );
    // Requests flow end-to-end through all four layers.
    assert!(out.app.stats.total_completed() > 2_000);
    assert_eq!(out.app.stats.total_failed(), 0);
}

#[test]
fn static_documents_never_touch_the_database() {
    let mut cfg = figure2_cfg();
    cfg.ramp = WorkloadRamp::constant(60);
    let out = run_experiment(cfg, SimDuration::from_secs(200));
    // The web tier absorbs the static share of the mix: Apache nodes see
    // CPU work even though static pages produce no SQL.
    let apache_nodes = [NodeId(6), NodeId(7)]; // after cjdbc, plb, 2 tomcats, 1 mysql, l4
    let mut any_busy = false;
    for &n in &apache_nodes {
        if let Ok(node) = out.app.legacy.cluster.node(n) {
            if node.has_package("apache") {
                any_busy = true;
            }
        }
    }
    assert!(
        any_busy,
        "apache replicas must be deployed on the expected nodes"
    );
    assert!(out.app.stats.total_completed() > 500);
}

#[test]
fn worker_properties_lists_every_tomcat() {
    let out = run_experiment(figure2_cfg(), SimDuration::from_secs(60));
    // Find an Apache node and read its worker.properties.
    let mut checked = 0;
    for node in out.app.legacy.cluster.node_ids() {
        if let Some(wp) = out.app.legacy.configs.read(node, "conf/worker.properties") {
            assert!(wp.contains("worker.Tomcat1."), "{wp}");
            assert!(wp.contains("worker.Tomcat2."), "{wp}");
            assert!(wp.contains("balanced_workers=Tomcat1, Tomcat2"), "{wp}");
            checked += 1;
        }
    }
    assert_eq!(checked, 2, "both Apache replicas carry the config");
}

#[test]
fn application_scale_up_joins_the_apache_rotation() {
    let mut cfg = figure2_cfg();
    // Force an application-tier scale-up with a heavy load.
    cfg.ramp = WorkloadRamp::constant(500);
    cfg.nodes = 12;
    let out = run_experiment(cfg, SimDuration::from_secs(420));
    if out.app.running_replicas(ManagedTier::Application) >= 3 {
        let tree = out.app.render_architecture();
        assert!(
            tree.contains("ajp-itf -> Tomcat3"),
            "the new Tomcat must join mod_jk rotations:\n{tree}"
        );
    } else {
        // The DB may have been the bottleneck; at least the system
        // reconfigured something under this load.
        assert!(!out.app.reconfig_log.is_empty());
    }
}
