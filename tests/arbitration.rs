//! Integration of the policy-arbitration manager (paper §7) with the full
//! system: conflicting managers are serialized and repairs outrank
//! optimization.

use jade::config::SystemConfig;
use jade::experiment::{run_experiment, run_experiment_with};
use jade::system::{ManagedTier, Msg};
use jade_cluster::NodeId;
use jade_rubis::WorkloadRamp;
use jade_sim::{Addr, SimDuration, SimTime};

fn arb_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.jade.arbitration = true;
    cfg
}

#[test]
fn arbitrated_system_still_scales() {
    let mut cfg = arb_cfg();
    cfg.ramp = WorkloadRamp::constant(260);
    let out = run_experiment(cfg, SimDuration::from_secs(420));
    assert!(
        out.app.running_replicas(ManagedTier::Database) >= 2,
        "arbitrated scale-up must still happen: {:?}",
        out.app.reconfig_log
    );
    let arb = out.app.arbitrator.as_ref().expect("arbitrator enabled");
    let (submitted, _, executed) = arb.counters();
    assert!(submitted >= executed);
    assert!(executed >= 1);
    assert!(!arb.is_executing(), "slot released after completion");
}

#[test]
fn repair_outranks_optimization_under_load() {
    let mut cfg = arb_cfg();
    cfg.ramp = WorkloadRamp::constant(200);
    cfg.jade.self_repair = true;
    cfg.description.application.replicas = 2;
    cfg.jade.app_loop.min_replicas = 2;
    // Crash Tomcat2's node (layout: 0=C-JDBC, 1=PLB, 2,3=Tomcats, 4=MySQL)
    // right as the database load builds toward a scale-up.
    let out = run_experiment_with(cfg, SimDuration::from_secs(500), |eng| {
        eng.schedule(
            SimTime::from_secs(100),
            Addr::ROOT,
            Msg::CrashNode(NodeId(3)),
        );
    });
    // Both things eventually happened, through one serialized channel.
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 2);
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("self-recovery"), "{log}");
    let arb = out.app.arbitrator.as_ref().expect("arbitrator");
    let (submitted, dropped, executed) = arb.counters();
    assert!(executed >= 1);
    // The repeated detector re-submissions collapsed as duplicates.
    assert!(dropped > 0 || submitted == executed);
}

#[test]
fn oscillating_band_is_damped_by_serialization() {
    // Same mis-calibrated band as the ablation: arbitration also caps the
    // churn because opposing requests cancel in the queue.
    let mut with_arb = arb_cfg();
    with_arb.ramp = WorkloadRamp::constant(240);
    with_arb.jade.db_loop.min_threshold = 0.50;
    with_arb.jade.db_loop.max_threshold = 0.65;
    let out = run_experiment(with_arb, SimDuration::from_secs(600));
    let arb = out.app.arbitrator.as_ref().expect("arbitrator");
    let (submitted, dropped, executed) = arb.counters();
    assert!(
        dropped > 0,
        "conflicting requests must have been coalesced (submitted={submitted}, executed={executed})"
    );
}
