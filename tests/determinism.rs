//! Determinism guarantees of the experiment layer, as recorded in run
//! manifests: the outcome digest of a run depends only on its
//! configuration — not on wall-clock conditions, how many harness workers
//! execute sibling runs, or whether tracing was enabled.

use jade::config::SystemConfig;
use jade::experiment::{config_digest, run_experiment, run_experiment_with};
use jade_bench::{Harness, RunSpec};
use jade_rubis::WorkloadRamp;
use jade_sim::{SimDuration, TraceLevel, Tracer};

fn quick_cfg(clients: u32, seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(clients);
    cfg.seed = seed;
    cfg
}

const HORIZON: SimDuration = SimDuration::from_secs(90);

/// Same seed ⇒ identical outcome digest across repeated runs.
#[test]
fn repeated_runs_digest_identically() {
    let a = run_experiment(quick_cfg(60, 5), HORIZON);
    let b = run_experiment(quick_cfg(60, 5), HORIZON);
    assert_eq!(a.outcome_digest(), b.outcome_digest());
    assert_eq!(a.events, b.events);
    // A different seed is (overwhelmingly likely) a different trajectory.
    let c = run_experiment(quick_cfg(60, 6), HORIZON);
    assert_ne!(a.outcome_digest(), c.outcome_digest());
}

/// `--jobs 1` and `--jobs N` produce byte-identical digests, run by run,
/// in spec order.
#[test]
fn worker_count_never_changes_outcomes() {
    let specs = || -> Vec<RunSpec> {
        (0..6)
            .map(|i| {
                RunSpec::new(
                    format!("run{i}"),
                    quick_cfg(40 + 30 * i, 100 + i as u64),
                    HORIZON,
                )
                .on_stream(i as u64)
            })
            .collect()
    };
    let serial = Harness::with_jobs(1).run(specs());
    let parallel = Harness::with_jobs(4).run(specs());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.record.label, p.record.label, "spec order preserved");
        assert_eq!(s.record.seed, p.record.seed);
        assert_eq!(s.record.config_digest, p.record.config_digest);
        assert_eq!(
            s.record.outcome_digest, p.record.outcome_digest,
            "digest of '{}' changed with worker count",
            s.record.label
        );
        assert_eq!(s.record.events, p.record.events);
        assert_eq!(s.record.completed, p.record.completed);
    }
}

/// Abandonment-heavy runs are as deterministic as calm ones: with a
/// patience tight enough that timers routinely fire mid-request, slab
/// slot recycling, timer cancellation, and the stale-id path all stay on
/// the hot path — and the digests must still be byte-identical across
/// worker counts.
#[test]
fn abandon_heavy_runs_digest_identically_across_jobs() {
    let abandon_cfg = |clients: u32, seed: u64| {
        let mut cfg = quick_cfg(clients, seed);
        cfg.client_patience = Some(SimDuration::from_millis(600));
        cfg
    };
    let specs = || -> Vec<RunSpec> {
        (0..4)
            .map(|i| {
                RunSpec::new(
                    format!("abandon{i}"),
                    abandon_cfg(150 + 100 * i, 500 + i as u64),
                    HORIZON,
                )
                .on_stream(i as u64)
            })
            .collect()
    };
    let serial = Harness::with_jobs(1).run(specs());
    let parallel = Harness::with_jobs(4).run(specs());
    assert_eq!(serial.len(), parallel.len());
    let mut abandoned_total = 0;
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.record.outcome_digest, p.record.outcome_digest,
            "digest of '{}' changed with worker count",
            s.record.label
        );
        assert_eq!(s.record.events, p.record.events);
        assert_eq!(s.record.completed, p.record.completed);
        abandoned_total += s.out.metrics.counter("requests.abandoned");
    }
    assert!(
        abandoned_total > 0,
        "patience of 600ms should abandon at least one request"
    );
}

/// A million-client aggregate run digests identically across worker
/// counts and repeats. The aggregate pool samples binomial issuance
/// counts and uniform dispatch offsets from the engine RNG in a
/// documented bucket order; this pins that order (and the timer-wheel
/// scheduling underneath it) at a scale where any nondeterminism in the
/// pool's draw discipline would surface immediately.
#[test]
fn million_client_aggregate_digests_identically_across_jobs() {
    let cfg = || {
        // The canonical 1M scenario, pinned at its peak: a constant
        // million clients on the peak deployment (four replicas per
        // managed tier) instead of the ramp, so the whole horizon runs
        // at full aggregate-pool pressure.
        let mut cfg = SystemConfig::million_clients();
        cfg.ramp = WorkloadRamp::constant(1_000_000);
        cfg.description.application.replicas = 4;
        cfg.description.database.replicas = 4;
        cfg.seed = 1_000_003;
        cfg
    };
    let horizon = SimDuration::from_secs(10);
    let spec = || vec![RunSpec::new("fig5-1m", cfg(), horizon)];
    let one = Harness::with_jobs(1).run(spec());
    let two = Harness::with_jobs(2).run(spec());
    let eight = Harness::with_jobs(8).run(spec());
    let again = Harness::with_jobs(8).run(spec());
    assert!(
        one[0].record.completed > 10_000,
        "a million clients must produce serious traffic (completed {})",
        one[0].record.completed
    );
    for other in [&two, &eight, &again] {
        assert_eq!(one[0].record.outcome_digest, other[0].record.outcome_digest);
        assert_eq!(one[0].record.events, other[0].record.events);
        assert_eq!(one[0].record.completed, other[0].record.completed);
    }
}

/// Seed rebasing is itself deterministic and preserves common random
/// numbers: the managed run and its unmanaged baseline derive the same
/// seed from the same stream.
#[test]
fn seed_rebase_is_deterministic_and_shared_within_stream() {
    let h = Harness {
        jobs: 2,
        seed: Some(2024),
    };
    let specs = || {
        vec![
            RunSpec::new("managed", quick_cfg(50, 1), HORIZON),
            RunSpec::new("unmanaged", quick_cfg(50, 2), HORIZON),
        ]
    };
    let a = h.run(specs());
    let b = h.run(specs());
    // Both specs landed on the same derived seed (stream 0)...
    assert_eq!(a[0].record.seed, a[1].record.seed);
    // ...and the rebase reproduces exactly.
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.record.seed, y.record.seed);
        assert_eq!(x.record.outcome_digest, y.record.outcome_digest);
    }
}

/// Tracing is observation, not behaviour: a traced run digests exactly
/// like an untraced one.
#[test]
fn tracing_does_not_perturb_the_digest() {
    let plain = run_experiment(quick_cfg(70, 9), HORIZON);
    let traced = run_experiment_with(quick_cfg(70, 9), HORIZON, |eng| {
        eng.set_tracer(Tracer::enabled(4096, TraceLevel::Debug));
    });
    assert!(traced.tracer.is_enabled());
    assert_eq!(plain.outcome_digest(), traced.outcome_digest());
    assert_eq!(plain.events, traced.events);
}

/// The config digest covers every field (seed included), so manifests can
/// prove which scenario produced which outcome.
#[test]
fn config_digest_tracks_config_changes() {
    let base = quick_cfg(60, 5);
    assert_eq!(config_digest(&base), config_digest(&quick_cfg(60, 5)));
    assert_ne!(config_digest(&base), config_digest(&quick_cfg(61, 5)));
    assert_ne!(config_digest(&base), config_digest(&quick_cfg(60, 6)));
    let mut unmanaged = base.clone();
    unmanaged.jade.managed = false;
    assert_ne!(config_digest(&base), config_digest(&unmanaged));
}

/// The manifest writer emits one row per run with stable digest strings.
#[test]
fn manifest_records_every_run() {
    let h = Harness::with_jobs(2);
    let results = h.run(vec![
        RunSpec::new("a", quick_cfg(30, 3), HORIZON),
        RunSpec::new("b", quick_cfg(90, 4), HORIZON).on_stream(1),
    ]);
    let json = h.manifest_json("determinism-test", &results);
    assert!(json.contains("\"label\": \"a\""));
    assert!(json.contains("\"label\": \"b\""));
    for r in &results {
        assert!(json.contains(&format!("{:016x}", r.record.outcome_digest)));
        assert!(json.contains(&format!("{:016x}", r.record.config_digest)));
    }
}
