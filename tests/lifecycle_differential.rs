//! Differential test for the slab-backed request lifecycle: a seeded
//! 200-client run must reproduce the counters and latency histogram the
//! pre-rewrite (`BTreeMap`-keyed) lifecycle produced.
//!
//! The golden values below were captured from the implementation as of
//! the storage-engine PR (commit 89555a5) with this exact configuration;
//! they pin the client-observable behaviour — completed / failed /
//! abandoned totals and the full latency distribution — across the
//! slab rewrite. Float goldens compare via `to_bits()`: the rewrite must
//! be exact, not approximately equal.

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn differential_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(200);
    cfg.seed = 42;
    // Tight patience so the abandon path (timer + cancellation) is
    // exercised alongside completions.
    cfg.client_patience = Some(SimDuration::from_millis(800));
    cfg
}

#[test]
fn slab_lifecycle_matches_pre_rewrite_semantics() {
    let out = run_experiment(differential_cfg(), SimDuration::from_secs(120));
    assert_eq!(out.metrics.counter("requests.completed"), 3721);
    assert_eq!(out.metrics.counter("requests.failed"), 72);
    assert_eq!(out.metrics.counter("requests.abandoned"), 72);
    let hist = out.metrics.histogram("latency").expect("latency histogram");
    assert_eq!(hist.count(), 3721);
    assert_eq!(hist.mean_ms().to_bits(), 4635657830790855648);
    assert_eq!(hist.max_ms().to_bits(), 4650246331018143334);
    assert_eq!(hist.quantile_ms(0.5), 64.0);
    assert_eq!(hist.quantile_ms(0.9), 256.0);
    assert_eq!(hist.quantile_ms(0.99), 1024.0);
}

/// Without a patience timeout there are no abandon timers at all, so the
/// whole run — event count included — must be byte-identical to the
/// pre-rewrite engine. These digests were captured at commit 89555a5.
#[test]
fn default_config_digests_unchanged_by_slab_rewrite() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(150);
    cfg.seed = 9;
    let out = run_experiment(cfg, SimDuration::from_secs(120));
    assert_eq!(out.outcome_digest(), 0x4cb396e154e3d695);
    assert_eq!(out.events, 31679);

    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(150);
    cfg.seed = 9;
    cfg.markov_navigation = true;
    let out = run_experiment(cfg, SimDuration::from_secs(120));
    assert_eq!(out.outcome_digest(), 0xc197356884f48e36);
    assert_eq!(out.events, 29827);
}
