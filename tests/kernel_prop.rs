//! Property-based tests of the simulation kernel: event ordering under
//! random schedules and cancellations, processor-sharing conservation
//! laws, and workload-ramp bounds.

use jade_rubis::WorkloadRamp;
use jade_sim::{EfficiencyCurve, EventQueue, JobId, MovingAverage, PsCpu};
use jade_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events always pop in non-decreasing time order with FIFO
    /// tie-breaks, regardless of push order and cancellations.
    #[test]
    fn event_queue_total_order(
        entries in proptest::collection::vec((0u64..1_000, any::<bool>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        let mut live = Vec::new();
        for (i, &(t, cancel)) in entries.iter().enumerate() {
            let tok = q.push(SimTime::from_micros(t), i);
            tokens.push((tok, cancel));
            if !cancel {
                live.push((t, i));
            }
        }
        for (tok, cancel) in &tokens {
            if *cancel {
                q.cancel(*tok);
            }
        }
        // Expected order: by (time, insertion sequence).
        live.sort_by_key(|&(t, i)| (t, i));
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_micros(), i));
        }
        prop_assert_eq!(popped, live);
    }

    /// Processor sharing conserves work: with no aborts, total busy time
    /// equals the sum of job demands (whatever the arrival pattern), and
    /// every job completes.
    #[test]
    fn ps_cpu_conserves_work(
        jobs in proptest::collection::vec((1u64..50_000, 0u64..100_000), 1..40)
    ) {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        let mut total_demand = 0u64;
        let mut completed = 0usize;
        // Submit at given arrival offsets (sorted).
        let mut arrivals: Vec<(u64, u64)> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(d, a))| (a, d + i as u64))
            .collect();
        arrivals.sort_unstable();
        let mut now = SimTime::ZERO;
        for (i, &(a, d)) in arrivals.iter().enumerate() {
            let at = SimTime::from_micros(a);
            // Process completions occurring before this arrival.
            while let Some(next) = cpu.next_completion(now) {
                if next > at {
                    break;
                }
                now = next;
                completed += cpu.collect_completions(now).len();
            }
            now = now.max(at);
            cpu.submit(now, JobId(i as u64), SimDuration::from_micros(d));
            total_demand += d;
        }
        while let Some(next) = cpu.next_completion(now) {
            now = next;
            completed += cpu.collect_completions(now).len();
        }
        prop_assert_eq!(completed, arrivals.len(), "all jobs complete");
        let busy = cpu.busy_time(now).as_micros();
        // Timer rounding adds at most 1 µs per completion.
        let slack = arrivals.len() as u64 + 1;
        prop_assert!(
            busy >= total_demand && busy <= total_demand + slack,
            "busy {busy} vs demand {total_demand}"
        );
    }

    /// The moving average is always within the min/max of in-window
    /// samples (hence safe to compare against thresholds).
    #[test]
    fn moving_average_bounded_by_samples(
        samples in proptest::collection::vec((0u64..10_000, 0.0f64..1.0), 1..100)
    ) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ma = MovingAverage::new(SimDuration::from_secs(1));
        for &(t, v) in &sorted {
            ma.record(SimTime::from_micros(t), v);
            let val = ma.value().unwrap();
            prop_assert!((0.0..=1.0).contains(&val));
        }
    }

    /// The workload ramp is bounded and returns to base.
    #[test]
    fn ramp_bounds(base in 1u32..100, delta in 0u32..500, step in 1u32..50, t in 0u64..10_000) {
        let ramp = WorkloadRamp {
            base_clients: base,
            peak_clients: base + delta,
            step_clients: step,
            step_interval: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(60),
            plateau: SimDuration::from_secs(60),
        };
        let c = ramp.clients_at(SimTime::from_secs(t));
        prop_assert!(c >= base && c <= base + delta);
        // Far beyond the ramp: back at base.
        let end = SimTime::from_secs(1_000_000);
        prop_assert_eq!(ramp.clients_at(end), base);
    }

    /// Thrashing efficiency is monotone non-increasing in population and
    /// never exceeds 1 (the degradation law can only hurt).
    #[test]
    fn thrashing_monotone(knee in 1usize..100, slope in 0.001f64..1.0, n in 0usize..500) {
        let curve = EfficiencyCurve::Thrashing { knee, slope };
        let e_n = curve.efficiency(n);
        let e_n1 = curve.efficiency(n + 1);
        prop_assert!(e_n <= 1.0 && e_n > 0.0);
        prop_assert!(e_n1 <= e_n);
    }
}
