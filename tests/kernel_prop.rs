//! Property-based tests of the simulation kernel: event ordering under
//! random schedules and cancellations, a differential test of the
//! slab-backed [`EventQueue`] against a naive reference model,
//! processor-sharing conservation laws, and workload-ramp bounds.

use jade_propcheck::run;
use jade_rubis::WorkloadRamp;
use jade_sim::{EfficiencyCurve, EventQueue, JobId, MovingAverage, PsCpu};
use jade_sim::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Events always pop in non-decreasing time order with FIFO tie-breaks,
/// regardless of push order and cancellations.
#[test]
fn event_queue_total_order() {
    run("event_queue_total_order", 256, |g| {
        let entries = g.vec(1..200, |g| (g.u64(0..1_000), g.bool()));
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        let mut live = Vec::new();
        for (i, &(t, cancel)) in entries.iter().enumerate() {
            let tok = q.push(SimTime::from_micros(t), i);
            tokens.push((tok, cancel));
            if !cancel {
                live.push((t, i));
            }
        }
        for (tok, cancel) in &tokens {
            if *cancel {
                q.cancel(*tok);
            }
        }
        // Expected order: by (time, insertion sequence).
        live.sort_by_key(|&(t, i)| (t, i));
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_micros(), i));
        }
        assert_eq!(popped, live);
    });
}

/// Differential test: the slab-backed queue agrees with a trivially
/// correct model (a `BinaryHeap` ordered by `(time, seq)` whose cancelled
/// entries are filtered at pop) across random interleavings of push,
/// cancel and pop — including cancels of already-fired tokens, which the
/// generation tags must turn into no-ops.
#[test]
fn event_queue_matches_naive_model() {
    run("event_queue_matches_naive_model", 256, |g| {
        let mut q = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut model_cancelled: Vec<u64> = Vec::new();
        // (queue token, model seq), including already-popped entries so
        // the generator can exercise stale cancels.
        let mut handles = Vec::new();
        let mut next_seq = 0u64;
        let steps = g.usize(1..300);
        for _ in 0..steps {
            match g.weighted(&[5, 2, 3]) {
                // Push.
                0 => {
                    let t = g.u64(0..500);
                    let payload = g.u32(0..1_000_000);
                    let tok = q.push(SimTime::from_micros(t), payload);
                    model.push(Reverse((t, next_seq, payload)));
                    handles.push((tok, next_seq));
                    next_seq += 1;
                }
                // Cancel a handle, possibly one that already fired.
                1 => {
                    if !handles.is_empty() {
                        let &(tok, seq) = g.choose(&handles);
                        q.cancel(tok);
                        model_cancelled.push(seq);
                    }
                }
                // Pop.
                _ => {
                    let expected = loop {
                        match model.pop() {
                            Some(Reverse((t, seq, payload))) => {
                                if model_cancelled.contains(&seq) {
                                    continue;
                                }
                                // Dead in the model now: a later cancel of
                                // this seq must not resurrect anything.
                                model_cancelled.push(seq);
                                break Some((t, payload));
                            }
                            None => break None,
                        }
                    };
                    let got = q.pop().map(|(t, p)| (t.as_micros(), p));
                    assert_eq!(got, expected);
                    assert_eq!(
                        q.peek_time().map(SimTime::as_micros),
                        model
                            .iter()
                            .filter(|Reverse((_, s, _))| !model_cancelled.contains(s))
                            .map(|Reverse((t, _, _))| *t)
                            .min()
                    );
                }
            }
            let model_live = model
                .iter()
                .filter(|Reverse((_, s, _))| !model_cancelled.contains(s))
                .count();
            assert_eq!(q.len(), model_live);
            assert_eq!(q.is_empty(), model_live == 0);
        }
        // Drain both completely; remainders must agree. `into_sorted_vec`
        // on `Reverse` entries is descending (time, seq), so reversing it
        // yields exactly the expected pop order.
        let rest_model: Vec<(u64, u32)> = model
            .into_sorted_vec()
            .into_iter()
            .rev()
            .filter(|Reverse((_, s, _))| !model_cancelled.contains(s))
            .map(|Reverse((t, _, p))| (t, p))
            .collect();
        let mut rest_q = Vec::new();
        while let Some((t, p)) = q.pop() {
            rest_q.push((t.as_micros(), p));
        }
        assert_eq!(rest_q, rest_model);
        assert!(q.is_empty());
    });
}

/// Processor sharing conserves work: with no aborts, total busy time
/// equals the sum of job demands (whatever the arrival pattern), and
/// every job completes.
#[test]
fn ps_cpu_conserves_work() {
    run("ps_cpu_conserves_work", 256, |g| {
        let jobs = g.vec(1..40, |g| (g.u64(1..50_000), g.u64(0..100_000)));
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        let mut total_demand = 0u64;
        let mut completed = 0usize;
        // Submit at given arrival offsets (sorted).
        let mut arrivals: Vec<(u64, u64)> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(d, a))| (a, d + i as u64))
            .collect();
        arrivals.sort_unstable();
        let mut now = SimTime::ZERO;
        for (i, &(a, d)) in arrivals.iter().enumerate() {
            let at = SimTime::from_micros(a);
            // Process completions occurring before this arrival.
            while let Some(next) = cpu.next_completion(now) {
                if next > at {
                    break;
                }
                now = next;
                completed += cpu.collect_completions(now).len();
            }
            now = now.max(at);
            cpu.submit(now, JobId(i as u64), SimDuration::from_micros(d));
            total_demand += d;
        }
        while let Some(next) = cpu.next_completion(now) {
            now = next;
            completed += cpu.collect_completions(now).len();
        }
        assert_eq!(completed, arrivals.len(), "all jobs complete");
        let busy = cpu.busy_time(now).as_micros();
        // Timer rounding adds at most 1 µs per completion.
        let slack = arrivals.len() as u64 + 1;
        assert!(
            busy >= total_demand && busy <= total_demand + slack,
            "busy {busy} vs demand {total_demand}"
        );
    });
}

/// The moving average is always within the min/max of in-window samples
/// (hence safe to compare against thresholds).
#[test]
fn moving_average_bounded_by_samples() {
    run("moving_average_bounded_by_samples", 256, |g| {
        let samples = g.vec(1..100, |g| (g.u64(0..10_000), g.f64(0.0..1.0)));
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ma = MovingAverage::new(SimDuration::from_secs(1));
        for &(t, v) in &sorted {
            ma.record(SimTime::from_micros(t), v);
            let val = ma.value().unwrap();
            assert!((0.0..=1.0).contains(&val));
        }
    });
}

/// The workload ramp is bounded and returns to base.
#[test]
fn ramp_bounds() {
    run("ramp_bounds", 256, |g| {
        let base = g.u32(1..100);
        let delta = g.u32(0..500);
        let step = g.u32(1..50);
        let t = g.u64(0..10_000);
        let ramp = WorkloadRamp {
            base_clients: base,
            peak_clients: base + delta,
            step_clients: step,
            step_interval: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(60),
            plateau: SimDuration::from_secs(60),
        };
        let c = ramp.clients_at(SimTime::from_secs(t));
        assert!(c >= base && c <= base + delta);
        // Far beyond the ramp: back at base.
        let end = SimTime::from_secs(1_000_000);
        assert_eq!(ramp.clients_at(end), base);
    });
}

/// Thrashing efficiency is monotone non-increasing in population and
/// never exceeds 1 (the degradation law can only hurt).
#[test]
fn thrashing_monotone() {
    run("thrashing_monotone", 256, |g| {
        let knee = g.usize(1..100);
        let slope = g.f64(0.001..1.0);
        let n = g.usize(0..500);
        let curve = EfficiencyCurve::Thrashing { knee, slope };
        let e_n = curve.efficiency(n);
        let e_n1 = curve.efficiency(n + 1);
        assert!(e_n <= 1.0 && e_n > 0.0);
        assert!(e_n1 <= e_n);
    });
}
