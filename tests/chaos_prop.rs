//! Whole-system property testing: random workloads and crash schedules
//! against the managed system. Whatever happens, the system must uphold
//! its invariants — never panic, never over-allocate the pool, keep
//! replica counts within bounds, keep active database replicas identical,
//! and (with self-repair) converge back to a healthy architecture.
//!
//! Deterministic simulation makes this possible: each generated case is a
//! complete, reproducible 240-second experiment.

use jade::config::SystemConfig;
use jade::experiment::run_experiment_with;
use jade::system::{ManagedTier, Msg};
use jade_cluster::NodeId;
use jade_propcheck::{run, Gen};
use jade_rubis::WorkloadRamp;
use jade_sim::{Addr, SimDuration, SimTime};
use jade_tiers::Tier;

#[derive(Debug, Clone)]
struct Chaos {
    seed: u64,
    clients: u32,
    /// (virtual second, node index) crash injections.
    crashes: Vec<(u64, u32)>,
}

fn gen_chaos(g: &mut Gen) -> Chaos {
    Chaos {
        seed: g.u64(0..1_000),
        clients: g.u32(20..300),
        crashes: g.vec(0..3, |g| (g.u64(30..200), g.u32(0..9))),
    }
}

#[test]
fn managed_system_upholds_invariants_under_chaos() {
    // Each case simulates 240 virtual seconds; keep the case count modest.
    run("managed_system_upholds_invariants_under_chaos", 24, |g| {
        let chaos = gen_chaos(g);
        let mut cfg = SystemConfig::paper_managed();
        cfg.seed = chaos.seed;
        cfg.ramp = WorkloadRamp::constant(chaos.clients);
        cfg.jade.self_repair = true;
        let crashes = chaos.crashes.clone();
        let out = run_experiment_with(cfg, SimDuration::from_secs(240), move |eng| {
            for (t, node) in crashes {
                eng.schedule(
                    SimTime::from_secs(t),
                    Addr::ROOT,
                    Msg::CrashNode(NodeId(node)),
                );
            }
        });

        // Node pool bound respected at every probe.
        let peak_alloc = out
            .series("nodes.allocated")
            .iter()
            .map(|&(_, v)| v as usize)
            .max()
            .unwrap_or(0);
        assert!(peak_alloc <= 9, "over-allocated: {peak_alloc}");

        // Replica counts within configured bounds at every probe.
        for tier in [ManagedTier::Application, ManagedTier::Database] {
            for (t, v) in out.series(tier.replicas_series()) {
                assert!(v <= 4.0, "{tier:?} exceeded max_replicas at t={t}: {v}");
            }
        }

        // Active database replicas are always mutually consistent.
        let digests: Vec<u64> = out
            .app
            .legacy
            .running_servers_of(Tier::Database)
            .into_iter()
            .map(|s| out.app.legacy.mysql(s).expect("mysql").digest())
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "replicas diverged"
        );

        // Accounting sanity: every issued request was either answered,
        // failed, or is still in flight.
        let issued: u64 = out.app.stats.total_completed() + out.app.stats.total_failed();
        assert!(issued > 0, "no requests flowed");

        // With self-repair on and at least one spare node at the end,
        // both tiers are back to >= 1 running replica (the service is up)
        // unless every crash wiped an irreplaceable balancer.
        let balancers_alive = out.app.legacy.running_servers_of(Tier::Balancer).len();
        if balancers_alive >= 2 {
            assert!(
                out.app.running_replicas(ManagedTier::Application) >= 1
                    || out.app.legacy.cluster.free_count() == 0,
                "application tier not repaired despite free nodes"
            );
        }
    });
}

/// Determinism under chaos: identical configurations (same seed, same
/// crash schedule) produce bit-identical trajectories — including the
/// outcome digest the experiment manifests record.
#[test]
fn chaos_runs_are_deterministic() {
    run("chaos_runs_are_deterministic", 24, |g| {
        let chaos = gen_chaos(g);
        let run_once = |chaos: &Chaos| {
            let mut cfg = SystemConfig::paper_managed();
            cfg.seed = chaos.seed;
            cfg.ramp = WorkloadRamp::constant(chaos.clients);
            cfg.jade.self_repair = true;
            let crashes = chaos.crashes.clone();
            run_experiment_with(cfg, SimDuration::from_secs(120), move |eng| {
                for (t, node) in crashes {
                    eng.schedule(
                        SimTime::from_secs(t),
                        Addr::ROOT,
                        Msg::CrashNode(NodeId(node)),
                    );
                }
            })
        };
        let a = run_once(&chaos);
        let b = run_once(&chaos);
        assert_eq!(a.events, b.events);
        assert_eq!(a.app.stats.total_completed(), b.app.stats.total_completed());
        assert_eq!(a.app.reconfig_log, b.app.reconfig_log);
        assert_eq!(a.outcome_digest(), b.outcome_digest());
    });
}
