//! Property-based tests of the Fractal component model: arbitrary
//! sequences of management operations never violate the architectural
//! invariants the registry is supposed to maintain.

use jade_fractal::{
    Cardinality, ComponentId, FractalError, InterfaceDecl, LifecycleState, NullWrapper, Registry,
    Role,
};
use jade_propcheck::{run, Gen};

#[derive(Debug, Clone)]
enum Op {
    Bind(u8, u8),
    Unbind(u8, u8),
    Start(u8),
    Stop(u8),
    Fail(u8),
    Repair(u8),
    SetAttr(u8, i64),
}

fn gen_op(g: &mut Gen) -> Op {
    match g.weighted(&[3, 2, 2, 2, 1, 1, 1]) {
        0 => Op::Bind(g.u8(), g.u8()),
        1 => Op::Unbind(g.u8(), g.u8()),
        2 => Op::Start(g.u8()),
        3 => Op::Stop(g.u8()),
        4 => Op::Fail(g.u8()),
        5 => Op::Repair(g.u8()),
        _ => Op::SetAttr(g.u8(), g.i64()),
    }
}

fn build(n: usize) -> (Registry<()>, Vec<ComponentId>) {
    let mut reg: Registry<()> = Registry::new();
    let comps: Vec<ComponentId> = (0..n)
        .map(|i| {
            reg.new_primitive(
                &format!("c{i}"),
                vec![
                    InterfaceDecl::server("srv", "sig"),
                    InterfaceDecl::collection_client("out", "sig"),
                ],
                Box::new(NullWrapper),
            )
        })
        .collect();
    (reg, comps)
}

#[test]
fn registry_invariants_hold_under_arbitrary_ops() {
    run("registry_invariants_hold_under_arbitrary_ops", 192, |g| {
        let n = g.usize(2..6);
        let ops = g.vec(1..150, gen_op);
        let (mut reg, comps) = build(n);
        let mut env = ();
        let pick = |i: u8| comps[i as usize % comps.len()];
        for op in &ops {
            // Every operation either succeeds or returns a structured
            // error; it must never panic or corrupt the registry.
            let _ = match *op {
                Op::Bind(a, b) => reg.bind(&mut env, pick(a), "out", pick(b), "srv"),
                Op::Unbind(a, b) => reg.unbind(&mut env, pick(a), "out", Some(pick(b))),
                Op::Start(a) => reg.start(&mut env, pick(a)),
                Op::Stop(a) => reg.stop(&mut env, pick(a)),
                Op::Fail(a) => reg.mark_failed(pick(a)),
                Op::Repair(a) => reg.repair(pick(a)),
                Op::SetAttr(a, v) => reg.set_attr(&mut env, pick(a), "x", v),
            };

            // Invariant 1: every binding endpoint refers to a live
            // component with a server interface of the right signature.
            for &c in &comps {
                for ep in reg.bindings_of(c, "out") {
                    let info = reg.info(ep.component).expect("endpoint alive");
                    let decl = info
                        .interfaces
                        .iter()
                        .find(|d| d.name.as_str() == &*ep.interface)
                        .expect("endpoint interface declared");
                    assert_eq!(decl.role, Role::Server);
                }
                // Invariant 2: no duplicate endpoints on a collection
                // interface.
                let eps = reg.bindings_of(c, "out");
                let mut dedup = eps.clone();
                dedup.sort_by_key(|e| (e.component, e.interface.clone()));
                dedup.dedup();
                assert_eq!(eps.len(), dedup.len());
            }

            // Invariant 3: life-cycle states are always one of the three
            // legal states and Failed components are never Started.
            for &c in &comps {
                let s = reg.state(c).expect("component alive");
                assert!(matches!(
                    s,
                    LifecycleState::Stopped | LifecycleState::Started | LifecycleState::Failed
                ));
            }

            // Invariant 4: incoming_bindings is the exact inverse of
            // bindings_of.
            for &c in &comps {
                for (src, itf) in reg.incoming_bindings(c) {
                    assert!(reg.bindings_of(src, &itf).iter().any(|e| e.component == c));
                }
            }
        }
    });
}

/// Starting a failed component always fails until repaired.
#[test]
fn failed_components_refuse_to_start() {
    run("failed_components_refuse_to_start", 192, |g| {
        let seq = g.vec(1..30, |g| g.bool());
        let (mut reg, comps) = build(1);
        let mut env = ();
        let c = comps[0];
        reg.mark_failed(c).unwrap();
        for &try_repair in &seq {
            if try_repair {
                let _ = reg.repair(c);
                let _ = reg.start(&mut env, c);
                assert_eq!(reg.state(c).unwrap(), LifecycleState::Started);
                return;
            } else {
                let refused = matches!(
                    reg.start(&mut env, c),
                    Err(FractalError::InvalidLifecycle { .. })
                );
                assert!(refused);
            }
        }
    });
}

/// Single-cardinality interfaces never hold more than one binding;
/// collection interfaces hold exactly as many as successful binds minus
/// unbinds.
#[test]
fn cardinality_is_enforced() {
    run("cardinality_is_enforced", 192, |g| {
        let targets = g.vec(1..20, |g| g.u8() % 4);
        let mut reg: Registry<()> = Registry::new();
        let mut env = ();
        let single = reg.new_primitive(
            "single",
            vec![InterfaceDecl::client("out", "sig")],
            Box::new(NullWrapper),
        );
        let servers: Vec<ComponentId> = (0..4)
            .map(|i| {
                reg.new_primitive(
                    &format!("s{i}"),
                    vec![InterfaceDecl::server("srv", "sig")],
                    Box::new(NullWrapper),
                )
            })
            .collect();
        let mut successes = 0;
        for &t in &targets {
            if reg
                .bind(&mut env, single, "out", servers[t as usize], "srv")
                .is_ok()
            {
                successes += 1;
            }
            assert!(reg.bindings_of(single, "out").len() <= 1);
        }
        assert_eq!(successes, 1, "only the first bind can succeed");
        // Sanity: the declared cardinality drives the behaviour.
        let info = reg.info(single).unwrap();
        assert_eq!(info.interfaces[0].cardinality, Cardinality::Single);
    });
}
