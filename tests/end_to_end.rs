//! End-to-end integration tests across all crates: the full managed
//! system under the paper's workload shapes.

use jade::config::SystemConfig;
use jade::experiment::{run_experiment, run_managed_and_unmanaged};
use jade::system::ManagedTier;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

/// The paper's ramp compressed 3× (same shape, 1000 s instead of 3000 s)
/// so integration tests stay fast.
fn fast_ramp() -> WorkloadRamp {
    WorkloadRamp {
        base_clients: 80,
        peak_clients: 500,
        step_clients: 42,
        step_interval: SimDuration::from_secs(30),
        warmup: SimDuration::from_secs(60),
        plateau: SimDuration::from_secs(120),
    }
}

#[test]
fn managed_system_scales_up_and_back_down() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = fast_ramp();
    let out = run_experiment(cfg, SimDuration::from_secs(1000));

    // Figure 5's shape: both tiers scale out under load…
    assert!(
        out.max_replicas(ManagedTier::Database) >= 2,
        "database tier never scaled; log: {:?}",
        out.app.reconfig_log
    );
    assert!(
        out.max_replicas(ManagedTier::Application) >= 2,
        "application tier never scaled; log: {:?}",
        out.app.reconfig_log
    );
    // …and release resources once the load drops.
    assert_eq!(
        out.app.running_replicas(ManagedTier::Database),
        1,
        "database replicas not released"
    );
    assert_eq!(
        out.app.running_replicas(ManagedTier::Application),
        1,
        "application replicas not released"
    );
    // The database scales before the application tier (the DB is the
    // bottleneck in RUBiS — paper §5.2).
    let first_db = out
        .replica_steps(ManagedTier::Database)
        .get(1)
        .map(|&(t, _)| t);
    let first_app = out
        .replica_steps(ManagedTier::Application)
        .get(1)
        .map(|&(t, _)| t);
    match (first_db, first_app) {
        (Some(db), Some(app)) => assert!(db < app, "db must scale first ({db} vs {app})"),
        _ => panic!("missing scaling transitions"),
    }
}

#[test]
fn managed_beats_unmanaged_on_latency() {
    let mut managed = SystemConfig::paper_managed();
    managed.ramp = fast_ramp();
    let mut unmanaged = SystemConfig::paper_unmanaged();
    unmanaged.ramp = fast_ramp();
    let (m, u) = run_managed_and_unmanaged(managed, unmanaged, SimDuration::from_secs(1000));
    // Figures 8 vs 9: the unmanaged system's latency explodes under the
    // peak; Jade keeps it at least 5x lower on average.
    assert!(
        u.mean_latency_ms() > 5.0 * m.mean_latency_ms(),
        "unmanaged {:.0} ms vs managed {:.0} ms",
        u.mean_latency_ms(),
        m.mean_latency_ms()
    );
    // The unmanaged architecture never changed.
    assert!(u.app.reconfig_log.is_empty());
    assert_eq!(u.app.running_replicas(ManagedTier::Database), 1);
}

#[test]
fn node_pool_is_never_exceeded_and_always_returned() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = fast_ramp();
    cfg.nodes = 6; // tight pool: 4 initial + only 2 spare
    let out = run_experiment(cfg, SimDuration::from_secs(1000));
    let peak_alloc = out
        .series("nodes.allocated")
        .iter()
        .map(|&(_, v)| v as usize)
        .max()
        .unwrap_or(0);
    assert!(peak_alloc <= 6, "allocated {peak_alloc} of 6 nodes");
    // Requests kept flowing even when the pool saturated.
    assert!(out.app.stats.total_completed() > 10_000);
    // After the ramp, the spare nodes are back in the pool.
    assert_eq!(out.app.allocated_nodes(), 4);
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let mk = || {
        let mut cfg = SystemConfig::paper_managed();
        cfg.ramp = fast_ramp();
        cfg.seed = 99;
        run_experiment(cfg, SimDuration::from_secs(600))
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.events, b.events, "event counts must match");
    assert_eq!(a.app.stats.total_completed(), b.app.stats.total_completed());
    assert_eq!(a.app.reconfig_log, b.app.reconfig_log);
    assert_eq!(
        a.series("replicas.db"),
        b.series("replicas.db"),
        "replica trajectories must match exactly"
    );
}

#[test]
fn different_seeds_agree_on_the_shape() {
    // The qualitative behaviour is robust to the stochastic workload.
    let mut peaks = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut cfg = SystemConfig::paper_managed();
        cfg.ramp = fast_ramp();
        cfg.seed = seed;
        let out = run_experiment(cfg, SimDuration::from_secs(1000));
        peaks.push((
            out.max_replicas(ManagedTier::Database),
            out.max_replicas(ManagedTier::Application),
        ));
    }
    for &(db, app) in &peaks {
        assert!((2..=4).contains(&db), "db peak {db}");
        assert!((2..=3).contains(&app), "app peak {app}");
    }
}

#[test]
fn architecture_introspection_reflects_reconfigurations() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(260); // hold above the db threshold
    let out = run_experiment(cfg, SimDuration::from_secs(420));
    let tree = out.app.render_architecture();
    assert!(tree.contains("MySQL2"), "new replica must appear:\n{tree}");
    assert!(tree.contains("backends -> MySQL2"), "and be bound:\n{tree}");
    // The C-JDBC descriptor on the balancer node lists both backends.
    let cj_node = jade_cluster::NodeId(0);
    let xml = out
        .app
        .legacy
        .configs
        .read(cj_node, "conf/cjdbc.xml")
        .expect("descriptor");
    assert!(xml.matches("DatabaseBackend").count() >= 2, "{xml}");
}

#[test]
fn database_replicas_stay_consistent_through_scaling() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = fast_ramp();
    let out = run_experiment(cfg, SimDuration::from_secs(700));
    // Mid-run state (after scale-ups): all *active* backends identical.
    let digests: Vec<u64> = out
        .app
        .legacy
        .running_servers_of(jade_tiers::Tier::Database)
        .into_iter()
        .map(|s| out.app.legacy.mysql(s).expect("mysql").digest())
        .collect();
    assert!(!digests.is_empty());
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged"
    );
}
