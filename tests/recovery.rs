//! Self-recovery integration tests: node crashes, repair, and data
//! consistency after recovery-log resynchronization.

use jade::config::SystemConfig;
use jade::experiment::run_experiment_with;
use jade::system::{ManagedTier, Msg};
use jade_cluster::NodeId;
use jade_rubis::WorkloadRamp;
use jade_sim::{Addr, SimDuration, SimTime};
use jade_tiers::Tier;

fn recovery_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(150);
    cfg.jade.self_repair = true;
    cfg.description.application.replicas = 2;
    cfg.description.database.replicas = 2;
    cfg.jade.app_loop.min_replicas = 2;
    cfg.jade.db_loop.min_replicas = 2;
    cfg
}

// Deterministic initial node layout: node 0=C-JDBC, 1=PLB, 2..=3 Tomcats,
// 4..=5 MySQLs.
const TOMCAT2_NODE: NodeId = NodeId(3);
const MYSQL2_NODE: NodeId = NodeId(5);

#[test]
fn tomcat_node_crash_is_repaired() {
    let out = run_experiment_with(recovery_cfg(), SimDuration::from_secs(500), |eng| {
        eng.schedule(
            SimTime::from_secs(120),
            Addr::ROOT,
            Msg::CrashNode(TOMCAT2_NODE),
        );
    });
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 2);
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("self-recovery"), "no repair logged: {log}");
    assert!(log.contains("Tomcat3"), "no replacement deployed: {log}");
    // The crashed node is not in use; a fresh one replaced it.
    assert!(!out.app.legacy.cluster.is_allocated(TOMCAT2_NODE));
}

#[test]
fn database_node_crash_resyncs_replacement() {
    let out = run_experiment_with(recovery_cfg(), SimDuration::from_secs(500), |eng| {
        eng.schedule(
            SimTime::from_secs(120),
            Addr::ROOT,
            Msg::CrashNode(MYSQL2_NODE),
        );
    });
    assert_eq!(out.app.running_replicas(ManagedTier::Database), 2);
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("synchronized and activated"), "{log}");
    // Replacement converged with the survivor despite writes continuing
    // throughout the outage.
    let digests: Vec<u64> = out
        .app
        .legacy
        .running_servers_of(Tier::Database)
        .into_iter()
        .map(|s| out.app.legacy.mysql(s).expect("mysql").digest())
        .collect();
    assert_eq!(digests.len(), 2);
    assert_eq!(digests[0], digests[1], "replicas must converge");
}

#[test]
fn service_survives_simultaneous_tier_failures() {
    let out = run_experiment_with(recovery_cfg(), SimDuration::from_secs(600), |eng| {
        eng.schedule(
            SimTime::from_secs(120),
            Addr::ROOT,
            Msg::CrashNode(TOMCAT2_NODE),
        );
        eng.schedule(
            SimTime::from_secs(121),
            Addr::ROOT,
            Msg::CrashNode(MYSQL2_NODE),
        );
    });
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 2);
    assert_eq!(out.app.running_replicas(ManagedTier::Database), 2);
    // Both repairs happened; clients kept being served (the failure
    // blip is a tiny fraction of the run).
    let total = out.app.stats.total_completed() + out.app.stats.total_failed();
    assert!(out.app.stats.total_completed() as f64 > 0.99 * total as f64);
    assert!(out.app.stats.total_completed() > 8_000);
}

#[test]
fn node_failure_detection_waits_for_the_heartbeat_timeout() {
    let mut cfg = recovery_cfg();
    cfg.jade.failure_timeout = SimDuration::from_secs(5);
    let crash_at = 120.0;
    let out = run_experiment_with(cfg, SimDuration::from_secs(400), |eng| {
        eng.schedule(
            SimTime::from_secs(crash_at as u64),
            Addr::ROOT,
            Msg::CrashNode(TOMCAT2_NODE),
        );
    });
    let repair_t = out
        .app
        .reconfig_log
        .iter()
        .find(|(_, l)| l.contains("self-recovery"))
        .map(|(t, _)| t.as_secs_f64())
        .expect("repair happened");
    // The dead node is only *suspected* once its heartbeat has been
    // missing for the timeout. The last heartbeat arrived up to one probe
    // period before the crash, so the earliest legal repair is
    // crash + timeout - probe_period.
    assert!(
        repair_t >= crash_at + 5.0 - 1.0,
        "repaired too early: {repair_t} (crash {crash_at}, 5s timeout)"
    );
    assert!(repair_t <= crash_at + 8.0, "detection too slow: {repair_t}");
}

#[test]
fn process_failure_on_live_node_is_detected_fast() {
    // A process crash with the node still up: the local daemon reports it
    // within ~1 probe period — no heartbeat wait, even with a huge
    // node-failure timeout configured.
    let mut cfg = recovery_cfg();
    cfg.jade.failure_timeout = SimDuration::from_secs(60);
    let out = run_experiment_with(cfg, SimDuration::from_secs(300), |eng| {
        // Tomcat2's process (deployment order: 0=C-JDBC, 1=PLB,
        // 2,3=Tomcats, 4,5=MySQLs).
        eng.schedule(
            SimTime::from_secs(100),
            Addr::ROOT,
            Msg::FailServer(jade_tiers::ServerId(3)),
        );
    });
    let repair_t = out
        .app
        .reconfig_log
        .iter()
        .find(|(_, l)| l.contains("self-recovery"))
        .map(|(t, _)| t.as_secs_f64())
        .expect("repair happened");
    assert!(
        (100.0..=103.0).contains(&repair_t),
        "process failure must be detected within ~a probe period, was {repair_t}"
    );
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 2);
}

#[test]
fn without_self_repair_failures_persist() {
    let mut cfg = recovery_cfg();
    cfg.jade.self_repair = false;
    let out = run_experiment_with(cfg, SimDuration::from_secs(400), |eng| {
        eng.schedule(
            SimTime::from_secs(120),
            Addr::ROOT,
            Msg::CrashNode(TOMCAT2_NODE),
        );
    });
    // No repair manager: the tier stays degraded (but the surviving
    // replica still serves — the PLB routes around the corpse).
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 1);
    assert!(out.app.stats.total_completed() > 5_000);
}
