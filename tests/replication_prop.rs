//! Differential property tests of the execute-once delta replication
//! path (paper §4.1, RAIDb-1 full mirroring).
//!
//! The first property drives random write streams through
//! `Database::execute_capture` and checks after *every* write that a
//! replica applying the captured `WriteDelta` is byte-identical (content
//! digest) to a replica re-executing the statement — and that the whole
//! stream lands on the same digest as the pre-delta
//! `jade_bench::NaiveReplication` stack.
//!
//! The second property adds backend membership churn through the
//! `CjdbcController`, with syncs deliberately left half-finished so
//! replay batches race new writes: joins go through `SyncPlan` (nearest
//! checkpoint snapshot + delta tail, at an aggressively small snapshot
//! interval so the snapshot path is actually taken), and at the end every
//! replica must match a from-scratch full-statement-log replay.
//!
//! Reproduce a failure with `PROPCHECK_SEED` / `PROPCHECK_CASES` as
//! printed by the harness.

use jade_bench::NaiveReplication;
use jade_propcheck::{run, Gen};
use jade_tiers::cjdbc::{BackendStatus, CjdbcController, ReadPolicy};
use jade_tiers::recovery::SyncPlan;
use jade_tiers::sql::{ColId, Schema, Statement, TableId, Value};
use jade_tiers::storage::Database;
use jade_tiers::ServerId;
use std::collections::BTreeMap;
use std::sync::Arc;

const TABLE_NAMES: &[&str] = &["t0", "t1", "t2"];
const COL_NAMES: &[&str] = &["c0", "c1", "c2", "c3"];
const MAX_KEY: u64 = 32;

/// A random schema: 1–3 tables, 1–4 columns each, roughly half of the
/// columns carrying a secondary index (so delta application exercises
/// index maintenance too).
fn gen_schema(g: &mut Gen) -> Arc<Schema> {
    let tables = g.usize(1..4);
    let mut b = Schema::builder();
    let mut indexed = Vec::new();
    for t in TABLE_NAMES.iter().take(tables) {
        let cols = g.usize(1..5);
        b = b.table(t, &COL_NAMES[..cols]);
        for c in COL_NAMES.iter().take(cols) {
            if g.bool() {
                indexed.push((*t, *c));
            }
        }
    }
    for (t, c) in indexed {
        b = b.index(t, c);
    }
    b.build()
}

fn gen_value(g: &mut Gen) -> Value {
    match g.weighted(&[2, 5, 2]) {
        0 => Value::Null,
        // A small value domain so no-op column sets and index moves hit.
        1 => Value::Int(g.u64(0..6) as i64),
        _ => Value::Text(g.choose(&["x", "y", "zz"]).to_string()),
    }
}

/// One random *write* against `schema`, including creates of existing
/// tables (idempotent) and updates/deletes of missing keys (error or
/// no-op paths — both must capture faithfully).
fn gen_write(g: &mut Gen, schema: &Schema) -> Statement {
    let table = TableId(g.u64(0..schema.len() as u64) as u16);
    let def = schema.table(table).expect("in range");
    let width = def.width();
    match g.weighted(&[2, 6, 4, 2]) {
        0 => Statement::CreateTable { table },
        1 => {
            let row = (0..width).map(|_| gen_value(g)).collect();
            Statement::Insert { table, row }
        }
        2 => {
            let set = (0..g.usize(1..width + 1))
                .map(|_| (ColId(g.u64(0..width as u64) as u16), gen_value(g)))
                .collect();
            Statement::Update {
                table,
                key: g.u64(0..MAX_KEY),
                set,
            }
        }
        _ => Statement::Delete {
            table,
            key: g.u64(0..MAX_KEY),
        },
    }
}

/// A delta-applied replica is byte-identical to a re-executed one after
/// every single write, and the stream converges to the same digest as
/// the pre-delta re-execute-everywhere stack.
#[test]
fn delta_apply_matches_reexecution() {
    run("delta_apply_matches_reexecution", 256, |g| {
        let schema = gen_schema(g);
        let writes: Vec<Arc<Statement>> = g
            .vec(1..80, |g| gen_write(g, &schema))
            .into_iter()
            .map(Arc::new)
            .collect();
        let base = Database::new(Arc::clone(&schema));
        let mut primary = base.clone();
        let mut by_delta = base.clone();
        let mut by_statement = base.clone();
        let mut naive = NaiveReplication::new(Arc::clone(&schema), &base, 2);
        for (step, stmt) in writes.iter().enumerate() {
            match primary.execute_capture(stmt) {
                Ok((_, delta)) => {
                    by_delta.apply_delta(&delta).expect("delta applies");
                    let _ = by_statement.execute(stmt);
                }
                // The write failed on the primary: every replica
                // re-executes it and fails identically (there is no
                // delta to share).
                Err(_) => {
                    let _ = by_delta.execute(stmt);
                    let _ = by_statement.execute(stmt);
                }
            }
            naive.execute_write(stmt);
            let d = primary.digest();
            assert_eq!(d, by_delta.digest(), "delta replica diverged at {step}");
            assert_eq!(
                d,
                by_statement.digest(),
                "re-executing replica diverged at {step}"
            );
        }
        assert_eq!(
            primary.digest(),
            naive.digest(),
            "pre-delta stack disagrees with the capture path"
        );
    });
}

/// Abstract operations for the churn property.
#[derive(Debug, Clone)]
enum Op {
    /// Broadcast a write through the delta path.
    Write,
    /// Disable backend `i % backends` if active (and not the last one).
    Disable(u8),
    /// Fully (re-)enable backend `i % backends` via its `SyncPlan`.
    Enable(u8),
    /// Begin enabling, applying only the first batch — leaves the sync
    /// open so later writes race the replay.
    EnableStart(u8),
    /// Acknowledge the open batch; may yield (and apply) a second tail.
    EnableStep(u8),
    /// Crash-fail backend `i % backends`: checkpoint resets to zero and
    /// any in-flight sync session is discarded (the stale-session
    /// guard).
    Fail(u8),
}

fn gen_op(g: &mut Gen) -> Op {
    match g.weighted(&[8, 2, 2, 2, 3, 1]) {
        0 => Op::Write,
        1 => Op::Disable(g.u8()),
        2 => Op::Enable(g.u8()),
        3 => Op::EnableStart(g.u8()),
        4 => Op::EnableStep(g.u8()),
        _ => Op::Fail(g.u8()),
    }
}

/// A model cluster wired exactly like the legacy layer's delta path:
/// deterministic primary executes-and-captures, replicas apply deltas,
/// checkpoint snapshots install on cadence, and joins apply `SyncPlan`s
/// (with in-flight plans stashed, like `pending_replays`).
struct Model {
    ctrl: CjdbcController,
    dbs: BTreeMap<ServerId, Database>,
    pending: BTreeMap<ServerId, SyncPlan>,
    schema: Arc<Schema>,
}

impl Model {
    fn new(schema: Arc<Schema>, backends: u32, snapshot_every: u64) -> Self {
        let mut ctrl = CjdbcController::new(ReadPolicy::RoundRobin, Arc::clone(&schema));
        ctrl.set_snapshot_interval(snapshot_every);
        let mut dbs = BTreeMap::new();
        for i in 0..backends {
            let id = ServerId(i);
            ctrl.register_backend(id);
            assert!(ctrl.begin_enable(id).unwrap().is_empty());
            assert!(ctrl.finish_replay(id).unwrap().is_none());
            dbs.insert(id, Database::new(Arc::clone(&schema)));
        }
        Model {
            ctrl,
            dbs,
            pending: BTreeMap::new(),
            schema,
        }
    }

    fn write(&mut self, stmt: Statement) {
        let stmt = Arc::new(stmt);
        let Some(primary) = self.ctrl.write_primary() else {
            return;
        };
        let delta = match self.dbs.get_mut(&primary).unwrap().execute_capture(&stmt) {
            Ok((_, delta)) => Some(Arc::new(delta)),
            Err(_) => None,
        };
        let mut targets = Vec::new();
        self.ctrl
            .route_write_into(Arc::clone(&stmt), delta.clone(), &mut targets)
            .expect("primary exists, so actives exist");
        assert_eq!(targets[0], primary);
        for &b in &targets[1..] {
            let db = self.dbs.get_mut(&b).unwrap();
            match &delta {
                Some(delta) => {
                    let _ = db.apply_delta(delta);
                }
                None => {
                    let _ = db.execute(&stmt);
                }
            }
            self.ctrl.note_complete(b);
        }
        self.ctrl.note_complete(primary);
        if self.ctrl.snapshot_due() {
            let snapshot = self.dbs[&primary].snapshot();
            self.ctrl.install_snapshot(snapshot);
        }
    }

    fn apply_plan(&mut self, id: ServerId, plan: &SyncPlan) {
        let db = self.dbs.get_mut(&id).unwrap();
        if let Some((_, snapshot)) = &plan.snapshot {
            *db = Database::from_snapshot(snapshot);
        }
        for entry in &plan.entries {
            match &entry.delta {
                Some(delta) => {
                    let _ = db.apply_delta(delta);
                }
                None => {
                    let _ = db.execute(&entry.statement);
                }
            }
        }
    }

    /// Applies the open batch and acknowledges it; returns true when the
    /// backend went Active.
    fn step_sync(&mut self, id: ServerId) -> bool {
        let Some(plan) = self.pending.remove(&id) else {
            return false;
        };
        self.apply_plan(id, &plan);
        match self.ctrl.finish_replay(id).unwrap() {
            Some(next) => {
                self.pending.insert(id, next);
                false
            }
            None => true,
        }
    }

    fn enable_fully(&mut self, id: ServerId) {
        if self.ctrl.status(id) == Ok(BackendStatus::Disabled) {
            let plan = self.ctrl.begin_enable(id).unwrap();
            self.pending.insert(id, plan);
        }
        if self.ctrl.status(id) == Ok(BackendStatus::Syncing) {
            while !self.step_sync(id) {}
        }
    }

    fn backend(&self, i: u8) -> ServerId {
        let ids: Vec<ServerId> = self.dbs.keys().copied().collect();
        ids[i as usize % ids.len()]
    }

    fn apply(&mut self, g: &mut Gen, op: &Op) {
        match op {
            Op::Write => {
                let stmt = gen_write(g, &Arc::clone(&self.schema));
                self.write(stmt);
            }
            Op::Disable(i) => {
                let id = self.backend(*i);
                if self.ctrl.active_count() > 1 {
                    let _ = self.ctrl.disable_backend(id);
                }
            }
            Op::Enable(i) => self.enable_fully(self.backend(*i)),
            Op::EnableStart(i) => {
                let id = self.backend(*i);
                if self.ctrl.status(id) == Ok(BackendStatus::Disabled) {
                    let plan = self.ctrl.begin_enable(id).unwrap();
                    self.pending.insert(id, plan);
                }
            }
            Op::EnableStep(i) => {
                let id = self.backend(*i);
                if self.ctrl.status(id) == Ok(BackendStatus::Syncing) {
                    self.step_sync(id);
                }
            }
            Op::Fail(i) => {
                let id = self.backend(*i);
                if self.ctrl.active_count() > 1 || self.ctrl.status(id) != Ok(BackendStatus::Active)
                {
                    let _ = self.ctrl.fail_backend(id);
                    // The in-flight sync session (if any) is stale now —
                    // the legacy layer drops its batch instead of
                    // applying it.
                    self.pending.remove(&id);
                    // A crashed replica's disk is not trusted: it is
                    // re-initialized before re-enabling.
                    self.dbs.insert(id, Database::new(Arc::clone(&self.schema)));
                }
            }
        }
    }
}

/// Under arbitrary membership churn — including syncs left open across
/// racing writes — snapshot+tail joins converge every replica to the
/// digest of a from-scratch full-statement-log replay.
#[test]
fn churned_replicas_match_full_log_replay() {
    run("churned_replicas_match_full_log_replay", 192, |g| {
        let schema = gen_schema(g);
        let backends = g.u32(2..5);
        // Aggressively small snapshot cadence so joins actually take the
        // snapshot path (interval 1 snapshots after every write).
        let snapshot_every = g.u64(1..6);
        let mut m = Model::new(Arc::clone(&schema), backends, snapshot_every);
        // Seed the schema's tables so most writes land.
        for t in 0..schema.len() {
            m.write(Statement::CreateTable {
                table: TableId(t as u16),
            });
        }
        let ops = g.vec(1..100, gen_op);
        for op in &ops {
            m.apply(g, op);
        }
        // Bring everyone back in (finishing half-open syncs first).
        let ids: Vec<ServerId> = m.dbs.keys().copied().collect();
        for id in ids {
            m.enable_fully(id);
        }
        // Oracle: replay the whole statement log from scratch, ignoring
        // snapshots and deltas entirely.
        let mut oracle = Database::new(Arc::clone(&schema));
        for entry in m.ctrl.recovery_log().entries_from(0) {
            let _ = oracle.execute(&entry.statement);
        }
        let expect = oracle.digest();
        for (id, db) in &m.dbs {
            assert_eq!(
                db.digest(),
                expect,
                "replica {id:?} diverged from full-log replay \
                 (snapshot_every={snapshot_every})"
            );
        }
    });
}
