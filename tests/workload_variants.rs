//! Workload-variant integration tests: the browsing mix, Markov
//! navigation, and impatient clients.

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;
use jade_tiers::Tier;

#[test]
fn browsing_mix_produces_no_writes() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.browsing_mix = true;
    cfg.ramp = WorkloadRamp::constant(100);
    let out = run_experiment(cfg, SimDuration::from_secs(200));
    assert!(out.app.stats.total_completed() > 1_000);
    // The recovery log only records writes: browsing leaves it empty.
    let (cj_server, _) = out.app.cjdbc.expect("cjdbc");
    assert_eq!(
        out.app
            .legacy
            .cjdbc(cj_server)
            .unwrap()
            .recovery_log()
            .head(),
        0,
        "browsing mix must not produce write requests"
    );
}

#[test]
fn browsing_mix_joiner_syncs_instantly() {
    // A replica joining under the browsing mix has no backlog to replay.
    let mut cfg = SystemConfig::paper_managed();
    cfg.browsing_mix = true;
    cfg.ramp = WorkloadRamp::constant(300); // hot enough to scale the DB
    let out = run_experiment(cfg, SimDuration::from_secs(300));
    let log = format!("{:?}", out.app.reconfig_log);
    if log.contains("scale-up Database") {
        assert!(log.contains("synchronized and activated"), "{log}");
    }
    // All replicas identical (they all just hold the dump).
    let digests: Vec<u64> = out
        .app
        .legacy
        .running_servers_of(Tier::Database)
        .into_iter()
        .map(|s| out.app.legacy.mysql(s).unwrap().digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn markov_navigation_serves_the_same_macroscopic_load() {
    let run = |markov: bool| {
        let mut cfg = SystemConfig::paper_managed();
        cfg.markov_navigation = markov;
        cfg.ramp = WorkloadRamp::constant(80);
        run_experiment(cfg, SimDuration::from_secs(300))
    };
    let iid = run(false);
    let markov = run(true);
    // Same closed-loop workload: throughputs agree within 15%.
    let (a, b) = (iid.throughput(), markov.throughput());
    assert!(
        (a - b).abs() / a.max(b) < 0.15,
        "throughput {a:.1} vs {b:.1}"
    );
}

#[test]
fn impatient_clients_abandon_under_overload() {
    // The unmanaged system at peak load with a 10 s patience: abandoned
    // requests show up, and the client population keeps cycling instead
    // of piling onto the dead database.
    let mut cfg = SystemConfig::paper_unmanaged();
    cfg.ramp = WorkloadRamp::constant(450);
    cfg.client_patience = Some(SimDuration::from_secs(10));
    let out = run_experiment(cfg, SimDuration::from_secs(400));
    assert!(
        out.metrics.counter("requests.abandoned") > 0,
        "overloaded run must show abandonment"
    );
    // Abandonment bounds the measured latency: nothing slower than the
    // patience (plus scheduling slack) completes... actually completed
    // requests can exceed patience only if they raced the timeout, so the
    // overall mean stays below it.
    assert!(out.mean_latency_ms() < 10_500.0);
}

#[test]
fn patient_clients_never_abandon() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(80);
    cfg.client_patience = Some(SimDuration::from_secs(30));
    let out = run_experiment(cfg, SimDuration::from_secs(200));
    assert_eq!(out.metrics.counter("requests.abandoned"), 0);
    assert_eq!(out.app.stats.total_failed(), 0);
}
