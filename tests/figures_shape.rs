//! Regression tests for the *shapes* the paper's figures and table
//! report, on the compressed ramp (3× faster than the paper's, same
//! geometry). If a change to the model or the managers breaks one of
//! these, the reproduction claims in EXPERIMENTS.md no longer hold.

use jade::config::SystemConfig;
use jade::experiment::{run_managed_and_unmanaged, ExperimentOutput};
use jade::system::ManagedTier;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;
use std::sync::OnceLock;

fn fast_ramp() -> WorkloadRamp {
    WorkloadRamp {
        base_clients: 80,
        peak_clients: 500,
        step_clients: 42,
        step_interval: SimDuration::from_secs(30),
        warmup: SimDuration::from_secs(60),
        plateau: SimDuration::from_secs(120),
    }
}

/// One shared pair of runs for all shape assertions (they are read-only).
fn runs() -> &'static (ExperimentOutput, ExperimentOutput) {
    static RUNS: OnceLock<(ExperimentOutput, ExperimentOutput)> = OnceLock::new();
    RUNS.get_or_init(|| {
        let mut managed = SystemConfig::paper_managed();
        managed.ramp = fast_ramp();
        let mut unmanaged = SystemConfig::paper_unmanaged();
        unmanaged.ramp = fast_ramp();
        run_managed_and_unmanaged(managed, unmanaged, SimDuration::from_secs(1000))
    })
}

#[test]
fn fig5_shape_scale_out_and_back() {
    let (m, _) = runs();
    assert_eq!(
        m.max_replicas(ManagedTier::Database),
        3,
        "paper: 3 backends at peak"
    );
    assert_eq!(
        m.max_replicas(ManagedTier::Application),
        2,
        "paper: 2 servers at peak"
    );
    assert_eq!(m.app.running_replicas(ManagedTier::Database), 1);
    assert_eq!(m.app.running_replicas(ManagedTier::Application), 1);
}

#[test]
fn fig6_shape_db_cpu_bounded_when_managed_saturated_otherwise() {
    let (m, u) = runs();
    let max_thr = SystemConfig::default().jade.db_loop.max_threshold;
    // Managed: smoothed DB CPU spends little time far above the max
    // threshold. On this 3×-compressed ramp each reconfiguration's
    // excursion covers proportionally more of the run than in the paper,
    // so the bound is 10% here (the paper-speed run stays well below 5%).
    let managed_cpu = m.series("cpu.db.smoothed");
    let over = managed_cpu
        .iter()
        .filter(|&&(_, v)| v > max_thr + 0.1)
        .count() as f64
        / managed_cpu.len().max(1) as f64;
    assert!(
        over < 0.10,
        "managed DB CPU above band {:.1}% of the run",
        over * 100.0
    );
    // Unmanaged: saturates.
    let peak = u
        .series("cpu.db.smoothed")
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    assert!(peak > 0.95, "unmanaged DB CPU peaked at {peak}");
}

#[test]
fn fig7_shape_unmanaged_app_cpu_stays_moderate() {
    let (_, u) = runs();
    // "The application servers spend most of the time waiting for the
    // database": app CPU must peak well below the DB's saturation.
    let app_peak = u
        .series("cpu.app.smoothed")
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    assert!(
        app_peak < 0.7,
        "unmanaged app CPU should stay moderate, peaked at {app_peak}"
    );
}

#[test]
fn fig8_fig9_shape_latency_contrast() {
    let (m, u) = runs();
    // Unmanaged runs away, managed stays flat: at least 5x on the mean.
    assert!(
        u.mean_latency_ms() > 5.0 * m.mean_latency_ms(),
        "unmanaged {:.0} ms vs managed {:.0} ms",
        u.mean_latency_ms(),
        m.mean_latency_ms()
    );
    // Managed latency is stable: on this compressed ramp (3× the paper's
    // slope) a brief spike during the steepest segment is physical —
    // reconfiguration takes tens of seconds — but the overwhelming
    // majority of windows stay sub-second, and the worst managed window
    // is far below the unmanaged one.
    let windows = |o: &ExperimentOutput| -> Vec<f64> {
        o.app
            .stats
            .windows()
            .iter()
            .map(|w| w.mean_latency_ms())
            .collect()
    };
    let mw = windows(m);
    let uw = windows(u);
    let m_worst = mw.iter().copied().fold(0.0f64, f64::max);
    let u_worst = uw.iter().copied().fold(0.0f64, f64::max);
    assert!(
        m_worst < u_worst / 3.0,
        "managed worst window {m_worst:.0} ms vs unmanaged {u_worst:.0} ms"
    );
    let slow = mw.iter().filter(|&&v| v > 1_000.0).count() as f64 / mw.len().max(1) as f64;
    assert!(
        slow < 0.10,
        "{:.0}% of managed windows were above 1 s",
        slow * 100.0
    );
    // Unmanaged recovers once the load drops (the tail of Figure 8): the
    // last windows are cheap again.
    let tail: Vec<f64> = u
        .app
        .stats
        .windows()
        .iter()
        .rev()
        .take(5)
        .map(|w| w.mean_latency_ms())
        .collect();
    assert!(
        tail.iter().all(|&v| v < 1_000.0),
        "unmanaged latency did not recover: {tail:?}"
    );
}

#[test]
fn table1_shape_no_cpu_overhead_small_memory_overhead() {
    // Separate constant-load runs (Table 1's setup).
    let (m, u) = run_managed_and_unmanaged(
        SystemConfig::intrusivity(true, 80),
        SystemConfig::intrusivity(false, 80),
        SimDuration::from_secs(600),
    );
    let (tp_j, rt_j, cpu_j, mem_j) = m.intrusivity_row(120.0, 600.0);
    let (tp_n, rt_n, cpu_n, mem_n) = u.intrusivity_row(120.0, 600.0);
    // Throughput identical (closed-loop workload).
    assert!((tp_j - tp_n).abs() < 0.5, "throughput {tp_j} vs {tp_n}");
    // Response-time overhead negligible.
    assert!((rt_j - rt_n).abs() < 10.0, "resp {rt_j} vs {rt_n}");
    // CPU overhead below one point; memory overhead positive but small
    // (paper: +0.32 CPU, +2.6 memory).
    let cpu_overhead = cpu_j - cpu_n;
    assert!(
        (0.0..1.0).contains(&cpu_overhead),
        "cpu overhead {cpu_overhead}"
    );
    let mem_overhead = mem_j - mem_n;
    assert!(
        (1.0..5.0).contains(&mem_overhead),
        "mem overhead {mem_overhead}"
    );
    // No reconfiguration at medium load.
    assert!(m.app.reconfig_log.is_empty());
}
