//! Differential property tests of the hierarchical timer wheel.
//!
//! The slab-backed [`EventQueue`] routes coarse timers (`push_coarse`)
//! through a 7-level timer wheel and precise events through its pairing
//! heap, merging the two at pop by `(time, global sequence)`. These tests
//! drive random interleavings of precise pushes, coarse pushes, cancels
//! and pops against [`NaiveTimers`] — the trivially correct
//! `BinaryHeap` + cancel-set model — and demand byte-identical behaviour:
//! the same fire times, the same order on same-tick ties (insertion
//! order, regardless of which structure holds the entry), the same
//! cancellation semantics, and no-op cancels for tokens whose slot has
//! been recycled into a new generation.

use jade_bench::NaiveTimers;
use jade_propcheck::run;
use jade_sim::{EventQueue, EventToken, SimTime};

/// One armed timer as the test tracked it: the queue token, the model
/// handle, and whether it is still pending (neither fired nor cancelled).
struct Handle {
    token: EventToken,
    model: u64,
    live: bool,
}

/// Pops both structures once and checks they agree; marks the fired
/// handle dead and returns the fire time. Payloads are handle indices,
/// so a mismatch names the exact insertion that fired out of order.
fn pop_both(
    q: &mut EventQueue<u64>,
    model: &mut NaiveTimers<u64>,
    handles: &mut [Handle],
) -> Option<SimTime> {
    let got = q.pop();
    let want = model.pop();
    assert_eq!(
        got, want,
        "wheel-backed queue diverged from the BinaryHeap model"
    );
    got.map(|(t, idx)| {
        handles[idx as usize].live = false;
        t
    })
}

/// Random interleavings across the wheel's whole time range: offsets are
/// log-uniform over 2^0..2^45 µs, so entries land on every wheel level,
/// in the overflow list beyond the 2^42 µs span, and (via past-time
/// pushes) on the heap fallback behind the cursor.
#[test]
fn wheel_matches_naive_timers() {
    run("wheel_matches_naive_timers", 256, |g| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: NaiveTimers<u64> = NaiveTimers::new();
        let mut handles: Vec<Handle> = Vec::new();
        let mut now = 0u64; // time of the last fired event, µs
        let steps = g.usize(20..400);
        for _ in 0..steps {
            match g.u32(0..10) {
                // Precise push: relative to the frontier or absolute in
                // the (possibly already-passed) first millisecond.
                0..=2 => {
                    let t = if g.bool() {
                        let exp = g.u64(0..20);
                        now + g.u64(0..1 << exp)
                    } else {
                        g.u64(0..1_000)
                    };
                    let idx = handles.len() as u64;
                    let token = q.push(SimTime::from_micros(t), idx);
                    let model_h = model.push(SimTime::from_micros(t), idx);
                    handles.push(Handle {
                        token,
                        model: model_h,
                        live: true,
                    });
                }
                // Coarse push: any wheel level, the overflow list, or a
                // time behind the cursor (heap fallback).
                3..=6 => {
                    let t = if g.bool() {
                        let exp = g.u64(0..46);
                        now + g.u64(0..1 << exp)
                    } else {
                        g.u64(0..1_000)
                    };
                    let idx = handles.len() as u64;
                    let token = q.push_coarse(SimTime::from_micros(t), idx);
                    let model_h = model.push(SimTime::from_micros(t), idx);
                    handles.push(Handle {
                        token,
                        model: model_h,
                        live: true,
                    });
                }
                // Cancel. A live target is cancelled in both structures;
                // a dead target only on the queue side — its slot may
                // already carry a new generation, and the cancel must be
                // a no-op for the streams to stay identical.
                7..=8 => {
                    if handles.is_empty() {
                        continue;
                    }
                    let i = g.usize(0..handles.len());
                    q.cancel(handles[i].token);
                    if handles[i].live {
                        model.cancel(handles[i].model);
                        handles[i].live = false;
                    }
                }
                _ => {
                    if let Some(t) = pop_both(&mut q, &mut model, &mut handles) {
                        now = now.max(t.as_micros());
                    }
                }
            }
            assert_eq!(q.len(), model.len(), "live-timer counts diverged");
        }
        // Drain both to the end: every remaining entry fires in the same
        // order at the same time.
        loop {
            let got = q.pop();
            let want = model.pop();
            assert_eq!(got, want, "drain order diverged");
            if got.is_none() {
                break;
            }
        }
        assert!(q.is_empty() && model.is_empty());
    });
}

/// Same-tick ties and slot recycling under churn: timers are quantized to
/// a handful of distinct times (mixing precise and coarse arms at the
/// very same microsecond), and the pop/cancel pressure is high enough
/// that slots are recycled across generations many times per case. Ties
/// must fire in insertion order even when one entry sits in the heap and
/// the other in a wheel bucket, and a stale token must never cancel the
/// slot's new occupant.
#[test]
fn wheel_ties_and_token_reuse_match_naive_timers() {
    run("wheel_ties_and_token_reuse", 256, |g| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: NaiveTimers<u64> = NaiveTimers::new();
        let mut handles: Vec<Handle> = Vec::new();
        let mut now = 0u64;
        let quantum = 1u64 << g.u64(0..14); // bucket-aligned at several levels
        let steps = g.usize(50..300);
        for _ in 0..steps {
            match g.u32(0..8) {
                0..=3 => {
                    // At most 4 distinct future times ⇒ ties are the norm.
                    let t = now + g.u64(1..5) * quantum;
                    let idx = handles.len() as u64;
                    let time = SimTime::from_micros(t);
                    let (token, model_h) = if g.bool() {
                        (q.push(time, idx), model.push(time, idx))
                    } else {
                        (q.push_coarse(time, idx), model.push(time, idx))
                    };
                    handles.push(Handle {
                        token,
                        model: model_h,
                        live: true,
                    });
                }
                4 => {
                    if handles.is_empty() {
                        continue;
                    }
                    let i = g.usize(0..handles.len());
                    q.cancel(handles[i].token);
                    if handles[i].live {
                        model.cancel(handles[i].model);
                        handles[i].live = false;
                    }
                }
                _ => {
                    // Pop-heavy mix drives slot recycling: most arms fire
                    // quickly and their slots host later generations.
                    let before = q.pop();
                    let model_before = model.pop();
                    assert_eq!(before, model_before, "tie order diverged");
                    if let Some((t, idx)) = before {
                        handles[idx as usize].live = false;
                        now = now.max(t.as_micros());
                    }
                }
            }
            assert_eq!(q.len(), model.len(), "live-timer counts diverged");
        }
        loop {
            let got = q.pop();
            let want = model.pop();
            assert_eq!(got, want, "drain order diverged");
            if got.is_none() {
                break;
            }
        }
    });
}
