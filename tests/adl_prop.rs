//! Property-based tests of the ADL: arbitrary valid descriptions
//! round-trip through XML, and the parser never panics on arbitrary
//! input.

use jade::adl::{J2eeDescription, TierKind, TierSpec};
use jade_propcheck::{run, Gen};
use jade_tiers::{BalancePolicy, ReadPolicy};

fn gen_tier(g: &mut Gen, kind: TierKind) -> TierSpec {
    TierSpec {
        kind,
        replicas: g.usize(1..6),
        balance_policy: *g.choose(&[BalancePolicy::RoundRobin, BalancePolicy::Random]),
        read_policy: *g.choose(&[
            ReadPolicy::LeastPending,
            ReadPolicy::RoundRobin,
            ReadPolicy::Random,
        ]),
    }
}

fn gen_description(g: &mut Gen) -> J2eeDescription {
    J2eeDescription {
        name: g.ident(15),
        web: if g.bool() {
            Some(gen_tier(g, TierKind::Web))
        } else {
            None
        },
        application: gen_tier(g, TierKind::Application),
        database: gen_tier(g, TierKind::Database),
    }
}

/// to_xml ∘ from_xml = identity for every valid description.
#[test]
fn xml_roundtrip() {
    run("xml_roundtrip", 256, |g| {
        let desc = gen_description(g);
        let xml = desc.to_xml();
        let parsed = J2eeDescription::from_xml(&xml).expect("own output parses");
        assert_eq!(parsed, desc);
    });
}

/// The parser returns structured errors (never panics) on arbitrary
/// input, including near-XML garbage.
#[test]
fn parser_never_panics() {
    const ANY: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\n', '\t', '<', '>', '/', '=', '"', '\'', '&',
        ';', '!', '?', '-', '_', '.', 'é', '🦀',
    ];
    run("parser_never_panics", 256, |g| {
        let input = g.string_of(ANY, 256);
        let _ = J2eeDescription::from_xml(&input);
    });
}

/// Same, biased toward angle-bracket-rich inputs (tag soup).
#[test]
fn parser_never_panics_on_tag_soup() {
    const SOUP: &[char] = &[
        '<', '>', '/', '=', '"', '\'', ' ', 'a', 'b', 'c', 'j', 't', 'e', 'i', 'r',
    ];
    run("parser_never_panics_on_tag_soup", 256, |g| {
        let input = g.string_of(SOUP, 200);
        let _ = J2eeDescription::from_xml(&input);
    });
}

/// Node accounting matches the tiers: replicas + one balancer each.
#[test]
fn initial_nodes_counts_balancers() {
    run("initial_nodes_counts_balancers", 256, |g| {
        let desc = gen_description(g);
        let mut expected = desc.application.replicas + 1 + desc.database.replicas + 1;
        if let Some(w) = &desc.web {
            expected += w.replicas + 1;
        }
        assert_eq!(desc.initial_nodes(), expected);
    });
}
