//! Property-based tests of the ADL: arbitrary valid descriptions
//! round-trip through XML, and the parser never panics on arbitrary
//! input.

use jade::adl::{J2eeDescription, TierKind, TierSpec};
use jade_tiers::{BalancePolicy, ReadPolicy};
use proptest::prelude::*;

fn tier_strategy(kind: TierKind) -> impl Strategy<Value = TierSpec> {
    (
        1usize..6,
        prop_oneof![Just(BalancePolicy::RoundRobin), Just(BalancePolicy::Random)],
        prop_oneof![
            Just(ReadPolicy::LeastPending),
            Just(ReadPolicy::RoundRobin),
            Just(ReadPolicy::Random)
        ],
    )
        .prop_map(move |(replicas, balance_policy, read_policy)| TierSpec {
            kind,
            replicas,
            balance_policy,
            read_policy,
        })
}

fn description_strategy() -> impl Strategy<Value = J2eeDescription> {
    (
        "[a-z][a-z0-9-]{0,15}",
        proptest::option::of(tier_strategy(TierKind::Web)),
        tier_strategy(TierKind::Application),
        tier_strategy(TierKind::Database),
    )
        .prop_map(|(name, web, application, database)| J2eeDescription {
            name,
            web,
            application,
            database,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// to_xml ∘ from_xml = identity for every valid description.
    #[test]
    fn xml_roundtrip(desc in description_strategy()) {
        let xml = desc.to_xml();
        let parsed = J2eeDescription::from_xml(&xml).expect("own output parses");
        prop_assert_eq!(parsed, desc);
    }

    /// The parser returns structured errors (never panics) on arbitrary
    /// input, including near-XML garbage.
    #[test]
    fn parser_never_panics(input in ".{0,256}") {
        let _ = J2eeDescription::from_xml(&input);
    }

    /// Same, biased toward angle-bracket-rich inputs.
    #[test]
    fn parser_never_panics_on_tag_soup(input in r#"[<>/="'a-z ]{0,200}"#) {
        let _ = J2eeDescription::from_xml(&input);
    }

    /// Node accounting matches the tiers: replicas + one balancer each.
    #[test]
    fn initial_nodes_counts_balancers(desc in description_strategy()) {
        let mut expected = desc.application.replicas + 1 + desc.database.replicas + 1;
        if let Some(w) = &desc.web {
            expected += w.replicas + 1;
        }
        prop_assert_eq!(desc.initial_nodes(), expected);
    }
}
