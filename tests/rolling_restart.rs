//! Rolling-restart administration tests: bounce every replica of a tier
//! without interrupting the service.

use jade::config::SystemConfig;
use jade::experiment::run_experiment_with;
use jade::system::{ManagedTier, Msg};
use jade_rubis::WorkloadRamp;
use jade_sim::{Addr, SimDuration, SimTime};
use jade_tiers::Tier;

fn cfg(app: usize, db: usize) -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(120);
    cfg.description.application.replicas = app;
    cfg.description.database.replicas = db;
    cfg.jade.app_loop.min_replicas = app;
    cfg.jade.db_loop.min_replicas = db;
    cfg
}

#[test]
fn application_tier_rolls_without_downtime() {
    let out = run_experiment_with(cfg(2, 1), SimDuration::from_secs(400), |eng| {
        eng.schedule(
            SimTime::from_secs(120),
            Addr::ROOT,
            Msg::RollingRestart(ManagedTier::Application),
        );
    });
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(
        log.contains("rolling restart of Application: 2 replicas"),
        "{log}"
    );
    assert!(log.contains("complete: 2 replicas bounced"), "{log}");
    // Both Tomcats went through Stopped→Started: the journal records two
    // extra stop/start pairs beyond bootstrap.
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 2);
    // No downtime: requests kept completing through the whole operation
    // (the other replica absorbs the traffic); failures are bounded to
    // the requests in flight on a draining replica.
    assert!(out.app.stats.total_completed() > 4_000);
    let total = out.app.stats.total_completed() + out.app.stats.total_failed();
    assert!(out.app.stats.total_completed() as f64 > 0.995 * total as f64);
    // Both replicas are wired back into the PLB.
    let (_, plb_comp) = out.app.plb.unwrap();
    assert_eq!(out.app.registry.bindings_of(plb_comp, "workers").len(), 2);
}

#[test]
fn database_tier_roll_resynchronizes_each_backend() {
    let out = run_experiment_with(cfg(1, 2), SimDuration::from_secs(400), |eng| {
        eng.schedule(
            SimTime::from_secs(120),
            Addr::ROOT,
            Msg::RollingRestart(ManagedTier::Database),
        );
    });
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(
        log.contains("rolling restart of Database: 2 replicas"),
        "{log}"
    );
    assert!(log.contains("complete: 2 replicas bounced"), "{log}");
    // Each bounced backend re-entered through recovery-log replay and the
    // replicas converged (writes continued on the live one meanwhile).
    let digests: Vec<u64> = out
        .app
        .legacy
        .running_servers_of(Tier::Database)
        .into_iter()
        .map(|s| out.app.legacy.mysql(s).unwrap().digest())
        .collect();
    assert_eq!(digests.len(), 2);
    assert_eq!(digests[0], digests[1]);
    let (cj_server, _) = out.app.cjdbc.unwrap();
    assert_eq!(out.app.legacy.cjdbc(cj_server).unwrap().active_count(), 2);
}

#[test]
fn single_replica_tier_refuses_to_roll() {
    let out = run_experiment_with(cfg(1, 1), SimDuration::from_secs(200), |eng| {
        eng.schedule(
            SimTime::from_secs(60),
            Addr::ROOT,
            Msg::RollingRestart(ManagedTier::Application),
        );
    });
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("refused: needs >= 2 replicas"), "{log}");
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 1);
}

#[test]
fn concurrent_rolling_restarts_are_refused() {
    let out = run_experiment_with(cfg(2, 2), SimDuration::from_secs(400), |eng| {
        eng.schedule(
            SimTime::from_secs(100),
            Addr::ROOT,
            Msg::RollingRestart(ManagedTier::Application),
        );
        eng.schedule(
            SimTime::from_secs(101),
            Addr::ROOT,
            Msg::RollingRestart(ManagedTier::Database),
        );
    });
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("refused: one is already running"), "{log}");
    // The first operation still completed.
    assert!(log.contains("rolling restart of Application"), "{log}");
    assert!(log.contains("complete: 2 replicas bounced"), "{log}");
}
