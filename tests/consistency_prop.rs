//! Property-based tests of the C-JDBC replication substrate: for
//! *arbitrary* interleavings of writes and backend membership churn, all
//! active replicas converge to identical database contents (paper §4.1's
//! recovery-log state reconciliation).

use jade_propcheck::{run, Gen};
use jade_tiers::cjdbc::{BackendStatus, CjdbcController, ReadPolicy};
use jade_tiers::sql::{Schema, Statement, Value};
use jade_tiers::storage::Database;
use jade_tiers::ServerId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One table with an indexed column, so membership churn also exercises
/// secondary-index maintenance through replay.
fn schema() -> Arc<Schema> {
    Schema::builder().table("t", &["a"]).index("t", "a").build()
}

/// Abstract operations the property generates.
#[derive(Debug, Clone)]
enum Op {
    /// Execute a write through the controller.
    Write(i64),
    /// Delete a (possibly missing) row.
    Delete(u64),
    /// Disable backend `i % backends` if active.
    Disable(u8),
    /// (Re-)enable backend `i % backends` if disabled, replaying the log.
    Enable(u8),
    /// Crash-fail backend `i % backends` (checkpoint reset).
    Fail(u8),
}

fn gen_op(g: &mut Gen) -> Op {
    match g.weighted(&[5, 2, 1, 2, 1]) {
        0 => Op::Write(g.i64()),
        1 => Op::Delete(g.u64(0..64)),
        2 => Op::Disable(g.u8()),
        3 => Op::Enable(g.u8()),
        _ => Op::Fail(g.u8()),
    }
}

/// A model cluster: the controller plus one real `Database` per backend,
/// with replay applied exactly as the legacy layer does it.
struct Model {
    ctrl: CjdbcController,
    dbs: BTreeMap<ServerId, Database>,
}

impl Model {
    fn new(backends: u32) -> Self {
        let schema = schema();
        let mut ctrl = CjdbcController::new(ReadPolicy::RoundRobin, Arc::clone(&schema));
        let mut dbs = BTreeMap::new();
        for i in 0..backends {
            let id = ServerId(i);
            ctrl.register_backend(id);
            let replay = ctrl.begin_enable(id).unwrap();
            assert!(replay.is_empty());
            assert!(ctrl.finish_replay(id).unwrap().is_none());
            dbs.insert(id, Database::new(Arc::clone(&schema)));
        }
        let mut model = Model { ctrl, dbs };
        model.write(schema.create_table("t"));
        model
    }

    fn write(&mut self, stmt: Statement) {
        let stmt = Arc::new(stmt);
        if let Ok((_, targets)) = self.ctrl.route_write(Arc::clone(&stmt)) {
            for t in targets {
                let _ = self.dbs.get_mut(&t).unwrap().execute(&stmt);
                self.ctrl.note_complete(t);
            }
        }
    }

    fn backend(&self, i: u8) -> ServerId {
        let ids: Vec<ServerId> = self.dbs.keys().copied().collect();
        ids[i as usize % ids.len()]
    }

    fn enable(&mut self, id: ServerId) {
        if self.ctrl.status(id) != Ok(BackendStatus::Disabled) {
            return;
        }
        let mut batch = self.ctrl.begin_enable(id).unwrap();
        loop {
            let db = self.dbs.get_mut(&id).unwrap();
            if let Some((_, snapshot)) = &batch.snapshot {
                *db = Database::from_snapshot(snapshot);
            }
            for entry in &batch.entries {
                match &entry.delta {
                    Some(delta) => {
                        let _ = db.apply_delta(delta);
                    }
                    None => {
                        let _ = db.execute(&entry.statement);
                    }
                }
            }
            match self.ctrl.finish_replay(id).unwrap() {
                Some(next) => batch = next,
                None => break,
            }
        }
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Write(v) => self.write(schema().insert("t", &[("a", Value::Int(*v))])),
            Op::Delete(k) => {
                let table = schema().must_table("t");
                self.write(Statement::Delete { table, key: *k });
            }
            Op::Disable(i) => {
                let id = self.backend(*i);
                // Never disable the last active backend (C-JDBC refuses
                // to drop below one; our reactor enforces min_replicas).
                if self.ctrl.active_count() > 1 {
                    let _ = self.ctrl.disable_backend(id);
                }
            }
            Op::Enable(i) => self.enable(self.backend(*i)),
            Op::Fail(i) => {
                let id = self.backend(*i);
                if self.ctrl.active_count() > 1 || self.ctrl.status(id) != Ok(BackendStatus::Active)
                {
                    let _ = self.ctrl.fail_backend(id);
                    // A crash-failed replica's disk is not trusted: the
                    // checkpoint resets to zero and the replica is
                    // re-initialized before re-enabling — exactly what
                    // the repair manager does by deploying a fresh
                    // server restored from the base dump.
                    self.dbs.insert(id, Database::new(schema()));
                }
            }
        }
    }
}

/// After any operation sequence, re-enabling everything makes every
/// replica's content digest identical.
#[test]
fn replicas_converge_after_membership_churn() {
    run("replicas_converge_after_membership_churn", 128, |g| {
        let backends = g.u32(2..5);
        let ops = g.vec(1..120, gen_op);
        let mut m = Model::new(backends);
        for op in &ops {
            m.apply(op);
        }
        // Bring everyone back in.
        let ids: Vec<ServerId> = m.dbs.keys().copied().collect();
        for id in ids {
            m.enable(id);
        }
        let digests: Vec<u64> = m.dbs.values().map(Database::digest).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "replicas diverged: {digests:?}"
        );
    });
}

/// Active replicas are identical at *every* step, not just at the end
/// (writes are broadcast atomically w.r.t. membership).
#[test]
fn active_replicas_identical_at_every_step() {
    run("active_replicas_identical_at_every_step", 128, |g| {
        let backends = g.u32(2..4);
        let ops = g.vec(1..60, gen_op);
        let mut m = Model::new(backends);
        for op in &ops {
            m.apply(op);
            let digests: Vec<u64> = m
                .ctrl
                .active_backends()
                .into_iter()
                .map(|id| m.dbs[&id].digest())
                .collect();
            assert!(
                digests.windows(2).all(|w| w[0] == w[1]),
                "active replicas diverged after {op:?}"
            );
        }
    });
}

/// The recovery log's backlog accounting is exact: a disabled backend's
/// backlog equals the number of writes accepted while it was out.
#[test]
fn backlog_counts_missed_writes() {
    run("backlog_counts_missed_writes", 128, |g| {
        let writes_before = g.u64(0..30);
        let writes_during = g.u64(0..30);
        let mut m = Model::new(2);
        for i in 0..writes_before {
            m.apply(&Op::Write(i as i64));
        }
        let id = ServerId(1);
        m.ctrl.disable_backend(id).unwrap();
        let checkpoint = m.ctrl.checkpoint(id).unwrap();
        for i in 0..writes_during {
            m.apply(&Op::Write(1000 + i as i64));
        }
        assert_eq!(m.ctrl.recovery_log().backlog(checkpoint), writes_during);
    });
}
