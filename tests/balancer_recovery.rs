//! Self-recovery of the load balancers — the architecture's single points
//! of failure. Reference \[4\]'s repair manager covers *any* managed
//! element; these tests crash the PLB and C-JDBC nodes and verify the
//! service is rebuilt and consistent.

use jade::config::SystemConfig;
use jade::experiment::run_experiment_with;
use jade::system::{ManagedTier, Msg};
use jade_cluster::NodeId;
use jade_rubis::WorkloadRamp;
use jade_sim::{Addr, SimDuration, SimTime};
use jade_tiers::{ServerState, Tier};

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(120);
    cfg.jade.self_repair = true;
    cfg.description.database.replicas = 2;
    cfg.jade.db_loop.min_replicas = 2;
    cfg
}

// Deployment order: node 0 = C-JDBC, node 1 = PLB, node 2 = Tomcat1,
// nodes 3,4 = MySQL1/2.
const CJDBC_NODE: NodeId = NodeId(0);
const PLB_NODE: NodeId = NodeId(1);

#[test]
fn plb_crash_is_repaired_and_traffic_resumes() {
    let out = run_experiment_with(cfg(), SimDuration::from_secs(500), |eng| {
        eng.schedule(
            SimTime::from_secs(150),
            Addr::ROOT,
            Msg::CrashNode(PLB_NODE),
        );
    });
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("repairing balancer PLB"), "{log}");
    assert!(log.contains("PLB redeployed"), "{log}");
    // The new PLB is running on a different node with the worker rebound.
    let (plb_server, plb_comp) = out.app.plb.expect("plb exists");
    let plb = out.app.legacy.server(plb_server).unwrap();
    assert_eq!(plb.process().state, ServerState::Running);
    assert_ne!(plb.process().node, PLB_NODE);
    assert!(!out.app.registry.bindings_of(plb_comp, "workers").is_empty());
    // Traffic resumed after the outage: completions in the last 100 s.
    let late: u64 = out
        .app
        .stats
        .windows()
        .iter()
        .rev()
        .take(10)
        .map(|w| w.completed)
        .sum();
    assert!(late > 50, "no traffic after PLB repair: {late}");
    // Requests in flight during the outage failed (and only those).
    assert!(out.app.stats.total_failed() > 0);
}

#[test]
fn cjdbc_crash_is_repaired_with_consistent_backends() {
    let out = run_experiment_with(cfg(), SimDuration::from_secs(500), |eng| {
        eng.schedule(
            SimTime::from_secs(150),
            Addr::ROOT,
            Msg::CrashNode(CJDBC_NODE),
        );
    });
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("repairing balancer C-JDBC"), "{log}");
    let (cj_server, cj_comp) = out.app.cjdbc.expect("cjdbc exists");
    let cj = out.app.legacy.server(cj_server).unwrap();
    assert_eq!(cj.process().state, ServerState::Running);
    assert_ne!(cj.process().node, CJDBC_NODE);
    // Both surviving replicas re-registered and active again.
    assert_eq!(
        out.app.registry.bindings_of(cj_comp, "backends").len(),
        2,
        "backends rebound"
    );
    assert_eq!(
        out.app.legacy.cjdbc(cj_server).unwrap().active_count(),
        2,
        "backends active after re-registration"
    );
    // Replicas stayed mutually consistent through the controller loss and
    // the writes that followed.
    let digests: Vec<u64> = out
        .app
        .legacy
        .running_servers_of(Tier::Database)
        .into_iter()
        .map(|s| out.app.legacy.mysql(s).unwrap().digest())
        .collect();
    assert_eq!(digests.len(), 2);
    assert_eq!(digests[0], digests[1]);
    // Writes flowed after the repair (the fresh recovery log grew).
    assert!(
        out.app
            .legacy
            .cjdbc(cj_server)
            .unwrap()
            .recovery_log()
            .head()
            > 0,
        "no writes after C-JDBC repair"
    );
    assert_eq!(out.app.running_replicas(ManagedTier::Database), 2);
}

/// Regression (found by the chaos property test): the C-JDBC controller
/// crashes while a new backend is mid-synchronization. The stale backend
/// must be restored from a dump of the Active survivor — and the old
/// controller's in-flight replay batch must be dropped, not applied on
/// top of the restored state. A replica deployed later must also start
/// from the *re-snapshotted* base image, since the fresh recovery log
/// cannot bridge from the original dataset dump.
#[test]
fn controller_crash_during_backend_sync_stays_consistent() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.seed = 0;
    cfg.ramp = WorkloadRamp::constant(154);
    cfg.jade.self_repair = true;
    let out = run_experiment_with(cfg, SimDuration::from_secs(240), |eng| {
        // t=33: C-JDBC's node dies while MySQL2 (deployed at t≈1) is
        // still replaying the recovery log. t=61: the Active replica's
        // node dies too, forcing a redeploy from the new base image.
        eng.schedule(
            SimTime::from_secs(33),
            Addr::ROOT,
            Msg::CrashNode(NodeId(0)),
        );
        eng.schedule(
            SimTime::from_secs(61),
            Addr::ROOT,
            Msg::CrashNode(NodeId(3)),
        );
    });
    let log = format!("{:?}", out.app.reconfig_log);
    assert!(log.contains("repairing balancer C-JDBC"), "{log}");
    assert!(log.contains("restored stale backend"), "{log}");
    let replicas: Vec<_> = out.app.legacy.running_servers_of(Tier::Database);
    assert_eq!(replicas.len(), 2, "{log}");
    let digests: Vec<u64> = replicas
        .into_iter()
        .map(|s| out.app.legacy.mysql(s).unwrap().digest())
        .collect();
    assert_eq!(digests[0], digests[1], "replicas must converge; log: {log}");
}
