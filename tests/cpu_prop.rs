//! Differential property test: the virtual-time `PsCpu` against the
//! original scan-on-advance `NaivePsCpu` it replaced (kept in
//! `jade_bench::reference`).
//!
//! Both models are driven through identical random interleavings of
//! `submit` / `abort` / `abort_all` / `next_completion` /
//! `collect_completions` under both efficiency curves and must agree on
//!
//! * which jobs complete in each collect call (the completion *sets*, and
//!   hence completion *times* at the driver's observable resolution),
//! * the predicted next-completion instant within 1e-6 s (the two
//!   formulations associate their float arithmetic differently, so the
//!   ceil-to-microsecond rounding may split a boundary),
//! * which jobs an `abort` finds resident, and the sets `abort_all`
//!   returns,
//! * the busy-time accounting of the `UtilizationTracker`.
//!
//! Reproduce a failure with `PROPCHECK_SEED` / `PROPCHECK_CASES` as
//! printed by the harness.

use jade_bench::NaivePsCpu;
use jade_propcheck::{run, Gen};
use jade_sim::{EfficiencyCurve, JobId, PsCpu, SimDuration, SimTime};

/// Max divergence of the two models' timer predictions: 1 µs = 1e-6 s.
const TOLERANCE: SimDuration = SimDuration::from_micros(1);

fn curve(g: &mut Gen) -> EfficiencyCurve {
    if g.bool() {
        EfficiencyCurve::Ideal
    } else {
        EfficiencyCurve::Thrashing {
            knee: g.usize(1..8),
            slope: g.f64(0.05..0.8),
        }
    }
}

fn abs_diff(a: SimTime, b: SimTime) -> SimDuration {
    if a >= b {
        a - b
    } else {
        b - a
    }
}

fn differential_case(g: &mut Gen) {
    let curve = curve(g);
    let speed = *g.choose(&[0.5, 1.0, 2.0]);
    let mut vt = PsCpu::new(speed, curve);
    let mut naive = NaivePsCpu::new(speed, curve);

    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    let mut resident: Vec<JobId> = Vec::new();
    let ops = g.usize(20..120);

    for _ in 0..ops {
        // Drive both models at the same instants. When their timer
        // predictions differ by the permitted microsecond, step to the
        // *later* one so a boundary-straddling job has completed in both.
        match g.weighted(&[5, 2, 1, 4]) {
            // Submit a burst of fresh jobs.
            0 => {
                for _ in 0..g.usize(1..6) {
                    let id = JobId(next_id);
                    next_id += 1;
                    let demand = SimDuration::from_micros(g.u64(0..200_000));
                    vt.submit(now, id, demand);
                    naive.submit(now, id, demand);
                    resident.push(id);
                }
            }
            // Abort one job — resident or (sometimes) already gone.
            1 => {
                let id = if !resident.is_empty() && g.weighted(&[4, 1]) == 0 {
                    *g.choose(&resident)
                } else {
                    JobId(g.u64(0..next_id.max(1)))
                };
                let a = vt.abort(now, id);
                let b = naive.abort(now, id);
                assert_eq!(a, b, "abort({id:?}) residency disagrees at {now}");
                resident.retain(|&r| r != id);
            }
            // Abort everything.
            2 => {
                let mut a = vt.abort_all(now);
                let mut b = naive.abort_all(now);
                a.sort();
                b.sort();
                assert_eq!(a, b, "abort_all sets disagree at {now}");
                resident.clear();
            }
            // Let time pass: to the next completion, or an arbitrary hop.
            _ => {
                let a = vt.next_completion(now);
                let b = naive.next_completion(now);
                match (a, b) {
                    (Some(ta), Some(tb)) => {
                        assert!(
                            abs_diff(ta, tb) <= TOLERANCE,
                            "next_completion diverged: vt {ta} vs naive {tb} at {now}"
                        );
                        now = ta.max(tb);
                    }
                    (None, None) => {
                        now += SimDuration::from_micros(g.u64(1..50_000));
                    }
                    (a, b) => panic!("idleness disagrees at {now}: vt {a:?} vs naive {b:?}"),
                }
                if g.bool() {
                    now += SimDuration::from_micros(g.u64(0..30_000));
                }
            }
        }

        // Completion sets must match at every observation point; the
        // driver timestamps both drains identically, so set equality is
        // completion-time equality at the observable resolution.
        let mut da = vt.collect_completions(now);
        let mut db = naive.collect_completions(now);
        da.sort();
        db.sort();
        assert_eq!(da, db, "completion sets disagree at {now}");
        for done in &da {
            resident.retain(|r| r != done);
        }
        assert_eq!(vt.load(), naive.load(), "loads disagree at {now}");
        assert_eq!(vt.load(), resident.len());
    }

    // Drain to idle: the tail of completions must line up too.
    let mut guard = 0;
    while let (Some(ta), Some(tb)) = {
        let a = vt.next_completion(now);
        let b = naive.next_completion(now);
        assert_eq!(a.is_some(), b.is_some(), "idleness disagrees draining");
        (a, b)
    } {
        assert!(
            abs_diff(ta, tb) <= TOLERANCE,
            "drain next_completion diverged: vt {ta} vs naive {tb}"
        );
        now = ta.max(tb);
        let mut da = vt.collect_completions(now);
        let mut db = naive.collect_completions(now);
        da.sort();
        db.sort();
        assert_eq!(da, db, "drain completion sets disagree at {now}");
        guard += 1;
        assert!(guard < 10_000, "drain did not converge");
    }
    assert_eq!(vt.load(), 0);
    assert_eq!(naive.load(), 0);

    // Both models went busy/idle at the same driver timestamps, so the
    // integer-microsecond busy accounting must be identical.
    assert_eq!(
        vt.busy_time(now),
        naive.busy_time(now),
        "busy-time accounting disagrees"
    );
}

#[test]
fn virtual_time_cpu_matches_naive_reference() {
    run("ps_cpu_differential", 192, differential_case);
}

/// Same drive, but forcing the pathological mix the virtual-time model's
/// lazy cancellation has to absorb: large populations with heavy aborts.
#[test]
fn virtual_time_cpu_survives_abort_storms() {
    run("ps_cpu_abort_storm", 48, |g| {
        let curve = curve(g);
        let mut vt = PsCpu::new(1.0, curve);
        let mut naive = NaivePsCpu::new(1.0, curve);
        let now = SimTime::ZERO;
        let n = g.usize(100..400);
        for i in 0..n {
            let demand = SimDuration::from_micros(g.u64(1_000..100_000));
            vt.submit(now, JobId(i as u64), demand);
            naive.submit(now, JobId(i as u64), demand);
        }
        // Abort most of the population in random order.
        for i in 0..n {
            if g.weighted(&[3, 1]) == 0 {
                let id = JobId(i as u64);
                assert_eq!(vt.abort(now, id), naive.abort(now, id));
            }
        }
        assert_eq!(vt.load(), naive.load());
        // The survivors drain identically.
        let mut t = now;
        loop {
            let (a, b) = (vt.next_completion(t), naive.next_completion(t));
            assert_eq!(a.is_some(), b.is_some());
            let Some(ta) = a else { break };
            let tb = b.unwrap();
            assert!(abs_diff(ta, tb) <= TOLERANCE);
            t = ta.max(tb);
            let mut da = vt.collect_completions(t);
            let mut db = naive.collect_completions(t);
            da.sort();
            db.sort();
            assert_eq!(da, db);
        }
        assert_eq!(vt.load(), 0);
    });
}
