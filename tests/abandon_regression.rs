//! Regression tests for the cancellable abandon timer and the stale-id
//! path of the slab-backed lifecycle.
//!
//! Request slots are recycled aggressively, so a patience timer that
//! outlives its request carries an id whose slot may already belong to a
//! *different* request. Completion and failure therefore cancel the
//! timer, and any event that still slips through must miss the slab's
//! generation check instead of abandoning the innocent new occupant.

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

/// A healthy system whose requests complete far inside the patience
/// window, for long enough that every slab slot is reused many times per
/// window. If completion failed to cancel the timer — or a fired stale
/// timer matched a recycled slot — some later request would be abandoned
/// spuriously.
#[test]
fn recycled_slots_are_never_abandoned_by_stale_timers() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(120);
    cfg.seed = 17;
    cfg.client_patience = Some(SimDuration::from_secs(20));
    let out = run_experiment(cfg, SimDuration::from_secs(300));
    assert!(
        out.metrics.counter("requests.completed") > 3_000,
        "slots must be recycled many times over"
    );
    assert_eq!(out.metrics.counter("requests.abandoned"), 0);
    assert_eq!(out.metrics.counter("requests.failed"), 0);
}

/// Completions and abandons interleaving on the same recycled slots:
/// every failure in this scenario is an abandonment (nothing crashes and
/// no accept queue overflows), so a single cross-talk casualty would
/// break the `failed == abandoned` balance.
#[test]
fn abandons_and_completions_share_slots_without_cross_talk() {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(250);
    cfg.seed = 23;
    cfg.client_patience = Some(SimDuration::from_millis(700));
    let out = run_experiment(cfg.clone(), SimDuration::from_secs(150));
    let completed = out.metrics.counter("requests.completed");
    let abandoned = out.metrics.counter("requests.abandoned");
    let failed = out.metrics.counter("requests.failed");
    assert!(completed > 0 && abandoned > 0, "both paths must be hot");
    assert_eq!(failed, abandoned);
    // And the interleaving is reproducible.
    let again = run_experiment(cfg, SimDuration::from_secs(150));
    assert_eq!(out.outcome_digest(), again.outcome_digest());
    assert_eq!(out.events, again.events);
}
