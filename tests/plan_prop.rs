//! Differential property tests of the compiled interaction plans
//! (`jade_tiers::plan`) against the interpreted prepared-statement
//! oracle.
//!
//! For every interaction template and seeded parameter stream, compiled
//! execution must match interpreted execution **result-for-result** (the
//! same `ExecSummary` and the same scratch rows per query),
//! **error-for-error** (including against a database whose schema lacks
//! the tables), and **digest-for-digest** (the two engines' contents stay
//! byte-identical after every interaction) — and the generators must
//! consume the identical RNG draw stream, which is what keeps every
//! committed `results/*.json` outcome digest byte-identical when the hot
//! path switches representation.
//!
//! The second property proves delta-capture parity under the replication
//! path: a primary capturing a compiled write step emits a `WriteDelta`
//! whose application converges replicas to the same digest as the
//! interpreted capture, write for write.
//!
//! Reproduce a failure with `PROPCHECK_SEED` / `PROPCHECK_CASES` as
//! printed by the harness.

use jade_propcheck::run;
use jade_rubis::interactions::{generate_plan, generate_plan_compiled_into, INTERACTIONS};
use jade_rubis::{dataset_statements, rubis_schema, DatasetSpec, InteractionMix, KeySpace};
use jade_sim::SimRng;
use jade_tiers::request::{DbQuery, SqlProgram};
use jade_tiers::sql::{Schema, SharedRow};
use jade_tiers::storage::Database;

/// The RUBiS database both engines start from (tiny spec keeps the
/// per-case cost down; the dataset seed is fixed so scan postings are
/// non-trivial but reproducible).
fn loaded_db(seed: u64) -> Database {
    let schema = rubis_schema();
    let mut rng = SimRng::seed_from_u64(seed);
    let dump = dataset_statements(DatasetSpec::tiny(), &mut rng);
    let mut db = Database::new(schema);
    let mut scratch = Vec::new();
    for stmt in &dump {
        let _ = db.execute_into(stmt, &mut scratch);
    }
    db
}

/// Executes one interpreted/compiled plan pair, checking result, rows,
/// materialized statement, and digest parity after every query. The two
/// plans must stem from twin RNG/key-space states.
fn check_plan_pair(
    name: &str,
    interp: &jade_tiers::InteractionPlan,
    compiled: &jade_tiers::InteractionPlan,
    db_interp: &mut Database,
    db_compiled: &mut Database,
    scratch_a: &mut Vec<(u64, SharedRow)>,
    scratch_b: &mut Vec<(u64, SharedRow)>,
) {
    assert_eq!(compiled.name, interp.name, "{name}");
    assert_eq!(compiled.pre_demand, interp.pre_demand, "{name} pre jitter");
    assert_eq!(
        compiled.post_demand, interp.post_demand,
        "{name} post jitter"
    );
    assert_eq!(compiled.sql.len(), interp.sql.len(), "{name} query count");
    assert_eq!(compiled.has_write(), interp.has_write(), "{name} writes");
    let ops = interp.sql.as_ops();
    let SqlProgram::Compiled(run) = &compiled.sql else {
        panic!("{name}: compiled generator must emit a compiled run");
    };
    for (idx, op) in ops.iter().enumerate() {
        let step = &run.plan.steps[idx];
        assert_eq!(
            step.statement(&run.params),
            *op.statement,
            "{name} step {idx} materialization"
        );
        assert_eq!(
            run.demands[idx], op.demand,
            "{name} step {idx} jittered demand"
        );
        let a = db_interp.execute_into(&op.statement, scratch_a);
        let b = db_compiled.execute_step_into(step, &run.params, scratch_b);
        assert_eq!(a, b, "{name} step {idx} summary");
        assert_eq!(scratch_a, scratch_b, "{name} step {idx} result rows");
        if !step.is_write() {
            // The count-only read probe (what the fused/dispatch path
            // runs) agrees with the materializing oracle's summary.
            assert_eq!(
                db_compiled.read_step_summary(step, &run.params),
                b,
                "{name} step {idx} count probe"
            );
        }
        assert_eq!(
            db_interp.digest(),
            db_compiled.digest(),
            "{name} step {idx} digest"
        );
        // The dispatch-path view agrees on classification and demand.
        let q = compiled.sql.query_at(idx);
        assert_eq!(q.is_write(), op.is_write(), "{name} step {idx} class");
        assert_eq!(q.demand(), op.demand, "{name} step {idx} view demand");
        assert!(matches!(q, DbQuery::Step { .. }), "{name} borrowed form");
    }
}

/// Every interaction template, under random seeds: compiled execution is
/// result-, row-, and digest-identical to interpreted execution, and the
/// two generators consume the same RNG stream and key-space mutations.
#[test]
fn compiled_matches_interpreted_per_interaction() {
    run("compiled_matches_interpreted_per_interaction", 24, |g| {
        let seed = g.u64(0..u64::MAX);
        let mut db_interp = loaded_db(0xD0D0);
        let mut db_compiled = db_interp.clone();
        let mut rng_a = SimRng::seed_from_u64(seed);
        let mut rng_b = SimRng::seed_from_u64(seed);
        let mut ks_a: KeySpace = DatasetSpec::tiny().into();
        let mut ks_b: KeySpace = DatasetSpec::tiny().into();
        let (mut scratch_a, mut scratch_b) = (Vec::new(), Vec::new());
        for (i, t) in INTERACTIONS.iter().enumerate() {
            let interp = generate_plan(t, &mut ks_a, &mut rng_a);
            let compiled =
                generate_plan_compiled_into(i, &mut ks_b, &mut rng_b, Vec::new(), Vec::new());
            check_plan_pair(
                t.name,
                &interp,
                &compiled,
                &mut db_interp,
                &mut db_compiled,
                &mut scratch_a,
                &mut scratch_b,
            );
            assert_eq!(rng_a.f64(), rng_b.f64(), "{} rng stream", t.name);
            assert_eq!(
                (ks_a.users, ks_a.items, ks_a.bids, ks_a.comments),
                (ks_b.users, ks_b.items, ks_b.bids, ks_b.comments),
                "{} key space",
                t.name
            );
        }
    });
}

/// A long stationary bidding-mix stream: the per-request differential
/// holds across accumulated state (inserted keys, grown postings, updated
/// rows), not just against the pristine dataset.
#[test]
fn compiled_matches_interpreted_over_a_mix_stream() {
    run("compiled_matches_interpreted_over_a_mix_stream", 12, |g| {
        let seed = g.u64(0..u64::MAX);
        let n = g.usize(20..120);
        let mix = InteractionMix::bidding();
        let mut db_interp = loaded_db(0xD0D0);
        let mut db_compiled = db_interp.clone();
        let mut rng_a = SimRng::seed_from_u64(seed);
        let mut rng_b = SimRng::seed_from_u64(seed);
        let mut ks_a: KeySpace = DatasetSpec::tiny().into();
        let mut ks_b: KeySpace = DatasetSpec::tiny().into();
        let (mut scratch_a, mut scratch_b) = (Vec::new(), Vec::new());
        for _ in 0..n {
            let i = mix.sample_index(&mut rng_a);
            assert_eq!(i, mix.sample_index(&mut rng_b), "mix draw");
            let t = &INTERACTIONS[i];
            let interp = generate_plan(t, &mut ks_a, &mut rng_a);
            let compiled =
                generate_plan_compiled_into(i, &mut ks_b, &mut rng_b, Vec::new(), Vec::new());
            check_plan_pair(
                t.name,
                &interp,
                &compiled,
                &mut db_interp,
                &mut db_compiled,
                &mut scratch_a,
                &mut scratch_b,
            );
        }
        assert_eq!(db_interp.digest(), db_compiled.digest(), "final digest");
    });
}

/// Error-for-error parity: against a database whose schema lacks every
/// RUBiS table, each compiled step fails with exactly the error its
/// interpreted statement fails with (and neither mutates the database).
#[test]
fn compiled_errors_match_interpreted_errors() {
    run("compiled_errors_match_interpreted_errors", 12, |g| {
        let seed = g.u64(0..u64::MAX);
        let mut empty_a = Database::new(Schema::empty());
        let mut empty_b = Database::new(Schema::empty());
        let mut rng_a = SimRng::seed_from_u64(seed);
        let mut rng_b = SimRng::seed_from_u64(seed);
        let mut ks_a: KeySpace = DatasetSpec::tiny().into();
        let mut ks_b: KeySpace = DatasetSpec::tiny().into();
        let (mut scratch_a, mut scratch_b) = (Vec::new(), Vec::new());
        for (i, t) in INTERACTIONS.iter().enumerate() {
            let interp = generate_plan(t, &mut ks_a, &mut rng_a);
            let compiled =
                generate_plan_compiled_into(i, &mut ks_b, &mut rng_b, Vec::new(), Vec::new());
            let ops = interp.sql.as_ops();
            let SqlProgram::Compiled(run) = &compiled.sql else {
                panic!("compiled run expected");
            };
            for (idx, op) in ops.iter().enumerate() {
                let step = &run.plan.steps[idx];
                let a = empty_a.execute_into(&op.statement, &mut scratch_a);
                let b = empty_b.execute_step_into(step, &run.params, &mut scratch_b);
                assert!(a.is_err(), "{} step {idx} must miss the table", t.name);
                assert_eq!(a, b, "{} step {idx} error", t.name);
                if !step.is_write() {
                    assert_eq!(
                        empty_b.read_step_summary(step, &run.params),
                        b,
                        "{} step {idx} probe error",
                        t.name
                    );
                }
            }
            assert_eq!(empty_a.digest(), empty_b.digest());
        }
    });
}

/// Delta-capture parity under the replication path: captured compiled
/// writes converge delta-applying replicas to the same digests as
/// captured interpreted writes, write for write — including failed
/// captures, where both sides fall back to re-execution.
#[test]
fn compiled_delta_capture_matches_interpreted() {
    run("compiled_delta_capture_matches_interpreted", 12, |g| {
        let seed = g.u64(0..u64::MAX);
        let n = g.usize(20..100);
        let mix = InteractionMix::bidding();
        let mut primary_a = loaded_db(0xD0D0);
        let mut primary_b = primary_a.clone();
        let mut replica_a = primary_a.clone();
        let mut replica_b = primary_a.clone();
        let mut rng_a = SimRng::seed_from_u64(seed);
        let mut rng_b = SimRng::seed_from_u64(seed);
        let mut ks_a: KeySpace = DatasetSpec::tiny().into();
        let mut ks_b: KeySpace = DatasetSpec::tiny().into();
        let (mut scratch_a, mut scratch_b) = (Vec::new(), Vec::new());
        for _ in 0..n {
            let i = mix.sample_index(&mut rng_a);
            assert_eq!(i, mix.sample_index(&mut rng_b));
            let t = &INTERACTIONS[i];
            let interp = generate_plan(t, &mut ks_a, &mut rng_a);
            let compiled =
                generate_plan_compiled_into(i, &mut ks_b, &mut rng_b, Vec::new(), Vec::new());
            let ops = interp.sql.as_ops();
            let SqlProgram::Compiled(run) = &compiled.sql else {
                panic!("compiled run expected");
            };
            for (idx, op) in ops.iter().enumerate() {
                let step = &run.plan.steps[idx];
                if !op.is_write() {
                    // Reads execute on the primaries only (the cluster
                    // routes them to one backend).
                    let a = primary_a.execute_into(&op.statement, &mut scratch_a);
                    let b = primary_b.execute_step_into(step, &run.params, &mut scratch_b);
                    assert_eq!(a, b, "{} read {idx}", t.name);
                    continue;
                }
                let a = primary_a.execute_capture(&op.statement);
                let b = primary_b.execute_step_capture(step, &run.params);
                match (a, b) {
                    (Ok((sa, da)), Ok((sb, db))) => {
                        assert_eq!(sa, sb, "{} write {idx} summary", t.name);
                        replica_a.apply_delta(&da).expect("interpreted delta");
                        replica_b.apply_delta(&db).expect("compiled delta");
                    }
                    (Err(ea), Err(eb)) => {
                        assert_eq!(ea, eb, "{} write {idx} error", t.name);
                        let _ = replica_a.execute_into(&op.statement, &mut scratch_a);
                        let _ = replica_b.execute_step_into(step, &run.params, &mut scratch_b);
                    }
                    (a, b) => panic!(
                        "{} write {idx}: capture outcomes differ: {a:?} vs {b:?}",
                        t.name
                    ),
                }
                let d = primary_a.digest();
                assert_eq!(d, primary_b.digest(), "{} write {idx} primary", t.name);
                assert_eq!(d, replica_a.digest(), "{} write {idx} replica A", t.name);
                assert_eq!(d, replica_b.digest(), "{} write {idx} replica B", t.name);
            }
        }
    });
}

/// The fused `execute_plan` entry point lands on the same database state
/// and result cardinality as per-statement interpreted execution.
#[test]
fn fused_execute_plan_matches_statement_loop() {
    run("fused_execute_plan_matches_statement_loop", 12, |g| {
        let seed = g.u64(0..u64::MAX);
        let n = g.usize(10..60);
        let mix = InteractionMix::bidding();
        let mut db_interp = loaded_db(0xD0D0);
        let mut db_compiled = db_interp.clone();
        let mut rng_a = SimRng::seed_from_u64(seed);
        let mut rng_b = SimRng::seed_from_u64(seed);
        let mut ks_a: KeySpace = DatasetSpec::tiny().into();
        let mut ks_b: KeySpace = DatasetSpec::tiny().into();
        let (mut scratch_a, mut scratch_b) = (Vec::new(), Vec::new());
        for _ in 0..n {
            let i = mix.sample_index(&mut rng_a);
            assert_eq!(i, mix.sample_index(&mut rng_b));
            let t = &INTERACTIONS[i];
            let interp = generate_plan(t, &mut ks_a, &mut rng_a);
            let compiled =
                generate_plan_compiled_into(i, &mut ks_b, &mut rng_b, Vec::new(), Vec::new());
            let mut acc_a = 0u64;
            for op in interp.sql.as_ops() {
                if let Ok(s) = db_interp.execute_into(&op.statement, &mut scratch_a) {
                    acc_a += s.cardinality();
                }
            }
            let SqlProgram::Compiled(run) = &compiled.sql else {
                panic!("compiled run expected");
            };
            let acc_b = db_compiled.execute_plan(run.plan, &run.params, &mut scratch_b);
            assert_eq!(acc_a, acc_b, "{} fused cardinality", t.name);
            assert_eq!(db_interp.digest(), db_compiled.digest(), "{}", t.name);
        }
    });
}
