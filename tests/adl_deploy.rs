//! ADL → deployment integration: interpreting an architecture description
//! produces exactly the described system (paper §3.3), with the wrappers'
//! configuration artifacts in place.

use jade::adl::J2eeDescription;
use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade::system::ManagedTier;
use jade_cluster::NodeId;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;
use jade_tiers::{BalancePolicy, ReadPolicy, Tier};

fn deploy(adl: &str, nodes: usize) -> jade::experiment::ExperimentOutput {
    let mut cfg = SystemConfig::paper_managed();
    cfg.description = J2eeDescription::from_xml(adl).expect("valid ADL");
    cfg.nodes = nodes;
    cfg.ramp = WorkloadRamp::constant(40);
    // These tests check *deployment*, not optimization: at 40 clients the
    // self-optimizer would (correctly) reclaim the idle extra replicas,
    // so pin the replica counts by disabling reconfiguration.
    cfg.jade.managed = false;
    run_experiment(cfg, SimDuration::from_secs(60))
}

#[test]
fn replicas_match_the_description() {
    let out = deploy(
        r#"<j2ee name="rubis">
             <tier kind="application" replicas="2"/>
             <tier kind="database" replicas="3"/>
           </j2ee>"#,
        9,
    );
    assert_eq!(out.app.running_replicas(ManagedTier::Application), 2);
    assert_eq!(out.app.running_replicas(ManagedTier::Database), 3);
    assert_eq!(out.app.allocated_nodes(), 7); // 2 + 3 + PLB + C-JDBC
    let tree = out.app.render_architecture();
    for name in [
        "PLB", "C-JDBC", "Tomcat1", "Tomcat2", "MySQL1", "MySQL2", "MySQL3",
    ] {
        assert!(tree.contains(name), "missing {name} in:\n{tree}");
    }
}

#[test]
fn policies_flow_into_the_legacy_layer() {
    let out = deploy(
        r#"<j2ee name="rubis">
             <tier kind="application" replicas="1" policy="random"/>
             <tier kind="database" replicas="1" read-policy="round-robin"/>
           </j2ee>"#,
        6,
    );
    let (plb_server, _) = out.app.plb.expect("plb deployed");
    let legacy = &out.app.legacy;
    match legacy.server(plb_server).unwrap() {
        jade_tiers::LegacyServer::Plb { balancer, .. } => {
            assert_eq!(balancer.policy(), BalancePolicy::Random)
        }
        other => panic!("unexpected {other:?}"),
    }
    let (cj_server, _) = out.app.cjdbc.expect("cjdbc deployed");
    assert_eq!(
        legacy.cjdbc(cj_server).unwrap().policy(),
        ReadPolicy::RoundRobin
    );
}

#[test]
fn wrappers_materialize_config_files() {
    let out = deploy(
        r#"<j2ee name="rubis">
             <tier kind="application" replicas="1"/>
             <tier kind="database" replicas="1"/>
           </j2ee>"#,
        6,
    );
    let configs = &out.app.legacy.configs;
    // Deterministic layout: node1 = C-JDBC, node2 = PLB.
    let cjdbc_xml = configs
        .read(NodeId(0), "conf/cjdbc.xml")
        .expect("cjdbc.xml");
    assert!(cjdbc_xml.contains("RAIDb-1"));
    assert!(cjdbc_xml.contains("jdbc:mysql://"));
    let plb_conf = configs.read(NodeId(1), "etc/plb.conf").expect("plb.conf");
    assert!(plb_conf.contains("server node3:8098"), "{plb_conf}");
}

#[test]
fn dataset_is_loaded_into_every_replica() {
    let out = deploy(
        r#"<j2ee name="rubis">
             <tier kind="application" replicas="1"/>
             <tier kind="database" replicas="2"/>
           </j2ee>"#,
        7,
    );
    let spec = out.app.cfg.dataset;
    for server in out.app.legacy.running_servers_of(Tier::Database) {
        let db = &out.app.legacy.mysql(server).unwrap().db;
        assert!(db.get_table("users").unwrap().len() as u64 >= spec.users);
        assert!(db.get_table("items").unwrap().len() as u64 >= spec.items);
    }
}

#[test]
fn jade_manages_itself() {
    // Paper §3.4: "autonomic managers [are] deployed and managed using the
    // same Jade framework (Jade administrates itself)".
    let out = deploy(
        r#"<j2ee name="rubis">
             <tier kind="application" replicas="1"/>
             <tier kind="database" replicas="1"/>
           </j2ee>"#,
        6,
    );
    let reg = &out.app.registry;
    let jade_root = reg
        .ids()
        .into_iter()
        .find(|&id| reg.name(id).as_deref() == Ok("jade"))
        .expect("jade composite exists");
    let tree = reg.render_tree(jade_root);
    for part in [
        "self-optimization-app.sensor",
        "self-optimization-app.reactor",
        "self-optimization-app.actuator",
        "self-optimization-db.sensor",
    ] {
        assert!(tree.contains(part), "missing {part} in:\n{tree}");
    }
}

#[test]
fn adl_rejects_oversized_deployments_gracefully() {
    // 3 nodes cannot host 2 app + 3 db + 2 balancers; the deployer panics
    // with a clear message (deployment is a precondition, not a runtime
    // error path).
    let result = std::panic::catch_unwind(|| {
        deploy(
            r#"<j2ee name="rubis">
                 <tier kind="application" replicas="2"/>
                 <tier kind="database" replicas="3"/>
               </j2ee>"#,
            3,
        )
    });
    assert!(result.is_err());
}
