//! Processor-sharing CPU model.
//!
//! Each simulated node has one CPU that serves all resident jobs in
//! processor-sharing fashion: with `n` active jobs each job progresses at
//! `speed * efficiency(n) / n` demand-seconds per second. The *efficiency*
//! hook models thrashing: the paper's unmanaged database "saturates … this
//! results in a thrashing of the database" (§5.2, Fig. 6); a sub-unit
//! efficiency at high multiprogramming levels collapses throughput and
//! produces exactly the runaway latencies of Figure 8.
//!
//! The owner (a server actor) drives the model: it calls [`PsCpu::submit`]
//! on arrival, asks for [`PsCpu::next_completion`], arms one timer with the
//! engine, and on the timer calls [`PsCpu::collect_completions`]. Re-arming
//! uses the event queue's lazy cancellation.

use crate::metrics::UtilizationTracker;
use crate::time::{SimDuration, SimTime};

/// Identifier the owner attaches to a job (e.g. a request id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Degradation law: maps the number of resident jobs to an efficiency in
/// `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EfficiencyCurve {
    /// Ideal processor sharing: no degradation.
    Ideal,
    /// Thrashing: full speed up to `knee` jobs, then efficiency decays as
    /// `1 / (1 + slope * (n - knee))`. Models memory pressure / context
    /// switch storms on an overloaded server.
    Thrashing {
        /// Multiprogramming level up to which the CPU runs at full speed.
        knee: usize,
        /// Decay rate of efficiency beyond the knee.
        slope: f64,
    },
}

impl EfficiencyCurve {
    /// Efficiency for `n` resident jobs.
    pub fn efficiency(&self, n: usize) -> f64 {
        match *self {
            EfficiencyCurve::Ideal => 1.0,
            EfficiencyCurve::Thrashing { knee, slope } => {
                if n <= knee {
                    1.0
                } else {
                    1.0 / (1.0 + slope * (n - knee) as f64)
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct PsJob {
    id: JobId,
    /// Remaining service demand, in seconds of dedicated CPU.
    remaining: f64,
}

/// Remaining demand below this is considered complete (guards float error).
const EPSILON_SECS: f64 = 1e-9;

/// A processor-sharing CPU with utilization accounting.
#[derive(Debug, Clone)]
pub struct PsCpu {
    speed: f64,
    curve: EfficiencyCurve,
    jobs: Vec<PsJob>,
    last_update: SimTime,
    util: UtilizationTracker,
    completed: Vec<JobId>,
}

impl PsCpu {
    /// Creates a CPU with `speed` demand-seconds/second capacity (1.0 = one
    /// reference core) and the given degradation curve.
    pub fn new(speed: f64, curve: EfficiencyCurve) -> Self {
        assert!(speed > 0.0);
        PsCpu {
            speed,
            curve,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            util: UtilizationTracker::new(),
            completed: Vec::new(),
        }
    }

    /// Number of resident (incomplete) jobs.
    pub fn load(&self) -> usize {
        self.jobs.len()
    }

    /// Per-job progress rate right now, in demand-seconds per second.
    fn rate(&self) -> f64 {
        let n = self.jobs.len();
        if n == 0 {
            0.0
        } else {
            self.speed * self.curve.efficiency(n) / n as f64
        }
    }

    /// Advances all jobs to `now`, moving finished jobs to the completed
    /// buffer.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update);
        let elapsed = (now - self.last_update).as_secs_f64();
        if elapsed > 0.0 && !self.jobs.is_empty() {
            let progress = elapsed * self.rate();
            for job in &mut self.jobs {
                job.remaining -= progress;
            }
        }
        self.last_update = now;
        let completed = &mut self.completed;
        self.jobs.retain(|j| {
            if j.remaining <= EPSILON_SECS {
                completed.push(j.id);
                false
            } else {
                true
            }
        });
        if self.jobs.is_empty() {
            self.util.set_idle(now);
        }
    }

    /// Submits a job with the given total demand.
    pub fn submit(&mut self, now: SimTime, id: JobId, demand: SimDuration) {
        self.advance(now);
        self.util.set_busy(now);
        self.jobs.push(PsJob {
            id,
            remaining: demand.as_secs_f64().max(EPSILON_SECS),
        });
    }

    /// Forcibly removes a job (e.g. its server was stopped). Returns true
    /// if the job was resident.
    pub fn abort(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        let before = self.jobs.len();
        self.jobs.retain(|j| j.id != id);
        if self.jobs.is_empty() {
            self.util.set_idle(now);
        }
        self.jobs.len() != before
    }

    /// Removes all jobs, returning their ids (server crash/stop).
    pub fn abort_all(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        let ids = self.jobs.drain(..).map(|j| j.id).collect();
        self.util.set_idle(now);
        ids
    }

    /// Time of the next job completion given the current population, or
    /// `None` when idle. The owner should arm a timer at this instant.
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        let min_remaining = self
            .jobs
            .iter()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        if !min_remaining.is_finite() {
            return None;
        }
        // Round *up* to the next microsecond so the timer never fires
        // before the job is actually done.
        let micros = (min_remaining / rate * 1e6).ceil() as u64;
        Some(now + SimDuration::from_micros(micros.max(1)))
    }

    /// Advances to `now` and drains the jobs that have completed.
    pub fn collect_completions(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        std::mem::take(&mut self.completed)
    }

    /// CPU utilization since the previous call (see
    /// [`UtilizationTracker::sample`]).
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.util.sample(now)
    }

    /// Total busy time up to `now`.
    pub fn busy_time(&mut self, now: SimTime) -> SimDuration {
        self.advance(now);
        self.util.busy_time(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        let done_at = cpu.next_completion(t(0)).unwrap();
        assert_eq!(done_at, t(100));
        let done = cpu.collect_completions(done_at);
        assert_eq!(done, vec![JobId(1)]);
        assert_eq!(cpu.load(), 0);
    }

    #[test]
    fn two_jobs_share_the_processor() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        cpu.submit(t(0), JobId(2), d(100));
        // Each runs at half speed: both finish at 200ms.
        let done_at = cpu.next_completion(t(0)).unwrap();
        assert_eq!(done_at, t(200));
        let done = cpu.collect_completions(done_at);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn late_arrival_slows_the_first_job() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        // At t=50 half the demand is done; a second job arrives.
        cpu.submit(t(50), JobId(2), d(100));
        // Job 1 has 50ms left at half speed -> completes at t=150.
        let next = cpu.next_completion(t(50)).unwrap();
        assert_eq!(next, t(150));
        assert_eq!(cpu.collect_completions(t(150)), vec![JobId(1)]);
        // Job 2 then has 50ms left at full speed -> completes at t=200.
        let next = cpu.next_completion(t(150)).unwrap();
        assert_eq!(next, t(200));
        assert_eq!(cpu.collect_completions(t(200)), vec![JobId(2)]);
    }

    #[test]
    fn faster_cpu_finishes_sooner() {
        let mut cpu = PsCpu::new(2.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        assert_eq!(cpu.next_completion(t(0)).unwrap(), t(50));
    }

    #[test]
    fn thrashing_curve_degrades_throughput() {
        let curve = EfficiencyCurve::Thrashing {
            knee: 2,
            slope: 0.5,
        };
        assert_eq!(curve.efficiency(1), 1.0);
        assert_eq!(curve.efficiency(2), 1.0);
        assert!((curve.efficiency(4) - 0.5).abs() < 1e-12);
        let mut cpu = PsCpu::new(1.0, curve);
        for i in 0..4 {
            cpu.submit(t(0), JobId(i), d(100));
        }
        // 4 jobs, efficiency 0.5: per-job rate 0.125 -> 100ms demand takes 800ms.
        assert_eq!(cpu.next_completion(t(0)).unwrap(), t(800));
    }

    #[test]
    fn abort_removes_jobs_and_frees_capacity() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        cpu.submit(t(0), JobId(2), d(100));
        assert!(cpu.abort(t(0), JobId(2)));
        assert!(!cpu.abort(t(0), JobId(2)));
        assert_eq!(cpu.next_completion(t(0)).unwrap(), t(100));
    }

    #[test]
    fn abort_all_drains_everything() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(10));
        cpu.submit(t(0), JobId(2), d(20));
        let mut ids = cpu.abort_all(t(5));
        ids.sort();
        assert_eq!(ids, vec![JobId(1), JobId(2)]);
        assert!(cpu.next_completion(t(5)).is_none());
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(250));
        cpu.collect_completions(t(250));
        // Busy 250ms out of a 1000ms window.
        let u = cpu.sample_utilization(t(1000));
        assert!((u - 0.25).abs() < 1e-6, "utilization was {u}");
    }

    #[test]
    fn completion_timer_never_fires_early() {
        // Adversarial demands that don't divide evenly.
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), SimDuration::from_micros(3333));
        cpu.submit(t(0), JobId(2), SimDuration::from_micros(7777));
        let t1 = cpu.next_completion(SimTime::ZERO).unwrap();
        let done = cpu.collect_completions(t1);
        assert_eq!(done, vec![JobId(1)]);
        let t2 = cpu.next_completion(t1).unwrap();
        assert!(t2 > t1);
        assert_eq!(cpu.collect_completions(t2), vec![JobId(2)]);
    }
}
