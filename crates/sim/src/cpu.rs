//! Processor-sharing CPU model in **virtual time** (attained service).
//!
//! Each simulated node has one CPU that serves all resident jobs in
//! processor-sharing fashion: with `n` active jobs each job progresses at
//! `speed * efficiency(n) / n` demand-seconds per second. The *efficiency*
//! hook models thrashing: the paper's unmanaged database "saturates … this
//! results in a thrashing of the database" (§5.2, Fig. 6); a sub-unit
//! efficiency at high multiprogramming levels collapses throughput and
//! produces exactly the runaway latencies of Figure 8.
//!
//! # The virtual-time formulation
//!
//! The original model stored each job's *remaining* demand and, on every
//! `submit`/`abort`/`next_completion`/`collect_completions`, subtracted the
//! interval's progress from **every** resident job — an O(n) scan that made
//! the saturated-tier scenarios (hundreds of jobs piled on one unmanaged
//! MySQL) quadratic overall.
//!
//! Observe that under processor sharing every resident job attains service
//! at the *same* rate. Define the **virtual clock**
//!
//! ```text
//! V(t) = ∫₀ᵗ speed · efficiency(n(τ)) / n(τ) dτ      (0 when n = 0)
//! ```
//!
//! i.e. the cumulative per-job attained service. `n(τ)` only changes at
//! submit/abort/completion instants — all of which are driver calls — so
//! `V` is piecewise linear and advancing it is O(1) per interval:
//! `V += elapsed · speed · efficiency(n) / n`.
//!
//! A job submitted with demand `d` when the virtual clock reads `Vₛ`
//! completes exactly when `V` reaches its **completion key** `Vₛ + d`; its
//! remaining demand at any later instant is recovered on demand as
//! `d − (V − Vₛ)` — no per-job state is ever updated. Jobs therefore
//! complete in key order and the whole model reduces to a min-heap of
//! `(key, seq)` pairs:
//!
//! * `submit` — advance `V`, push `(V + d, seq)` — O(log n);
//! * `next_completion` — advance `V`, peek the minimum key `k`, report
//!   `now + (k − V) / rate` — O(1) amortised;
//! * `collect_completions` — advance `V`, pop every entry with
//!   `key ≤ V + ε` — O(log n) per completion;
//! * `abort` — O(1) lazy cancellation of the job's slab slot (the heap
//!   entry is swept when it surfaces, exactly like the event queue's
//!   timers).
//!
//! The heap reuses the packed-entry design of [`crate::queue::EventQueue`]:
//! 16-byte `Copy` entries `(key_bits, seq·slot)` compared as one `u128`
//! (non-negative IEEE-754 doubles order identically to their bit patterns,
//! and keys are always > 0), payloads parked in a slab with an intrusive
//! free list, and compaction when cancelled entries dominate.
//!
//! Because the efficiency curve only changes the virtual-clock *rate* at
//! job-count boundaries — which are all driver-call times — the trajectory
//! is the same piecewise-linear one the naive per-job-scan model produced
//! (associativity of float accumulation aside), including the `Thrashing`
//! knee. The bench crate keeps the original implementation as
//! `NaivePsCpu`; `tests/cpu_prop.rs` checks the two agree on completion
//! sets, order and times within 1e-6 s under random interleavings, and
//! `BENCH_kernel.json` records the speedup (`speedup_ps_*`).
//!
//! The owner (a server actor) drives the model: it calls [`PsCpu::submit`]
//! on arrival, asks for [`PsCpu::next_completion`], arms one timer with the
//! engine, and on the timer calls [`PsCpu::collect_completions`]. Re-arming
//! uses the event queue's lazy cancellation.

// jade-audit: allow-file(hot-panic): hand-audited slab/heap core — every
// index is a heap position < heap.len() maintained by sift_down/min_child,
// or a job-slot id minted by the slab's free list; the expect() unpacks a
// heap head tested non-empty on the previous line.
use crate::det::DetHashMap;
use crate::metrics::UtilizationTracker;
use crate::time::{SimDuration, SimTime};

/// Identifier the owner attaches to a job (e.g. a request id).
///
/// Ids must be unique among *resident* jobs of one CPU (the system model's
/// global job counter guarantees this); an id may be reused after the job
/// completed or was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Degradation law: maps the number of resident jobs to an efficiency in
/// `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EfficiencyCurve {
    /// Ideal processor sharing: no degradation.
    Ideal,
    /// Thrashing: full speed up to `knee` jobs, then efficiency decays as
    /// `1 / (1 + slope * (n - knee))`. Models memory pressure / context
    /// switch storms on an overloaded server.
    Thrashing {
        /// Multiprogramming level up to which the CPU runs at full speed.
        knee: usize,
        /// Decay rate of efficiency beyond the knee.
        slope: f64,
    },
}

impl EfficiencyCurve {
    /// Efficiency for `n` resident jobs.
    pub fn efficiency(&self, n: usize) -> f64 {
        match *self {
            EfficiencyCurve::Ideal => 1.0,
            EfficiencyCurve::Thrashing { knee, slope } => {
                if n <= knee {
                    1.0
                } else {
                    1.0 / (1.0 + slope * (n - knee) as f64)
                }
            }
        }
    }
}

/// Remaining demand below this is considered complete (guards float error).
const EPSILON_SECS: f64 = 1e-9;

/// Heap entry: completion key plus the slab slot holding the job, packed
/// into 16 bytes so four entries share a cache line (same layout as the
/// event queue's entries).
///
/// `packed` holds `(seq << 32) | slot`; sequence numbers are unique among
/// resident jobs (renumbered before they can exceed 32 bits), so comparing
/// the composite `u128` orders equal keys by submission exactly as a
/// separate tie-break field would.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    /// `f64::to_bits` of the completion key. Keys are always positive and
    /// finite, and non-negative doubles order identically to their bit
    /// patterns, so integer comparison is exact.
    key_bits: u64,
    packed: u64,
}

impl HeapEntry {
    #[inline]
    fn new(key: f64, seq: u64, slot: u32) -> Self {
        debug_assert!(key > 0.0 && key.is_finite());
        HeapEntry {
            key_bits: key.to_bits(),
            packed: (seq << 32) | slot as u64,
        }
    }
    /// Total order as a single scalar: `(key, seq, slot)` lexicographic.
    #[inline]
    fn sort_key(&self) -> u128 {
        ((self.key_bits as u128) << 64) | self.packed as u128
    }
    /// Completion key (virtual-clock reading at completion).
    #[inline]
    fn key(&self) -> f64 {
        f64::from_bits(self.key_bits)
    }
    #[inline]
    fn slot(&self) -> u32 {
        self.packed as u32
    }
    #[inline]
    fn seq(&self) -> u64 {
        self.packed >> 32
    }
}

/// One slab cell.
#[derive(Debug, Clone)]
enum Slot {
    /// Free cell; holds the next free slot index (`NO_FREE` terminates),
    /// forming an intrusive free list with no side allocation.
    Vacant(u32),
    /// Resident job. `vsubmit` is the virtual-clock reading at submission
    /// and `demand` the total demand in seconds: remaining demand is
    /// `demand - (vclock - vsubmit)`. Keeping both (instead of only the
    /// rounded sum in the heap key) makes the remaining-demand arithmetic
    /// associate the same way the naive per-job-subtraction model's does,
    /// so completion timers land on the same microsecond.
    Occupied {
        /// Job identifier the owner attached.
        id: JobId,
        /// Virtual clock at submission.
        vsubmit: f64,
        /// Total demand, seconds.
        demand: f64,
    },
    /// Aborted but not yet swept out of the heap.
    Aborted,
}

/// Free-list terminator.
const NO_FREE: u32 = u32::MAX;

/// Compact when at least this many entries are in the heap and more than
/// half of them are aborted.
const COMPACT_MIN: usize = 64;

/// A processor-sharing CPU with utilization accounting.
///
/// All mutating operations are O(log n) in the number of resident jobs;
/// see the module docs for the virtual-time formulation.
#[derive(Debug, Clone)]
pub struct PsCpu {
    speed: f64,
    curve: EfficiencyCurve,
    /// Virtual clock: cumulative per-job attained service, in
    /// demand-seconds.
    vclock: f64,
    /// Upper bound on the completion keys in the heap (monotone per
    /// population epoch; reset when the heap empties out via `abort_all`).
    /// Once the clock passes it the whole heap is mature and can be
    /// drained in one sorted pass instead of n root-pops.
    vmax: f64,
    last_update: SimTime,
    /// Min-heap of completion keys over the slab.
    heap: Vec<HeapEntry>,
    slots: Vec<Slot>,
    free_head: u32,
    next_seq: u64,
    /// Resident (non-aborted, incomplete) jobs.
    live: usize,
    /// Aborted entries still in the heap.
    aborted: usize,
    /// Resident jobs whose demand was clamped up to `EPSILON_SECS` (i.e.
    /// zero-demand submissions). These are mature the moment they are
    /// submitted, so while any is resident the completion sweep must run
    /// even when no simulated time has passed; when none is, an
    /// `elapsed == 0` advance can return immediately — the previous sweep
    /// at the same virtual-clock reading already drained everything.
    zero_demand: usize,
    /// Job id -> slab slot, for O(1) abort. Built lazily: the map only
    /// exists (and is maintained) once an id lookup has actually been
    /// needed, so the pure submit/complete path — the saturated-tier hot
    /// loop — never hashes at all. Uses the workspace-wide deterministic
    /// fx hasher ([`crate::det`]); the map is never iterated, so hash
    /// order can't leak into simulation results.
    index: DetHashMap<JobId, u32>,
    /// Whether `index` is currently materialized and being maintained.
    index_live: bool,
    util: UtilizationTracker,
    completed: Vec<JobId>,
}

impl PsCpu {
    /// Creates a CPU with `speed` demand-seconds/second capacity (1.0 = one
    /// reference core) and the given degradation curve.
    pub fn new(speed: f64, curve: EfficiencyCurve) -> Self {
        assert!(speed > 0.0);
        PsCpu {
            speed,
            curve,
            vclock: 0.0,
            vmax: 0.0,
            last_update: SimTime::ZERO,
            // One CPU exists per simulated node; pre-sizing the slab past
            // the common multiprogramming levels keeps the submit burst of
            // a saturating tier out of the allocator.
            heap: Vec::with_capacity(128),
            slots: Vec::with_capacity(128),
            free_head: NO_FREE,
            next_seq: 0,
            live: 0,
            aborted: 0,
            zero_demand: 0,
            index: DetHashMap::default(),
            index_live: false,
            util: UtilizationTracker::new(),
            completed: Vec::with_capacity(32),
        }
    }

    /// Number of resident (incomplete) jobs.
    pub fn load(&self) -> usize {
        self.live
    }

    /// Per-job progress rate right now, in demand-seconds per second.
    fn rate(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.speed * self.curve.efficiency(self.live) / self.live as f64
        }
    }

    /// Advances the virtual clock to `now` and sweeps completed jobs into
    /// the completion buffer.
    ///
    /// The clock advances at the rate implied by the population *over the
    /// whole interval* and completions are detected at its end — the same
    /// event-boundary semantics as the per-job-scan model it replaced. The
    /// owner's completion timer guarantees an advance at (within 1 µs
    /// after) every completion, so rate changes are never late by more
    /// than the timer rounding.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update);
        if now == self.last_update && self.zero_demand == 0 {
            // The virtual clock cannot have moved and nothing matures at a
            // standstill: the sweep below already ran at this instant.
            if self.live == 0 {
                self.util.set_idle(now);
            }
            return;
        }
        let elapsed = (now - self.last_update).as_secs_f64();
        if elapsed > 0.0 && self.live > 0 {
            self.vclock += elapsed * self.rate();
        }
        self.last_update = now;
        if self.vclock + EPSILON_SECS >= self.vmax && !self.heap.is_empty() {
            self.drain_all();
        } else {
            self.sweep_pops();
        }
        if self.live == 0 {
            self.util.set_idle(now);
        }
    }

    /// Pops every job whose remaining demand the clock has exhausted,
    /// along with any aborted entries that surface on the way. The heap
    /// key (the rounded `vsubmit + demand`) only *orders* the sweep; the
    /// completion test recomputes remaining demand from the slot so it
    /// rounds identically to the naive model's per-job subtraction.
    fn sweep_pops(&mut self) {
        while let Some(&head) = self.heap.first() {
            match self.slots[head.slot() as usize] {
                Slot::Aborted => {
                    self.remove_root();
                    self.free_slot(head.slot());
                    self.aborted -= 1;
                }
                Slot::Occupied {
                    id,
                    vsubmit,
                    demand,
                } => {
                    if demand - (self.vclock - vsubmit) > EPSILON_SECS {
                        break;
                    }
                    self.remove_root();
                    self.free_slot(head.slot());
                    if self.index_live {
                        self.index.remove(&id);
                    }
                    if demand <= EPSILON_SECS {
                        self.zero_demand -= 1;
                    }
                    self.live -= 1;
                    self.completed.push(id);
                }
                Slot::Vacant(_) => unreachable!("heap entry points at vacant slot"),
            }
        }
    }

    /// Drains the whole heap in one sorted pass — the virtual clock has
    /// passed every completion key, so every resident job is done and the
    /// O(n log n) sort beats n root-pops by a large constant factor (the
    /// saturated-tier burst pattern). `vmax` is the rounded-key bound;
    /// the slot-derived remaining demand is re-checked first and any
    /// near-boundary stragglers are handed back to the exact sweep.
    fn drain_all(&mut self) {
        for e in &self.heap {
            if let Slot::Occupied {
                vsubmit, demand, ..
            } = self.slots[e.slot() as usize]
            {
                if demand - (self.vclock - vsubmit) > EPSILON_SECS {
                    self.sweep_pops();
                    return;
                }
            }
        }
        let mut entries = std::mem::take(&mut self.heap);
        entries.sort_unstable_by_key(HeapEntry::sort_key);
        self.completed.reserve(self.live);
        for e in entries.drain(..) {
            match self.slots[e.slot() as usize] {
                Slot::Aborted => self.aborted -= 1,
                Slot::Occupied { id, demand, .. } => {
                    if self.index_live {
                        self.index.remove(&id);
                    }
                    if demand <= EPSILON_SECS {
                        self.zero_demand -= 1;
                    }
                    self.live -= 1;
                    self.completed.push(id);
                }
                Slot::Vacant(_) => unreachable!("heap entry points at vacant slot"),
            }
            self.free_slot(e.slot());
        }
        // Hand the (empty) allocation back to the heap for reuse.
        self.heap = entries;
    }

    /// Submits a job with the given total demand.
    #[inline]
    pub fn submit(&mut self, now: SimTime, id: JobId, demand: SimDuration) {
        self.advance(now);
        if self.next_seq > u32::MAX as u64 {
            self.renumber();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let d = demand.as_secs_f64().max(EPSILON_SECS);
        if d <= EPSILON_SECS {
            self.zero_demand += 1;
        }
        let key = self.vclock + d;
        if key > self.vmax {
            self.vmax = key;
        }
        let slot = self.alloc_slot(id, d);
        if self.index_live {
            let prev = self.index.insert(id, slot);
            debug_assert!(prev.is_none(), "job id {id:?} already resident");
        }
        self.live += 1;
        if self.live == 1 {
            self.util.set_busy(now);
        }
        self.heap.push(HeapEntry::new(key, seq, slot));
        self.sift_up(self.heap.len() - 1);
    }

    /// Forcibly removes a job (e.g. its server was stopped). Returns true
    /// if the job was resident. O(1): the heap entry is cancelled lazily.
    pub fn abort(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance(now);
        self.ensure_index();
        let Some(slot) = self.index.remove(&id) else {
            return false;
        };
        if let Slot::Occupied { demand, .. } = self.slots[slot as usize] {
            if demand <= EPSILON_SECS {
                self.zero_demand -= 1;
            }
        }
        self.slots[slot as usize] = Slot::Aborted;
        self.aborted += 1;
        self.live -= 1;
        if self.live == 0 {
            self.util.set_idle(now);
        }
        if self.aborted * 2 > self.heap.len() && self.heap.len() >= COMPACT_MIN {
            self.compact();
        }
        true
    }

    /// Removes all jobs, returning their ids in submission order (server
    /// crash/stop).
    pub fn abort_all(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        let mut residents: Vec<(u64, JobId)> = self
            .heap
            .iter()
            .filter_map(|e| match self.slots[e.slot() as usize] {
                Slot::Occupied { id, .. } => Some((e.seq(), id)),
                _ => None,
            })
            .collect();
        residents.sort_unstable_by_key(|&(seq, _)| seq);
        self.heap.clear();
        self.slots.clear();
        self.free_head = NO_FREE;
        self.index.clear();
        self.index_live = false;
        self.live = 0;
        self.aborted = 0;
        self.zero_demand = 0;
        self.vmax = self.vclock;
        self.util.set_idle(now);
        residents.into_iter().map(|(_, id)| id).collect()
    }

    /// Time of the next job completion given the current population, or
    /// `None` when idle. The owner should arm a timer at this instant.
    #[inline]
    pub fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
        self.advance(now);
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        // Sweep aborted entries off the top so the peek is live.
        let head = loop {
            let &head = self.heap.first()?;
            if matches!(self.slots[head.slot() as usize], Slot::Aborted) {
                self.remove_root();
                self.free_slot(head.slot());
                self.aborted -= 1;
                continue;
            }
            break head;
        };
        let min_remaining = match self.slots[head.slot() as usize] {
            Slot::Occupied {
                vsubmit, demand, ..
            } => demand - (self.vclock - vsubmit),
            _ => unreachable!("head entry is live after the aborted sweep"),
        };
        // Round *up* to the next microsecond so the timer never fires
        // before the job is actually done.
        let micros = (min_remaining / rate * 1e6).ceil() as u64;
        Some(now + SimDuration::from_micros(micros.max(1)))
    }

    /// Advances to `now` and drains the jobs that have completed, in
    /// completion order (ties in completion time by submission order).
    #[inline]
    pub fn collect_completions(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance(now);
        std::mem::take(&mut self.completed)
    }

    /// Like [`PsCpu::collect_completions`], but appends into a
    /// caller-provided buffer so a hot completion path can recycle one
    /// allocation across timer fires.
    pub fn collect_completions_into(&mut self, now: SimTime, out: &mut Vec<JobId>) {
        self.advance(now);
        out.append(&mut self.completed);
    }

    /// Remaining demand of a resident job, recovered from the virtual
    /// clock (`None` when the job is not resident).
    pub fn remaining_demand(&mut self, now: SimTime, id: JobId) -> Option<SimDuration> {
        self.advance(now);
        self.ensure_index();
        let slot = *self.index.get(&id)?;
        match self.slots[slot as usize] {
            Slot::Occupied {
                vsubmit, demand, ..
            } => Some(SimDuration::from_secs_f64(
                (demand - (self.vclock - vsubmit)).max(0.0),
            )),
            _ => unreachable!("indexed job has an occupied slot"),
        }
    }

    /// CPU utilization since the previous call (see
    /// [`UtilizationTracker::sample`]).
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.util.sample(now)
    }

    /// Total busy time up to `now`.
    pub fn busy_time(&mut self, now: SimTime) -> SimDuration {
        self.advance(now);
        self.util.busy_time(now)
    }

    // ------------------------------------------------------------------
    // Slab + heap plumbing (packed entries, intrusive free list, lazy
    // cancellation — the event queue's design, keyed by f64 bits).
    // ------------------------------------------------------------------

    /// Materializes the id → slot map from the slab, once, on the first
    /// operation that needs a lookup. From then on `submit`/completion
    /// sweeps keep it current. Amortized O(1) per resident job.
    fn ensure_index(&mut self) {
        if self.index_live {
            return;
        }
        self.index.clear();
        self.index.reserve(self.live);
        for (i, s) in self.slots.iter().enumerate() {
            if let Slot::Occupied { id, .. } = *s {
                self.index.insert(id, i as u32);
            }
        }
        self.index_live = true;
    }

    fn alloc_slot(&mut self, id: JobId, demand: f64) -> u32 {
        let occupied = Slot::Occupied {
            id,
            vsubmit: self.vclock,
            demand,
        };
        if self.free_head != NO_FREE {
            let slot = self.free_head;
            match self.slots[slot as usize] {
                Slot::Vacant(next) => self.free_head = next,
                _ => unreachable!("free list points at a live slot"),
            }
            self.slots[slot as usize] = occupied;
            slot
        } else {
            self.slots.push(occupied);
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, slot: u32) {
        self.slots[slot as usize] = Slot::Vacant(self.free_head);
        self.free_head = slot;
    }

    /// Reassigns pending sequence numbers to `0..n` in key order so `seq`
    /// keeps fitting in 32 bits. The remap is monotone in the old
    /// composite key, so relative order — and hence determinism — is
    /// untouched and the heap property is preserved in place.
    fn renumber(&mut self) {
        let mut order: Vec<u32> = (0..self.heap.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.heap[i as usize].sort_key());
        for (new_seq, &i) in order.iter().enumerate() {
            let e = &mut self.heap[i as usize];
            *e = HeapEntry::new(e.key(), new_seq as u64, e.slot());
        }
        self.next_seq = self.heap.len() as u64;
    }

    /// Drops aborted entries and restores the heap property in O(n).
    fn compact(&mut self) {
        let mut heap = std::mem::take(&mut self.heap);
        let mut kept = Vec::with_capacity(heap.len() - self.aborted);
        for entry in heap.drain(..) {
            match self.slots[entry.slot() as usize] {
                Slot::Aborted => self.free_slot(entry.slot()),
                Slot::Occupied { .. } => kept.push(entry),
                Slot::Vacant(_) => unreachable!("heap entry points at vacant slot"),
            }
        }
        self.heap = kept;
        self.aborted = 0;
        if self.heap.len() > 1 {
            let last_parent = (self.heap.len() - 2) / 2;
            for i in (0..=last_parent).rev() {
                self.sift_down(i);
            }
        }
    }

    /// Index of the smaller child of `hole`, or `None` for a leaf.
    #[inline]
    fn min_child(&self, hole: usize, n: usize) -> Option<usize> {
        let first = 2 * hole + 1;
        if first >= n {
            return None;
        }
        let mut best = first;
        if first + 1 < n && self.heap[first + 1].sort_key() < self.heap[first].sort_key() {
            best = first + 1;
        }
        Some(best)
    }

    /// Removes the root entry, restoring the heap property: the tail moves
    /// to the root and sifts down with early stop. (A hole-based removal
    /// that always descends to a leaf is slower for this heap: completion
    /// batches pop runs of near-equal keys, where the early stop exits on
    /// the first comparison.)
    fn remove_root(&mut self) {
        let tail = self.heap.pop().expect("remove_root on empty heap");
        if self.heap.is_empty() {
            return;
        }
        self.heap[0] = tail;
        self.sift_down(0);
    }

    fn sift_up(&mut self, mut hole: usize) {
        let entry = self.heap[hole];
        let key = entry.sort_key();
        while hole > 0 {
            let parent = (hole - 1) / 2;
            if key < self.heap[parent].sort_key() {
                self.heap[hole] = self.heap[parent];
                hole = parent;
            } else {
                break;
            }
        }
        self.heap[hole] = entry;
    }

    fn sift_down(&mut self, mut hole: usize) {
        let entry = self.heap[hole];
        let key = entry.sort_key();
        let n = self.heap.len();
        while let Some(child) = self.min_child(hole, n) {
            if self.heap[child].sort_key() < key {
                self.heap[hole] = self.heap[child];
                hole = child;
            } else {
                break;
            }
        }
        self.heap[hole] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        let done_at = cpu.next_completion(t(0)).unwrap();
        assert_eq!(done_at, t(100));
        let done = cpu.collect_completions(done_at);
        assert_eq!(done, vec![JobId(1)]);
        assert_eq!(cpu.load(), 0);
    }

    #[test]
    fn two_jobs_share_the_processor() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        cpu.submit(t(0), JobId(2), d(100));
        // Each runs at half speed: both finish at 200ms.
        let done_at = cpu.next_completion(t(0)).unwrap();
        assert_eq!(done_at, t(200));
        let done = cpu.collect_completions(done_at);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn late_arrival_slows_the_first_job() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        // At t=50 half the demand is done; a second job arrives.
        cpu.submit(t(50), JobId(2), d(100));
        // Job 1 has 50ms left at half speed -> completes at t=150.
        let next = cpu.next_completion(t(50)).unwrap();
        assert_eq!(next, t(150));
        assert_eq!(cpu.collect_completions(t(150)), vec![JobId(1)]);
        // Job 2 then has 50ms left at full speed -> completes at t=200.
        let next = cpu.next_completion(t(150)).unwrap();
        assert_eq!(next, t(200));
        assert_eq!(cpu.collect_completions(t(200)), vec![JobId(2)]);
    }

    #[test]
    fn faster_cpu_finishes_sooner() {
        let mut cpu = PsCpu::new(2.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        assert_eq!(cpu.next_completion(t(0)).unwrap(), t(50));
    }

    #[test]
    fn thrashing_curve_degrades_throughput() {
        let curve = EfficiencyCurve::Thrashing {
            knee: 2,
            slope: 0.5,
        };
        assert_eq!(curve.efficiency(1), 1.0);
        assert_eq!(curve.efficiency(2), 1.0);
        assert!((curve.efficiency(4) - 0.5).abs() < 1e-12);
        let mut cpu = PsCpu::new(1.0, curve);
        for i in 0..4 {
            cpu.submit(t(0), JobId(i), d(100));
        }
        // 4 jobs, efficiency 0.5: per-job rate 0.125 -> 100ms demand takes 800ms.
        assert_eq!(cpu.next_completion(t(0)).unwrap(), t(800));
    }

    #[test]
    fn abort_removes_jobs_and_frees_capacity() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        cpu.submit(t(0), JobId(2), d(100));
        assert!(cpu.abort(t(0), JobId(2)));
        assert!(!cpu.abort(t(0), JobId(2)));
        assert_eq!(cpu.next_completion(t(0)).unwrap(), t(100));
    }

    #[test]
    fn abort_all_drains_everything() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(10));
        cpu.submit(t(0), JobId(2), d(20));
        let mut ids = cpu.abort_all(t(5));
        ids.sort();
        assert_eq!(ids, vec![JobId(1), JobId(2)]);
        assert!(cpu.next_completion(t(5)).is_none());
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(250));
        cpu.collect_completions(t(250));
        // Busy 250ms out of a 1000ms window.
        let u = cpu.sample_utilization(t(1000));
        assert!((u - 0.25).abs() < 1e-6, "utilization was {u}");
    }

    #[test]
    fn completion_timer_never_fires_early() {
        // Adversarial demands that don't divide evenly.
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), SimDuration::from_micros(3333));
        cpu.submit(t(0), JobId(2), SimDuration::from_micros(7777));
        let t1 = cpu.next_completion(SimTime::ZERO).unwrap();
        let done = cpu.collect_completions(t1);
        assert_eq!(done, vec![JobId(1)]);
        let t2 = cpu.next_completion(t1).unwrap();
        assert!(t2 > t1);
        assert_eq!(cpu.collect_completions(t2), vec![JobId(2)]);
    }

    #[test]
    fn completions_drain_in_key_then_submission_order() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(10), d(30));
        cpu.submit(t(0), JobId(11), d(10));
        cpu.submit(t(0), JobId(12), d(30));
        // Collect far past all completions in one call: shortest job
        // first, then equal keys in submission order.
        let done = cpu.collect_completions(t(1000));
        assert_eq!(done, vec![JobId(11), JobId(10), JobId(12)]);
    }

    #[test]
    fn collect_into_reuses_buffer() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        let mut buf = Vec::new();
        cpu.submit(t(0), JobId(1), d(10));
        cpu.collect_completions_into(t(10), &mut buf);
        assert_eq!(buf, vec![JobId(1)]);
        buf.clear();
        cpu.submit(t(10), JobId(2), d(10));
        cpu.collect_completions_into(t(20), &mut buf);
        assert_eq!(buf, vec![JobId(2)]);
    }

    #[test]
    fn remaining_demand_is_recovered_from_the_virtual_clock() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        cpu.submit(t(0), JobId(1), d(100));
        cpu.submit(t(0), JobId(2), d(40));
        // Two jobs share the CPU: after 40ms each attained 20ms.
        let rem = cpu.remaining_demand(t(40), JobId(1)).unwrap();
        assert!((rem.as_secs_f64() - 0.080).abs() < 1e-9, "rem {rem}");
        assert!(cpu.remaining_demand(t(40), JobId(99)).is_none());
    }

    #[test]
    fn heavy_abort_churn_compacts_and_stays_consistent() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        for i in 0..500u64 {
            cpu.submit(t(0), JobId(i), d(1000 + i));
        }
        // Abort 80% of them: forces at least one compaction.
        for i in 0..500u64 {
            if i % 5 != 0 {
                assert!(cpu.abort(t(1), JobId(i)));
            }
        }
        assert_eq!(cpu.load(), 100);
        assert!(cpu.heap.len() < 500, "compaction must have swept the heap");
        // The survivors all complete, in submission (= key) order.
        let mut now = t(1);
        let mut done = Vec::new();
        while let Some(next) = cpu.next_completion(now) {
            now = next;
            done.extend(cpu.collect_completions(now));
        }
        let expect: Vec<JobId> = (0..500).step_by(5).map(JobId).collect();
        assert_eq!(done, expect);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
        let mut now = SimTime::ZERO;
        for round in 0..100u64 {
            for i in 0..10u64 {
                cpu.submit(now, JobId(round * 10 + i), d(5));
            }
            while let Some(next) = cpu.next_completion(now) {
                now = next;
                cpu.collect_completions(now);
            }
        }
        assert!(cpu.slots.len() <= 10, "slab grew to {}", cpu.slots.len());
    }
}
