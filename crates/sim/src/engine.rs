//! The discrete-event engine.
//!
//! The engine owns the virtual clock, the pending-event set, the metrics
//! hub and the run's RNG. Application state (the simulated cluster, the
//! legacy servers, the Jade management layer) lives in a single [`App`]
//! value which routes every delivered message itself. Routing inside the
//! application keeps the whole world reachable behind one `&mut`, which is
//! exactly what Jade's managers need: a reconfiguration triggered by a
//! control-loop tick can synchronously traverse wrappers, legacy servers
//! and the cluster manager without fighting the borrow checker.
//!
//! The engine is single-threaded and deterministic; parallelism belongs at
//! the *experiment* level (independent runs on separate threads, see
//! `jade-bench`), per the repository's HPC guidelines.

use crate::metrics::MetricsHub;
use crate::queue::{EventQueue, EventToken};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceLevel, Tracer};
use jade_hot::jade_hot;

/// Application-defined actor address. The application decides the meaning
/// (e.g. an index into a server slab or a well-known constant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u64);

impl Addr {
    /// Conventional address for the top-level experiment driver.
    pub const ROOT: Addr = Addr(0);
}

/// The simulated application: owns all world state and dispatches messages.
pub trait App {
    /// Message type routed through the event queue.
    type Msg;

    /// Handles one delivered message. `ctx` gives access to the clock,
    /// scheduling, metrics and randomness.
    fn handle(&mut self, ctx: &mut Ctx<'_, Self::Msg>, dst: Addr, msg: Self::Msg);
}

/// Per-event execution context handed to [`App::handle`].
pub struct Ctx<'a, M> {
    now: SimTime,
    queue: &'a mut EventQueue<(Addr, M)>,
    metrics: &'a mut MetricsHub,
    rng: &'a mut SimRng,
    tracer: &'a mut Tracer,
    stop_requested: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `msg` for `dst` at absolute time `at` (clamped to now).
    pub fn send_at(&mut self, at: SimTime, dst: Addr, msg: M) -> EventToken {
        let at = at.max(self.now);
        self.queue.push(at, (dst, msg))
    }

    /// Schedules `msg` for `dst` after `delay`.
    pub fn send_after(&mut self, delay: SimDuration, dst: Addr, msg: M) -> EventToken {
        self.queue.push(self.now + delay, (dst, msg))
    }

    /// Schedules `msg` at absolute time `at` (clamped to now) on the
    /// timer wheel. Identical semantics to [`Ctx::send_at`]; prefer it
    /// for coarse deadlines — think times, patience timers, periodic
    /// ticks — that are numerous and long-lived, where the wheel's O(1)
    /// insert/cancel beats heap sifting against the whole pending set.
    pub fn send_at_coarse(&mut self, at: SimTime, dst: Addr, msg: M) -> EventToken {
        let at = at.max(self.now);
        self.queue.push_coarse(at, (dst, msg))
    }

    /// Schedules `msg` after `delay` on the timer wheel (see
    /// [`Ctx::send_at_coarse`]).
    pub fn send_after_coarse(&mut self, delay: SimDuration, dst: Addr, msg: M) -> EventToken {
        self.queue.push_coarse(self.now + delay, (dst, msg))
    }

    /// Schedules `msg` for `dst` at the current instant (delivered after
    /// all already-queued events at this instant).
    pub fn send_now(&mut self, dst: Addr, msg: M) -> EventToken {
        self.queue.push(self.now, (dst, msg))
    }

    /// Cancels a previously scheduled event (no-op if already delivered).
    pub fn cancel(&mut self, token: EventToken) {
        self.queue.cancel(token);
    }

    /// The run's metrics sink.
    pub fn metrics(&mut self) -> &mut MetricsHub {
        self.metrics
    }

    /// The run's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Records a trace event (no-op unless the engine's tracer is
    /// enabled; the message closure is lazy).
    pub fn trace(
        &mut self,
        level: TraceLevel,
        category: &'static str,
        message: impl FnOnce() -> String,
    ) {
        self.tracer.record(self.now, level, category, message);
    }

    /// Requests the engine to stop after the current event.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Outcome of an engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached; events may remain beyond it.
    HorizonReached,
    /// The pending-event set drained before the horizon.
    Drained,
    /// An event handler called [`Ctx::stop`].
    Stopped,
}

/// Discrete-event simulation engine.
pub struct Engine<A: App> {
    app: A,
    time: SimTime,
    queue: EventQueue<(Addr, A::Msg)>,
    metrics: MetricsHub,
    rng: SimRng,
    tracer: Tracer,
    events_processed: u64,
    stop_requested: bool,
}

impl<A: App> Engine<A> {
    /// Creates an engine around `app` with a deterministic seed.
    pub fn new(app: A, seed: u64) -> Self {
        Engine {
            app,
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            metrics: MetricsHub::new(),
            rng: SimRng::seed_from_u64(seed),
            tracer: Tracer::disabled(),
            events_processed: 0,
            stop_requested: false,
        }
    }

    /// Installs a tracer (replace the default disabled one).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Read access to the tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Shared application state.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable application state (for setup between runs).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Read access to collected metrics.
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Schedules an initial message from outside any handler.
    pub fn schedule(&mut self, at: SimTime, dst: Addr, msg: A::Msg) -> EventToken {
        self.queue.push(at.max(self.time), (dst, msg))
    }

    /// Delivers the next event, if any. Returns `false` when the queue is
    /// drained or a stop was requested.
    #[jade_hot]
    pub fn step(&mut self) -> bool {
        if self.stop_requested {
            return false;
        }
        let Some((t, (dst, msg))) = self.queue.pop() else {
            return false;
        };
        debug_assert!(t >= self.time, "time must be monotone");
        self.time = t;
        self.events_processed += 1;
        let mut ctx = Ctx {
            now: self.time,
            queue: &mut self.queue,
            metrics: &mut self.metrics,
            rng: &mut self.rng,
            tracer: &mut self.tracer,
            stop_requested: &mut self.stop_requested,
        };
        self.app.handle(&mut ctx, dst, msg);
        true
    }

    /// Runs until the horizon `until` (inclusive), the queue drains, or a
    /// handler requests a stop.
    ///
    /// Each event costs a single queue traversal: the horizon check rides
    /// inside [`EventQueue::pop_at_or_before`] instead of a separate
    /// peek-then-pop pair walking the heap/wheel twice.
    #[jade_hot]
    pub fn run_until(&mut self, until: SimTime) -> RunOutcome {
        loop {
            if self.stop_requested {
                return RunOutcome::Stopped;
            }
            let Some((t, (dst, msg))) = self.queue.pop_at_or_before(until) else {
                if self.queue.is_empty() {
                    return RunOutcome::Drained;
                }
                // Advance the clock to the horizon so utilization
                // windows measured after the run are well defined.
                self.time = until;
                return RunOutcome::HorizonReached;
            };
            debug_assert!(t >= self.time, "time must be monotone");
            self.time = t;
            self.events_processed += 1;
            let mut ctx = Ctx {
                now: self.time,
                queue: &mut self.queue,
                metrics: &mut self.metrics,
                rng: &mut self.rng,
                tracer: &mut self.tracer,
                stop_requested: &mut self.stop_requested,
            };
            self.app.handle(&mut ctx, dst, msg);
        }
    }

    /// Consumes the engine, yielding the application and its metrics.
    pub fn into_parts(self) -> (A, MetricsHub) {
        (self.app, self.metrics)
    }

    /// Consumes the engine, yielding application, metrics and tracer.
    pub fn into_parts_with_trace(self) -> (A, MetricsHub, Tracer) {
        (self.app, self.metrics, self.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy app: counts deliveries, optionally re-schedules itself.
    struct Ticker {
        ticks: u32,
        limit: u32,
        log: Vec<(SimTime, Addr)>,
    }

    enum TickMsg {
        Tick,
        StopNow,
    }

    impl App for Ticker {
        type Msg = TickMsg;
        fn handle(&mut self, ctx: &mut Ctx<'_, TickMsg>, dst: Addr, msg: TickMsg) {
            match msg {
                TickMsg::Tick => {
                    self.ticks += 1;
                    self.log.push((ctx.now(), dst));
                    if self.ticks < self.limit {
                        ctx.send_after(SimDuration::from_secs(1), dst, TickMsg::Tick);
                    }
                }
                TickMsg::StopNow => ctx.stop(),
            }
        }
    }

    #[test]
    fn periodic_ticks_until_drained() {
        let mut eng = Engine::new(
            Ticker {
                ticks: 0,
                limit: 5,
                log: vec![],
            },
            1,
        );
        eng.schedule(SimTime::from_secs(1), Addr(7), TickMsg::Tick);
        let outcome = eng.run_until(SimTime::from_secs(100));
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(eng.app().ticks, 5);
        assert_eq!(eng.app().log[4].0, SimTime::from_secs(5));
        assert_eq!(eng.events_processed(), 5);
    }

    #[test]
    fn horizon_stops_the_run_and_advances_clock() {
        let mut eng = Engine::new(
            Ticker {
                ticks: 0,
                limit: u32::MAX,
                log: vec![],
            },
            1,
        );
        eng.schedule(SimTime::from_secs(1), Addr(1), TickMsg::Tick);
        let outcome = eng.run_until(SimTime::from_secs(10));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(eng.app().ticks, 10);
        assert_eq!(eng.now(), SimTime::from_secs(10));
    }

    #[test]
    fn stop_request_halts_immediately() {
        let mut eng = Engine::new(
            Ticker {
                ticks: 0,
                limit: u32::MAX,
                log: vec![],
            },
            1,
        );
        eng.schedule(SimTime::from_secs(1), Addr(1), TickMsg::Tick);
        eng.schedule(SimTime::from_secs(3), Addr(1), TickMsg::StopNow);
        let outcome = eng.run_until(SimTime::from_secs(100));
        assert_eq!(outcome, RunOutcome::Stopped);
        // The StopNow event was enqueued before the t=3 tick, so it is
        // delivered first at t=3: only the t=1 and t=2 ticks ran.
        assert_eq!(eng.app().ticks, 2);
    }

    #[test]
    fn cancellation_via_ctx() {
        struct Canceller {
            fired: bool,
        }
        enum M {
            Arm,
            Fire,
        }
        impl App for Canceller {
            type Msg = M;
            fn handle(&mut self, ctx: &mut Ctx<'_, M>, _dst: Addr, msg: M) {
                match msg {
                    M::Arm => {
                        let tok = ctx.send_after(SimDuration::from_secs(5), Addr(0), M::Fire);
                        ctx.cancel(tok);
                    }
                    M::Fire => self.fired = true,
                }
            }
        }
        let mut eng = Engine::new(Canceller { fired: false }, 1);
        eng.schedule(SimTime::ZERO, Addr(0), M::Arm);
        eng.run_until(SimTime::from_secs(100));
        assert!(!eng.app().fired);
    }

    #[test]
    fn same_instant_fifo_order() {
        struct Collect {
            order: Vec<u64>,
        }
        impl App for Collect {
            type Msg = u64;
            fn handle(&mut self, _ctx: &mut Ctx<'_, u64>, _dst: Addr, msg: u64) {
                self.order.push(msg);
            }
        }
        let mut eng = Engine::new(Collect { order: vec![] }, 1);
        for i in 0..10 {
            eng.schedule(SimTime::from_secs(1), Addr(0), i);
        }
        eng.run_until(SimTime::from_secs(2));
        assert_eq!(eng.app().order, (0..10).collect::<Vec<_>>());
    }
}
