//! # jade-sim — deterministic discrete-event kernel
//!
//! The substrate that replaces the paper's physical cluster: a
//! single-threaded, deterministic discrete-event simulator with
//!
//! * a virtual clock with microsecond resolution ([`SimTime`],
//!   [`SimDuration`]),
//! * a pending-event set with FIFO tie-breaking and lazy cancellation
//!   ([`queue::EventQueue`]), backed by a slab min-heap for precise
//!   events and a hierarchical timer wheel ([`wheel`]) for the coarse
//!   deadlines that dominate at million-client scale,
//! * a generational slab arena for O(1) id-addressed state with stale-id
//!   detection ([`slab::GenSlab`]),
//! * an application-routing engine ([`Engine`], [`App`], [`Ctx`]),
//! * a processor-sharing CPU model with a thrashing law ([`cpu::PsCpu`]),
//! * measurement infrastructure ([`metrics`]) including the time-windowed
//!   moving averages used by Jade's CPU sensors,
//! * seeded, forkable randomness ([`rng::SimRng`]).
//!
//! Determinism is a feature, not a limitation: it is what lets the
//! reproduction property-test *entire experiments* (e.g. "the managed
//! system never exceeds the node pool" for arbitrary workload ramps) and
//! run parameter sweeps with common random numbers. Parallelism lives at
//! the experiment-harness level (one engine per thread).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod det;
pub mod digest;
pub mod engine;
pub mod metrics;
pub mod pack;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod time;
pub mod trace;
pub mod wheel;

pub use cpu::{EfficiencyCurve, JobId, PsCpu};
pub use det::{DetHashMap, DetHashSet, DetState, FxHasher};
pub use digest::{digest_str, Digest};
pub use engine::{Addr, App, Ctx, Engine, RunOutcome};
pub use metrics::{
    CounterId, Histogram, HistogramId, MetricsHub, MovingAverage, Retention, SeriesCursor,
    SeriesId, TimeSeries, UtilizationTracker,
};
pub use pack::{id_u16, id_u32};
pub use queue::{EventQueue, EventToken};
pub use rng::SimRng;
pub use slab::{GenSlab, SlabKey};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLevel, Tracer};
