//! Virtual time for the discrete-event simulator.
//!
//! Time is counted in integer **microseconds** since the start of the
//! simulation. Microsecond resolution is fine enough for the request
//! latencies the Jade evaluation reports (hundreds of milliseconds) while a
//! `u64` still covers ~584,000 years of virtual time, so overflow is not a
//! practical concern for 3000-second experiments.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for metrics output).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond and saturating below at zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True when the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(250).as_micros(), 250_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1000.0);
        assert!((SimDuration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        let d = t - SimTime::from_secs(10);
        assert_eq!(d.as_micros(), 500_000);
        // Saturating: subtracting a later time yields zero, not wraparound.
        assert_eq!(
            (SimTime::from_secs(1) - SimTime::from_secs(2)).as_micros(),
            0
        );
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(2));
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(1).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(2500)), "2.500ms");
    }
}
