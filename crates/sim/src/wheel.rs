//! Hierarchical timer wheel for coarse-deadline events.
//!
//! The event kernel keeps two pending-event structures behind one facade
//! (see [`crate::queue::EventQueue`]): the slab min-heap for *precise*
//! events (CPU completion timers, network hops — short-lived, dense in
//! time) and this wheel for *coarse* deadlines (client think times,
//! patience timers, periodic sensor ticks — long-lived, sparse, and at
//! million-client scale vastly outnumbering everything else). Insert and
//! cancel on the wheel are O(1) regardless of population, where every
//! heap insert pays O(log n) sift work against a million resident
//! timers.
//!
//! # Exactness
//!
//! Unlike the classic kernel timer wheel, this one is *exact*: entries
//! fire at their precise microsecond timestamp, not rounded to a slot
//! boundary. Levels only bound how far an entry sits from the cursor —
//! level `L` buckets span `64^L` µs — and an entry cascades to lower
//! levels as the cursor approaches, reaching level 0 (1 µs buckets)
//! before it fires. Because a level-0 bucket is 1 µs wide, every entry
//! in the minimal level-0 bucket shares one exact timestamp, and the
//! queue facade merges those entries against the heap by the global
//! `(time, seq)` key. Rerouting a timer from heap to wheel therefore
//! cannot change any simulation outcome — the determinism tests and
//! `tests/wheel_prop.rs` hold the two structures to byte-identical fire
//! order.
//!
//! # Invariants
//!
//! * `cursor` never exceeds the timestamp of any resident entry; it
//!   advances only to the span start of the minimal occupied bucket.
//! * An entry inserted at delta `d` from the cursor lands on level
//!   `⌊log64 d⌋`; since the cursor only advances by processing minimal
//!   buckets, a bucket at level `L` always holds entries within
//!   `[cursor, cursor + 64^(L+1))` — exactly one "lap", so a bucket
//!   index maps to a single span start and no aliasing is possible.
//! * On span-start ties the *highest* level is processed first, so
//!   same-timestamp entries parked at different levels are merged down
//!   into one level-0 bucket before that bucket is drained.
//!
//! Deltas of 2^42 µs (~51 days of virtual time) or more park in an
//! unsorted overflow list and migrate into the levels when the wheel
//! drains down to them; no experiment in this repository comes within
//! three orders of magnitude of needing it, but the path keeps the
//! structure total.

// jade-audit: allow-file(hot-panic): hand-audited intrusive-list slab —
// every index is a node id minted by alloc and owned by exactly one
// bucket list or the free list, or a bucket index masked to LEVEL_BITS;
// the expect()s unpack list heads tested non-NONE on the previous line.

/// Number of levels; level `L` buckets are `64^L` µs wide.
pub(crate) const LEVELS: usize = 7;
/// Buckets per level.
const BUCKETS: usize = 64;
/// Bits of timestamp consumed per level.
const LEVEL_BITS: u32 = 6;
/// Deltas at or beyond `64^LEVELS` µs go to the overflow list.
const SPAN: u64 = 1 << (LEVEL_BITS * LEVELS as u32);
/// Intrusive-list terminator.
const NONE: u32 = u32::MAX;

/// One resident wheel entry. `packed` carries the queue's `(seq << 32) |
/// slot` word verbatim — the wheel never unpacks it, it only hands it
/// back so the facade can order same-instant entries by insertion seq.
pub(crate) struct WheelNode {
    pub(crate) time: u64,
    pub(crate) packed: u64,
    next: u32,
    pub(crate) live: bool,
}

/// The wheel proper. Owned by [`crate::queue::EventQueue`]; all public
/// surface goes through the queue facade.
pub(crate) struct TimerWheel {
    /// All resident entries are at times `>= cursor`.
    cursor: u64,
    /// Intrusive singly-linked bucket heads, `heads[level][bucket]`.
    heads: [[u32; BUCKETS]; LEVELS],
    /// Per-level occupancy bitmaps (bit `b` set ⇔ `heads[level][b]` non-empty).
    occupied: [u64; LEVELS],
    /// Node slab with an intrusive free list threaded through `next`.
    pub(crate) nodes: Vec<WheelNode>,
    free_head: u32,
    /// Entries further than `SPAN` µs out, unsorted.
    pub(crate) overflow: Vec<(u64, u64)>,
    /// Resident entries (buckets + overflow; drained entries excluded).
    len: usize,
}

/// Level for an entry `delta` µs ahead of the cursor (`delta < SPAN`).
#[inline]
fn level_for(delta: u64) -> usize {
    if delta == 0 {
        0
    } else {
        (63 - delta.leading_zeros() as usize) / LEVEL_BITS as usize
    }
}

/// Bucket index of timestamp `time` at `level`.
#[inline]
fn bucket_of(time: u64, level: usize) -> usize {
    ((time >> (LEVEL_BITS * level as u32)) & (BUCKETS as u64 - 1)) as usize
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            cursor: 0,
            heads: [[NONE; BUCKETS]; LEVELS],
            occupied: [0; LEVELS],
            nodes: Vec::new(),
            free_head: NONE,
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Resident entry count (cancelled-but-unswept entries included).
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current cursor position. Entries below this time cannot be
    /// inserted (the queue facade falls back to the heap for them).
    pub(crate) fn cursor(&self) -> u64 {
        self.cursor
    }

    // jade-audit: allow(unbounded-growth): the node slab grows to the
    // high-water mark of concurrently armed timers; release() returns
    // retired nodes to free_head and the branch above reuses them.
    fn alloc(&mut self, time: u64, packed: u64, next: u32) -> u32 {
        if self.free_head != NONE {
            let at = self.free_head;
            let n = &mut self.nodes[at as usize];
            self.free_head = n.next;
            *n = WheelNode {
                time,
                packed,
                next,
                live: true,
            };
            at
        } else {
            self.nodes.push(WheelNode {
                time,
                packed,
                next,
                live: true,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, at: u32) {
        let n = &mut self.nodes[at as usize];
        n.live = false;
        n.next = self.free_head;
        self.free_head = at;
    }

    fn link(&mut self, time: u64, packed: u64) {
        let delta = time - self.cursor;
        if delta >= SPAN {
            self.overflow.push((time, packed));
            return;
        }
        let level = level_for(delta);
        let b = bucket_of(time, level);
        let at = self.alloc(time, packed, self.heads[level][b]);
        self.heads[level][b] = at;
        self.occupied[level] |= 1 << b;
    }

    /// Inserts an entry. Caller guarantees `time >= cursor` (the queue
    /// facade routes earlier times to the heap).
    pub(crate) fn push(&mut self, time: u64, packed: u64) {
        debug_assert!(time >= self.cursor);
        if self.len == 0 {
            // Empty wheel: snap the cursor forward so a long heap-only
            // stretch does not leave new entries cascading from stale
            // high levels.
            self.cursor = time;
        }
        self.link(time, packed);
        self.len += 1;
    }

    /// Span start and level of the next bucket the cursor will process:
    /// minimal span start, ties to the highest level (so same-timestamp
    /// entries merge down before the level-0 drain). `None` when every
    /// level is empty (the overflow list may still hold entries).
    fn next_bucket(&self) -> Option<(u64, usize)> {
        let mut best: Option<(u64, usize)> = None;
        for level in 0..LEVELS {
            let bits = self.occupied[level];
            if bits == 0 {
                continue;
            }
            let unit = 1u64 << (LEVEL_BITS * level as u32);
            let at = bucket_of(self.cursor, level);
            let span = if level == 0 {
                // Bit at ring distance d from the cursor bucket is the
                // single timestamp `cursor + d` (level-0 buckets are
                // 1 µs wide and hold one "lap" only).
                self.cursor + bits.rotate_right(at as u32).trailing_zeros() as u64
            } else if self.cursor.is_multiple_of(unit) && bits & (1 << at) != 0 {
                // Cursor sits exactly on this bucket's base: the bucket
                // is wholly ahead and its span starts here.
                self.cursor
            } else {
                // Ring distance 1..=64; distance 64 (bit lands back on
                // the cursor bucket) is the *next* lap — a partially
                // elapsed cursor bucket cannot hold current-lap entries,
                // because the cursor only enters a bucket's interior by
                // first processing (and thus emptying) that bucket.
                let rot = bits.rotate_right(((at + 1) % BUCKETS) as u32);
                let dist = rot.trailing_zeros() as u64 + 1;
                (self.cursor - self.cursor % unit) + dist * unit
            };
            best = match best {
                Some((s, _)) if s < span => best,
                // `>=` so a span tie prefers the higher (later) level.
                _ => Some((span, level)),
            };
        }
        best
    }

    /// Lower bound on the earliest resident entry's timestamp (exact
    /// when the next bucket is at level 0). `None` when the wheel is
    /// empty. The queue facade compares this against the heap head to
    /// decide whether advancing the wheel can be deferred.
    pub(crate) fn next_candidate(&self) -> Option<u64> {
        match self.next_bucket() {
            Some((span, _)) => Some(span),
            None => self.overflow.iter().map(|&(t, _)| t).min(),
        }
    }

    /// Performs one unit of cursor progress: migrates the overflow list,
    /// cascades one bucket to lower levels, or drains the minimal
    /// level-0 bucket into `out` as `(time, packed)` pairs (all sharing
    /// one exact timestamp). Callers loop until `out` is non-empty or
    /// the wheel empties; each call strictly reduces remaining work
    /// (cascades move entries to strictly lower levels), so the loop
    /// terminates.
    pub(crate) fn advance_once(&mut self, out: &mut Vec<(u64, u64)>) {
        debug_assert!(self.len > 0);
        let bucket = self.next_bucket();
        if !self.overflow.is_empty() {
            let over_min = self
                .overflow
                .iter()
                .map(|&(t, _)| t)
                .min()
                .expect("overflow checked non-empty");
            if bucket.is_none_or(|(span, _)| over_min < span) {
                // All level entries are at or beyond their bucket span
                // starts, so jumping the cursor to the overflow minimum
                // cannot pass any of them.
                self.cursor = over_min;
                let pending = std::mem::take(&mut self.overflow);
                for (t, p) in pending {
                    self.link(t, p);
                }
                return;
            }
        }
        let (span, level) = bucket.expect("advance_once on an empty wheel");
        self.cursor = span;
        let b = bucket_of(span, level);
        let mut at = std::mem::replace(&mut self.heads[level][b], NONE);
        self.occupied[level] &= !(1 << b);
        if level == 0 {
            while at != NONE {
                let n = &self.nodes[at as usize];
                let (t, p, nxt) = (n.time, n.packed, n.next);
                debug_assert_eq!(t, span, "level-0 bucket holds one timestamp");
                out.push((t, p));
                self.release(at);
                self.len -= 1;
                at = nxt;
            }
        } else {
            // Cascade: relink every entry at its new delta, which is
            // now strictly below this level's reach.
            while at != NONE {
                let nxt = self.nodes[at as usize].next;
                let t = self.nodes[at as usize].time;
                debug_assert!(t >= self.cursor);
                debug_assert!(level_for(t - self.cursor) < level);
                let nl = level_for(t - self.cursor);
                let nb = bucket_of(t, nl);
                self.nodes[at as usize].next = self.heads[nl][nb];
                self.heads[nl][nb] = at;
                self.occupied[nl] |= 1 << nb;
                at = nxt;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        let mut fired = Vec::new();
        let mut out = Vec::new();
        while !w.is_empty() {
            out.clear();
            w.advance_once(&mut out);
            out.sort_unstable_by_key(|&(_, p)| p);
            fired.extend(out.iter().copied());
        }
        fired
    }

    #[test]
    fn fires_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        // Deliberately adversarial: mixed magnitudes, duplicate times.
        let times = [5u64, 1 << 20, 63, 64, 65, 5, 4096, (1 << 18) + 7, 5];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, (i as u64) << 32);
        }
        let fired = drain_all(&mut w);
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, (i as u64) << 32))
            .collect();
        expect.sort_unstable();
        assert_eq!(fired, expect);
    }

    #[test]
    fn overflow_entries_migrate_and_fire() {
        let mut w = TimerWheel::new();
        w.push(10, 1 << 32);
        w.push(SPAN + 77, 2 << 32); // parks in overflow
        assert_eq!(w.overflow.len(), 1);
        let fired = drain_all(&mut w);
        assert_eq!(fired, vec![(10, 1 << 32), (SPAN + 77, 2 << 32)]);
    }

    #[test]
    fn cursor_snaps_forward_when_empty() {
        let mut w = TimerWheel::new();
        w.push(1_000_000, 0);
        assert_eq!(w.cursor(), 1_000_000);
        let fired = drain_all(&mut w);
        assert_eq!(fired, vec![(1_000_000, 0)]);
        // After draining, a much later push re-snaps rather than
        // cascading down from a stale high level.
        w.push(u64::from(u32::MAX) * 1_000, 7);
        assert_eq!(w.cursor(), u64::from(u32::MAX) * 1_000);
    }

    #[test]
    fn same_time_entries_across_levels_merge() {
        let mut w = TimerWheel::new();
        // First entry fixes the cursor at 0; the same timestamp is then
        // pushed at a high level (large delta) and after the cursor has
        // moved (small delta) — all three must drain together.
        w.push(0, 9);
        let t = 100_000; // level 2 from cursor 0
        w.push(t, 1 << 32);
        let mut out = Vec::new();
        w.advance_once(&mut out); // drains the t=0 bucket
        assert_eq!(out, vec![(0, 9)]);
        w.push(t, 2 << 32); // still level >= 1 from cursor 0
        let fired = drain_all(&mut w);
        assert_eq!(fired, vec![(t, 1 << 32), (t, 2 << 32)]);
    }
}
