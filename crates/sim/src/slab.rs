//! Generational slab arena: O(1) insert/lookup/remove with stale-key
//! detection.
//!
//! This generalizes the packed-key + intrusive-free-list design of
//! [`crate::EventQueue`]'s cancellation tokens to arbitrary payloads: a
//! [`SlabKey`] packs `(generation << 32) | slot` into one `u64`, vacant
//! slots chain through an intrusive free list, and each slot's generation
//! is bumped when it is freed so a key held across a free/reuse cycle no
//! longer resolves. Callers that already traffic in `u64` ids (request
//! ids, job ids) can round-trip through [`SlabKey::raw`] /
//! [`SlabKey::from_raw`] without widening their id types.

/// Packed handle to an occupied slab slot: low 32 bits slot index, high
/// 32 bits the slot's generation at insertion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabKey(u64);

impl SlabKey {
    fn new(slot: u32, generation: u32) -> Self {
        SlabKey(((generation as u64) << 32) | slot as u64)
    }

    /// Reconstructs a key from its packed `u64` representation.
    pub fn from_raw(raw: u64) -> Self {
        SlabKey(raw)
    }

    /// The packed `u64` representation (round-trips via [`from_raw`]).
    ///
    /// [`from_raw`]: SlabKey::from_raw
    pub fn raw(self) -> u64 {
        self.0
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Sentinel terminating the intrusive free list.
const NO_FREE: u32 = u32::MAX;

#[derive(Debug)]
enum State<T> {
    /// Free slot; the payload is the next free slot index (or `NO_FREE`).
    Vacant(u32),
    Occupied(T),
}

#[derive(Debug)]
struct Entry<T> {
    /// Bumped every time the slot is freed; keys carry the generation
    /// they were issued under, so stale keys miss.
    generation: u32,
    state: State<T>,
}

/// A slab of `T` addressed by generational [`SlabKey`]s.
///
/// All operations are O(1); memory is proportional to the high-water
/// occupancy, and freed slots are recycled most-recently-freed first.
#[derive(Debug)]
pub struct GenSlab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for GenSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> GenSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        GenSlab {
            entries: Vec::new(),
            free_head: NO_FREE,
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning the key addressing it.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if self.free_head != NO_FREE {
            let slot = self.free_head;
            let entry = &mut self.entries[slot as usize];
            match entry.state {
                State::Vacant(next) => self.free_head = next,
                State::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            entry.state = State::Occupied(value);
            SlabKey::new(slot, entry.generation)
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab capacity");
            self.entries.push(Entry {
                generation: 0,
                state: State::Occupied(value),
            });
            SlabKey::new(slot, 0)
        }
    }

    fn entry(&self, key: SlabKey) -> Option<&Entry<T>> {
        self.entries
            .get(key.slot() as usize)
            .filter(|e| e.generation == key.generation())
    }

    /// True when `key` addresses a live value.
    pub fn contains(&self, key: SlabKey) -> bool {
        matches!(
            self.entry(key),
            Some(Entry {
                state: State::Occupied(_),
                ..
            })
        )
    }

    /// The value addressed by `key`, unless removed or stale.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.entry(key) {
            Some(Entry {
                state: State::Occupied(v),
                ..
            }) => Some(v),
            _ => None,
        }
    }

    /// Mutable access to the value addressed by `key`.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.entries.get_mut(key.slot() as usize) {
            Some(e) if e.generation == key.generation() => match &mut e.state {
                State::Occupied(v) => Some(v),
                State::Vacant(_) => None,
            },
            _ => None,
        }
    }

    /// Removes and returns the value addressed by `key`; the slot's
    /// generation is bumped so the key (and any copy of it) goes stale.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = key.slot();
        let entry = self.entries.get_mut(slot as usize)?;
        if entry.generation != key.generation() || matches!(entry.state, State::Vacant(_)) {
            return None;
        }
        let state = std::mem::replace(&mut entry.state, State::Vacant(self.free_head));
        entry.generation = entry.generation.wrapping_add(1);
        self.free_head = slot;
        self.len -= 1;
        match state {
            State::Occupied(v) => Some(v),
            State::Vacant(_) => unreachable!("checked occupied above"),
        }
    }

    /// Iterates over occupied slots in slot (not insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match &e.state {
                State::Occupied(v) => Some((SlabKey::new(i as u32, e.generation), v)),
                State::Vacant(_) => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = GenSlab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        *slab.get_mut(a).unwrap() = "a2";
        assert_eq!(slab.remove(a), Some("a2"));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(a), None);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn stale_key_is_rejected_after_slot_reuse() {
        let mut slab = GenSlab::new();
        let a = slab.insert(1u32);
        slab.remove(a);
        // LIFO free list: the next insert reuses a's slot.
        let b = slab.insert(2u32);
        assert_eq!(b.raw() as u32, a.raw() as u32, "slot reused");
        assert_ne!(b.raw(), a.raw(), "generation differs");
        assert_eq!(slab.get(a), None, "stale key must miss");
        assert_eq!(slab.remove(a), None, "stale remove must be a no-op");
        assert_eq!(slab.get(b), Some(&2));
    }

    #[test]
    fn keys_roundtrip_through_raw() {
        let mut slab = GenSlab::new();
        let k = slab.insert(7i64);
        let k2 = SlabKey::from_raw(k.raw());
        assert_eq!(slab.get(k2), Some(&7));
    }

    #[test]
    fn iter_yields_occupied_in_slot_order() {
        let mut slab = GenSlab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        let c = slab.insert(30);
        slab.remove(b);
        let seen: Vec<_> = slab.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(seen, vec![(a, 10), (c, 30)]);
    }

    #[test]
    fn free_list_recycles_most_recently_freed_first() {
        let mut slab = GenSlab::new();
        let keys: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(keys[1]);
        slab.remove(keys[3]);
        let reused = slab.insert(99);
        assert_eq!(reused.raw() as u32, keys[3].raw() as u32);
        let reused2 = slab.insert(98);
        assert_eq!(reused2.raw() as u32, keys[1].raw() as u32);
    }
}
