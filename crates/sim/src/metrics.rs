//! Measurement infrastructure: time series, histograms, utilization
//! trackers and the time-windowed moving averages that the Jade
//! self-optimization sensors rely on (paper §4.1 and §5.2).

use crate::det::DetHashMap;
use crate::time::{SimDuration, SimTime};

/// Storage policy of a [`TimeSeries`].
///
/// `KeepAll` (the default) retains every sample — what the figure
/// binaries need to render full trajectories. The bounded modes cap the
/// resident sample count so long soak runs and million-client horizons
/// stop growing RSS linearly with virtual time; they change what a later
/// reader *sees*, never the values that were recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Retain every sample (default).
    #[default]
    KeepAll,
    /// Retain (roughly) the most recent `cap` samples; memory is bounded
    /// by `2 * cap` points (front drops are amortized O(1)).
    Ring(usize),
    /// Retain at most `cap` samples across the whole run by doubling the
    /// record stride each time the buffer fills: full temporal coverage
    /// at geometrically decreasing resolution.
    Decimate(usize),
}

/// A recorded `(time, value)` series, e.g. "number of database backends".
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    retention: Retention,
    /// Decimation state: record every `stride`-th offered sample.
    stride: u64,
    seen: u64,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with a storage policy.
    pub fn with_retention(retention: Retention) -> Self {
        let mut ts = Self::default();
        ts.set_retention(retention);
        ts
    }

    /// Sets the storage policy. Applies to future appends; already-stored
    /// samples are trimmed lazily as new ones arrive.
    pub fn set_retention(&mut self, retention: Retention) {
        self.retention = retention;
        if self.stride == 0 {
            self.stride = 1;
        }
    }

    /// The storage policy.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// Appends a sample. Samples must be recorded in non-decreasing time
    /// order (the simulator clock guarantees this).
    pub fn record(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(pt, _)| pt <= t),
            "time series samples must be time-ordered"
        );
        match self.retention {
            Retention::KeepAll => self.points.push((t, v)),
            Retention::Ring(cap) => {
                let cap = cap.max(1);
                self.points.push((t, v));
                if self.points.len() >= cap * 2 {
                    self.points.drain(..self.points.len() - cap);
                }
            }
            Retention::Decimate(cap) => {
                let cap = cap.max(2);
                if self.seen.is_multiple_of(self.stride) {
                    self.points.push((t, v));
                    if self.points.len() >= cap {
                        // Halve the resolution: keep every other sample
                        // and double the stride for future appends.
                        let mut keep = false;
                        self.points.retain(|_| {
                            keep = !keep;
                            keep
                        });
                        self.stride = self.stride.saturating_mul(2);
                    }
                }
                self.seen = self.seen.wrapping_add(1);
            }
        }
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Arithmetic mean of the sample values (unweighted).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Largest sample value, or 0 for an empty series.
    pub fn max(&self) -> f64 {
        // Folding from the first sample (not 0.0) keeps all-negative
        // series honest.
        let mut values = self.points.iter().map(|&(_, v)| v);
        match values.next() {
            None => 0.0,
            Some(first) => values.fold(first, f64::max),
        }
    }

    /// Value of the last sample at or before `t` (step interpolation),
    /// or `default` when no such sample exists.
    pub fn value_at(&self, t: SimTime, default: f64) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => default,
            i => self.points[i - 1].1,
        }
    }

    /// [`TimeSeries::value_at`] through a [`SeriesCursor`]: amortized
    /// O(points passed since the previous call) for the monotone reads a
    /// periodic sensor performs, instead of O(log n) from scratch.
    pub fn value_at_cached(&self, cursor: &mut SeriesCursor, t: SimTime, default: f64) -> f64 {
        match cursor.seek(&self.points, t) {
            0 => default,
            i => self.points[i - 1].1,
        }
    }

    /// Time-weighted average over `[from, to]`, treating the series as a
    /// step function. Returns `None` if the series has no sample at or
    /// before `from` and no sample inside the window.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> Option<f64> {
        if to <= from {
            return None;
        }
        let start = self.points.partition_point(|&(pt, _)| pt <= from);
        self.windowed_mean_from(start, from, to)
    }

    /// [`TimeSeries::time_weighted_mean`] through a [`SeriesCursor`]. The
    /// window scan itself is shared with the from-scratch path, so the
    /// floating-point operation sequence — and hence the result — is
    /// bit-identical; only the `partition_point` is replaced by the
    /// cursor's amortized-O(new points) seek.
    pub fn time_weighted_mean_cached(
        &self,
        cursor: &mut SeriesCursor,
        from: SimTime,
        to: SimTime,
    ) -> Option<f64> {
        let start = cursor.seek(&self.points, from);
        if to <= from {
            return None;
        }
        self.windowed_mean_from(start, from, to)
    }

    /// The shared window scan: `start` must equal
    /// `points.partition_point(|&(pt, _)| pt <= from)`.
    fn windowed_mean_from(&self, start: usize, from: SimTime, to: SimTime) -> Option<f64> {
        let mut acc = 0.0;
        let mut covered = 0.0;
        let mut cursor = from;
        let mut current = match start {
            0 => None,
            i => Some(self.points[i - 1].1),
        };
        for &(pt, v) in &self.points[start..] {
            if pt >= to {
                break;
            }
            if let Some(cv) = current {
                let span = (pt - cursor).as_secs_f64();
                acc += cv * span;
                covered += span;
            }
            cursor = pt;
            current = Some(v);
        }
        if let Some(cv) = current {
            let span = (to - cursor).as_secs_f64();
            acc += cv * span;
            covered += span;
        }
        if covered > 0.0 {
            Some(acc / covered)
        } else {
            None
        }
    }
}

/// Cached window position into a [`TimeSeries`], making repeated
/// [`TimeSeries::value_at_cached`] / [`TimeSeries::time_weighted_mean_cached`]
/// reads over a sliding window O(new points) amortized instead of
/// O(log n + window) from scratch each time.
///
/// The cursor is only a starting hint: every seek re-validates against
/// the actual points (rewinding or advancing as needed), so an
/// out-of-order read — or a series trimmed by a bounded
/// [`Retention`] mode — degrades to a linear correction, never to a
/// wrong answer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeriesCursor {
    start: usize,
}

impl SeriesCursor {
    /// A cursor positioned at the start of the series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `points.partition_point(|&(pt, _)| pt <= from)`, walking
    /// from the cached previous position.
    fn seek(&mut self, points: &[(SimTime, f64)], from: SimTime) -> usize {
        let mut i = self.start.min(points.len());
        while i > 0 && points[i - 1].0 > from {
            i -= 1;
        }
        while i < points.len() && points[i].0 <= from {
            i += 1;
        }
        self.start = i;
        i
    }
}

/// Moving average over a sliding window of virtual time.
///
/// This is the paper's temporal smoothing of CPU usage: "the CPU usage is
/// smoothed by a temporal average (moving average)" computed "over the last
/// 60 seconds for the application servers and over the last 90 seconds for
/// the database servers" (§5.2).
///
/// Samples live in a fixed-capacity ring buffer: once the buffer matches
/// the in-window population high-water mark (which
/// [`MovingAverage::with_period`] preallocates exactly for a periodic
/// probe), recording is allocation-free. The running-sum arithmetic —
/// `sum += v` on push, then front-to-back `sum -= old` evictions — is the
/// exact floating-point operation sequence of the original
/// `VecDeque`-backed implementation, so smoothed sensor values are
/// bit-identical.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: SimDuration,
    /// Ring storage; `buf.len()` is the capacity, always ≥ 1 once any
    /// sample has been recorded.
    buf: Vec<(SimTime, f64)>,
    head: usize,
    len: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average with the given time window. The ring
    /// grows geometrically toward the in-window high-water mark; when the
    /// sampling period is known, [`MovingAverage::with_period`] sizes it
    /// up front.
    pub fn new(window: SimDuration) -> Self {
        MovingAverage {
            window,
            buf: Vec::new(),
            head: 0,
            len: 0,
            sum: 0.0,
        }
    }

    /// Creates a moving average whose ring is pre-sized for one sample
    /// every `period`: `window / period + 2` slots, so steady-state
    /// recording never allocates.
    pub fn with_period(window: SimDuration, period: SimDuration) -> Self {
        let cap = if period.is_zero() {
            8
        } else {
            (window.as_micros() / period.as_micros()).saturating_add(2) as usize
        };
        MovingAverage {
            window,
            buf: vec![(SimTime::ZERO, 0.0); cap.max(1)],
            head: 0,
            len: 0,
            sum: 0.0,
        }
    }

    /// The configured window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Doubles the ring capacity, re-linearizing the live samples.
    #[cold]
    fn grow(&mut self) {
        let old_cap = self.buf.len();
        let new_cap = (old_cap * 2).max(8);
        let mut buf = Vec::with_capacity(new_cap);
        for i in 0..self.len {
            buf.push(self.buf[(self.head + i) % old_cap.max(1)]);
        }
        buf.resize(new_cap, (SimTime::ZERO, 0.0));
        self.buf = buf;
        self.head = 0;
    }

    /// Records a sample at time `t` and evicts samples older than the
    /// window.
    pub fn record(&mut self, t: SimTime, v: f64) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let cap = self.buf.len();
        self.buf[(self.head + self.len) % cap] = (t, v);
        self.len += 1;
        self.sum += v;
        let horizon = if t.as_micros() >= self.window.as_micros() {
            SimTime::from_micros(t.as_micros() - self.window.as_micros())
        } else {
            SimTime::ZERO
        };
        while self.len > 0 {
            let (st, sv) = self.buf[self.head];
            if st < horizon {
                self.head = (self.head + 1) % cap;
                self.len -= 1;
                self.sum -= sv;
            } else {
                break;
            }
        }
    }

    /// Current smoothed value (mean of in-window samples), or `None` when
    /// no sample is in the window.
    pub fn value(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.sum / self.len as f64)
        }
    }

    /// Number of samples currently inside the window.
    pub fn sample_count(&self) -> usize {
        self.len
    }

    /// Ring capacity in samples (diagnostic: steady-state recording must
    /// not grow it past the in-window high-water mark).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

/// Tracks the busy/idle state of a resource and integrates busy time, for
/// CPU-utilization measurements.
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    busy_since: Option<SimTime>,
    busy_accum: SimDuration,
    // Rolling snapshot support: utilization since the last `sample()` call.
    last_sample_at: SimTime,
    busy_at_last_sample: SimDuration,
}

impl Default for UtilizationTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl UtilizationTracker {
    /// Creates an idle tracker at t = 0.
    pub fn new() -> Self {
        UtilizationTracker {
            busy_since: None,
            busy_accum: SimDuration::ZERO,
            last_sample_at: SimTime::ZERO,
            busy_at_last_sample: SimDuration::ZERO,
        }
    }

    /// Marks the resource busy starting at `t`. Idempotent.
    pub fn set_busy(&mut self, t: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(t);
        }
    }

    /// Marks the resource idle at `t`. Idempotent.
    pub fn set_idle(&mut self, t: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_accum += t - since;
        }
    }

    /// Total busy time accumulated up to `t`.
    pub fn busy_time(&self, t: SimTime) -> SimDuration {
        match self.busy_since {
            Some(since) => self.busy_accum + (t - since),
            None => self.busy_accum,
        }
    }

    /// Utilization (0..=1) over the window since the previous `sample` call,
    /// then resets the window. This is what a periodic CPU probe reads.
    pub fn sample(&mut self, t: SimTime) -> f64 {
        let busy_now = self.busy_time(t);
        let window = t - self.last_sample_at;
        let busy_delta = busy_now.saturating_sub(self.busy_at_last_sample);
        self.last_sample_at = t;
        self.busy_at_last_sample = busy_now;
        if window.is_zero() {
            0.0
        } else {
            (busy_delta.as_secs_f64() / window.as_secs_f64()).min(1.0)
        }
    }
}

/// Fixed-bucket latency histogram with quantile queries.
///
/// Buckets are exponential (1 ms base, ×2) so both the ~90 ms steady-state
/// responses of Table 1 and the 300-second thrashing latencies of Figure 8
/// land in meaningful buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// bucket i counts samples in [2^i, 2^(i+1)) milliseconds; bucket 0 is [0, 1ms).
    buckets: Vec<u64>,
    count: u64,
    sum_ms: f64,
    max_ms: f64,
}

const HIST_BUCKETS: usize = 32;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    // jade-audit: allow(hot-alloc): runs once per distinct metric name
    // when the name is first interned, never per recorded sample.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        let ms = d.as_millis_f64();
        let idx = if ms < 1.0 {
            0
        } else {
            ((ms.log2().floor() as usize) + 1).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }

    /// Largest observation in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Approximate quantile (0..=1) in milliseconds, using the upper edge
    /// of the bucket containing the quantile.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 1.0 } else { (1u64 << i) as f64 };
            }
        }
        self.max_ms
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

/// Interned handle to a time series, for allocation- and hash-free
/// recording on the simulation hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(u32);

/// Interned handle to a latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// Interned handle to a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Central sink for named measurements produced during a run.
///
/// The hub is owned by the engine so that all simulation actors can record
/// without sharing ownership; after the run it is taken apart by the
/// experiment harness.
///
/// Metrics are stored in insertion-ordered vectors with a name index on
/// the side. Recording by name never allocates once the metric exists;
/// hot-path producers (per-request latency, the periodic probes) intern a
/// [`SeriesId`]/[`HistogramId`]/[`CounterId`] once and record through it,
/// skipping even the name hash. [`record_series_batch`] appends one probe
/// tick's worth of samples in a single call.
///
/// [`record_series_batch`]: MetricsHub::record_series_batch
#[derive(Debug, Default)]
pub struct MetricsHub {
    series: Vec<(String, TimeSeries)>,
    series_index: DetHashMap<String, u32>,
    histograms: Vec<(String, Histogram)>,
    histogram_index: DetHashMap<String, u32>,
    counters: Vec<(String, u64)>,
    counter_index: DetHashMap<String, u32>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a series name, creating the (empty) series if needed.
    // jade-audit: allow(hot-alloc, unbounded-growth): intern table —
    // allocates and grows once per distinct static metric name (the
    // early-return hits on every subsequent call), bounded by the set of
    // names in the source, not by run length.
    pub fn series_id(&mut self, name: &str) -> SeriesId {
        if let Some(&i) = self.series_index.get(name) {
            return SeriesId(i);
        }
        let i = self.series.len() as u32;
        self.series.push((name.to_owned(), TimeSeries::new()));
        self.series_index.insert(name.to_owned(), i);
        SeriesId(i)
    }

    /// Interns a histogram name, creating the (empty) histogram if needed.
    // jade-audit: allow(hot-alloc, unbounded-growth): intern table — see
    // series_id; one allocation per distinct static metric name.
    pub fn histogram_id(&mut self, name: &str) -> HistogramId {
        if let Some(&i) = self.histogram_index.get(name) {
            return HistogramId(i);
        }
        let i = self.histograms.len() as u32;
        self.histograms.push((name.to_owned(), Histogram::new()));
        self.histogram_index.insert(name.to_owned(), i);
        HistogramId(i)
    }

    /// Interns a counter name, creating it at zero if needed.
    // jade-audit: allow(hot-alloc, unbounded-growth): intern table — see
    // series_id; one allocation per distinct static metric name.
    pub fn counter_id(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_index.get(name) {
            return CounterId(i);
        }
        let i = self.counters.len() as u32;
        self.counters.push((name.to_owned(), 0));
        self.counter_index.insert(name.to_owned(), i);
        CounterId(i)
    }

    /// Sets the storage policy of the named series (created empty if
    /// needed). Keep-all is the default; bounded modes are for soak runs
    /// whose figures are not rendered from the full trajectory.
    pub fn set_series_retention(&mut self, name: &str, retention: Retention) {
        let id = self.series_id(name);
        self.series[id.0 as usize].1.set_retention(retention);
    }

    /// Appends to the named time series.
    pub fn record_series(&mut self, name: &str, t: SimTime, v: f64) {
        let id = self.series_id(name);
        self.record_series_id(id, t, v);
    }

    /// Appends to an interned series (hot path: no hashing).
    // jade-audit: allow(hot-panic): SeriesId is only minted by series_id,
    // which returns dense indexes into this same vector.
    #[inline]
    pub fn record_series_id(&mut self, id: SeriesId, t: SimTime, v: f64) {
        self.series[id.0 as usize].1.record(t, v);
    }

    /// Appends one sample to each listed series at the same instant — the
    /// shape of a periodic probe tick.
    pub fn record_series_batch(&mut self, t: SimTime, samples: &[(SeriesId, f64)]) {
        for &(id, v) in samples {
            self.record_series_id(id, t, v);
        }
    }

    /// Records a latency in the named histogram.
    pub fn record_latency(&mut self, name: &str, d: SimDuration) {
        let id = self.histogram_id(name);
        self.record_latency_id(id, d);
    }

    /// Records a latency in an interned histogram (hot path).
    // jade-audit: allow(hot-panic): HistogramId is only minted by
    // histogram_id, which returns dense indexes into this same vector.
    #[inline]
    pub fn record_latency_id(&mut self, id: HistogramId, d: SimDuration) {
        self.histograms[id.0 as usize].1.record(d);
    }

    /// Increments the named counter.
    pub fn incr(&mut self, name: &str, by: u64) {
        let id = self.counter_id(name);
        self.incr_id(id, by);
    }

    /// Increments an interned counter (hot path).
    // jade-audit: allow(hot-panic): CounterId is only minted by
    // counter_id, which returns dense indexes into this same vector.
    #[inline]
    pub fn incr_id(&mut self, id: CounterId, by: u64) {
        self.counters[id.0 as usize].1 += by;
    }

    /// Looks up a series by name.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series_index
            .get(name)
            .map(|&i| &self.series[i as usize].1)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histogram_index
            .get(name)
            .map(|&i| &self.histograms[i as usize].1)
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map(|&i| self.counters[i as usize].1)
            .unwrap_or(0)
    }

    /// Names of all recorded series, sorted (deterministic output).
    pub fn series_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.series.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Names of all recorded histograms, sorted.
    pub fn histogram_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.histograms.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Names of all recorded counters, sorted.
    pub fn counter_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.counters.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn series_value_at_steps() {
        let mut ts = TimeSeries::new();
        ts.record(t(1), 1.0);
        ts.record(t(5), 2.0);
        assert_eq!(ts.value_at(t(0), 9.0), 9.0);
        assert_eq!(ts.value_at(t(1), 9.0), 1.0);
        assert_eq!(ts.value_at(t(4), 9.0), 1.0);
        assert_eq!(ts.value_at(t(10), 9.0), 2.0);
    }

    #[test]
    fn series_time_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.record(t(0), 0.0);
        ts.record(t(10), 1.0);
        // 0 for 10s then 1 for 10s -> mean 0.5
        let m = ts.time_weighted_mean(t(0), t(20)).unwrap();
        assert!((m - 0.5).abs() < 1e-9);
        // Window entirely before first sample -> None
        let mut ts2 = TimeSeries::new();
        ts2.record(t(50), 1.0);
        assert!(ts2.time_weighted_mean(t(0), t(10)).is_none());
    }

    #[test]
    fn series_max_handles_all_negative_values() {
        let mut ts = TimeSeries::new();
        ts.record(t(1), -5.0);
        ts.record(t(2), -2.0);
        ts.record(t(3), -9.0);
        assert_eq!(ts.max(), -2.0);
        assert_eq!(TimeSeries::new().max(), 0.0);
    }

    #[test]
    fn series_cursor_matches_from_scratch_reads() {
        let mut ts = TimeSeries::new();
        for i in 0..200u64 {
            ts.record(t(i), (i as f64).sin());
        }
        let mut cur = SeriesCursor::new();
        // Forward walk, then a rewind, then a jump past the end.
        for &from in &[0u64, 3, 10, 50, 49, 120, 5, 199, 400] {
            let to = t(from + 17);
            let naive = ts.time_weighted_mean(t(from), to);
            let cached = ts.time_weighted_mean_cached(&mut cur, t(from), to);
            assert_eq!(
                naive.map(f64::to_bits),
                cached.map(f64::to_bits),
                "window [{from}, {from}+17]"
            );
            assert_eq!(
                ts.value_at(t(from), -1.0).to_bits(),
                ts.value_at_cached(&mut cur, t(from), -1.0).to_bits()
            );
        }
    }

    #[test]
    fn ring_retention_bounds_memory_and_keeps_the_tail() {
        let mut ts = TimeSeries::with_retention(Retention::Ring(10));
        for i in 0..1000u64 {
            ts.record(t(i), i as f64);
        }
        assert!(ts.len() < 20, "ring must stay bounded, got {}", ts.len());
        // The most recent samples survive verbatim.
        let pts = ts.points();
        assert_eq!(pts.last(), Some(&(t(999), 999.0)));
        assert!(pts.len() >= 10);
        assert_eq!(ts.value_at(t(999), -1.0), 999.0);
    }

    #[test]
    fn decimate_retention_bounds_memory_across_the_run() {
        let mut ts = TimeSeries::with_retention(Retention::Decimate(16));
        for i in 0..10_000u64 {
            ts.record(t(i), i as f64);
        }
        assert!(ts.len() <= 16, "decimation must cap storage: {}", ts.len());
        // Coverage spans the whole run: first retained point is early,
        // last is recent.
        let pts = ts.points();
        assert!(pts.first().unwrap().0 <= t(1024));
        assert!(pts.last().unwrap().0 >= t(8192));
    }

    #[test]
    fn moving_average_evicts_old_samples() {
        let mut ma = MovingAverage::new(SimDuration::from_secs(10));
        ma.record(t(0), 100.0);
        ma.record(t(5), 0.0);
        assert_eq!(ma.value(), Some(50.0));
        ma.record(t(20), 0.0); // the t=0 and t=5 samples fall out
        assert_eq!(ma.sample_count(), 1);
        assert_eq!(ma.value(), Some(0.0));
    }

    #[test]
    fn moving_average_keeps_window_inclusive() {
        let mut ma = MovingAverage::new(SimDuration::from_secs(10));
        ma.record(t(0), 4.0);
        ma.record(t(10), 2.0); // t=0 is exactly at the horizon: kept
        assert_eq!(ma.sample_count(), 2);
        assert_eq!(ma.value(), Some(3.0));
    }

    #[test]
    fn moving_average_ring_never_grows_in_steady_state() {
        // One sample per second into a 60 s window, pre-sized.
        let mut ma =
            MovingAverage::with_period(SimDuration::from_secs(60), SimDuration::from_secs(1));
        let cap = ma.capacity();
        for i in 0..10_000u64 {
            ma.record(t(i), (i % 7) as f64);
        }
        assert_eq!(ma.capacity(), cap, "steady-state recording must not grow");
        assert_eq!(ma.sample_count(), 61);
    }

    #[test]
    fn moving_average_ring_wraps_across_eviction_boundaries() {
        let mut ma = MovingAverage::new(SimDuration::from_secs(5));
        for i in 0..100u64 {
            ma.record(t(i), i as f64);
            // In-window mean of {i-5..=i} clipped at 0.
            let lo = i.saturating_sub(5);
            let expect = (lo..=i).map(|x| x as f64).sum::<f64>() / (i - lo + 1) as f64;
            assert!((ma.value().unwrap() - expect).abs() < 1e-9, "at t={i}");
        }
    }

    #[test]
    fn utilization_tracker_windows() {
        let mut u = UtilizationTracker::new();
        u.set_busy(t(0));
        u.set_idle(t(5));
        assert!((u.sample(t(10)) - 0.5).abs() < 1e-9);
        // Second window: idle the whole time.
        assert_eq!(u.sample(t(20)), 0.0);
        // Busy across a sample boundary.
        u.set_busy(t(20));
        assert!((u.sample(t(30)) - 1.0).abs() < 1e-9);
        u.set_idle(t(35));
        assert!((u.sample(t(40)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_idempotent_transitions() {
        let mut u = UtilizationTracker::new();
        u.set_busy(t(0));
        u.set_busy(t(2)); // ignored, still busy since t=0
        u.set_idle(t(4));
        u.set_idle(t(6)); // ignored
        assert_eq!(u.busy_time(t(10)), SimDuration::from_secs(4));
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(SimDuration::from_millis(10));
        }
        for _ in 0..10 {
            h.record(SimDuration::from_millis(1000));
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean_ms() - 109.0).abs() < 1e-9);
        assert!(h.quantile_ms(0.5) <= 16.0);
        assert!(h.quantile_ms(0.99) >= 512.0);
        assert_eq!(h.max_ms(), 1000.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_millis(5));
        b.record(SimDuration::from_millis(50));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ms(), 50.0);
    }

    #[test]
    fn hub_roundtrip() {
        let mut hub = MetricsHub::new();
        hub.record_series("cpu", t(1), 0.5);
        hub.record_latency("latency", SimDuration::from_millis(100));
        hub.incr("requests", 3);
        assert_eq!(hub.series("cpu").unwrap().len(), 1);
        assert_eq!(hub.histogram("latency").unwrap().count(), 1);
        assert_eq!(hub.counter("requests"), 3);
        assert_eq!(hub.counter("missing"), 0);
        assert_eq!(hub.series_names(), vec!["cpu"]);
    }

    #[test]
    fn interned_ids_alias_names() {
        let mut hub = MetricsHub::new();
        let id = hub.series_id("cpu");
        assert_eq!(id, hub.series_id("cpu"));
        hub.record_series_id(id, t(1), 0.25);
        hub.record_series("cpu", t(2), 0.75);
        assert_eq!(hub.series("cpu").unwrap().len(), 2);

        let h = hub.histogram_id("lat");
        hub.record_latency_id(h, SimDuration::from_millis(10));
        assert_eq!(hub.histogram("lat").unwrap().count(), 1);

        let c = hub.counter_id("reqs");
        hub.incr_id(c, 2);
        hub.incr("reqs", 1);
        assert_eq!(hub.counter("reqs"), 3);
    }

    #[test]
    fn batch_records_at_one_instant() {
        let mut hub = MetricsHub::new();
        let a = hub.series_id("a");
        let b = hub.series_id("b");
        hub.record_series_batch(t(5), &[(a, 1.0), (b, 2.0)]);
        assert_eq!(hub.series("a").unwrap().points(), &[(t(5), 1.0)]);
        assert_eq!(hub.series("b").unwrap().points(), &[(t(5), 2.0)]);
    }
}
