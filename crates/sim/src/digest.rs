//! Stable outcome digests for simulation runs.
//!
//! The experiment harness certifies determinism by hashing each run's
//! observable trajectory (management journal, replica series, latency
//! series, final statistics) into a single `u64`. The hash must be stable
//! across platforms, worker counts and process runs, so it is a fixed
//! FNV-1a over explicitly encoded values — *not* `std::hash`, whose
//! `SipHash` keys and layout are unspecified.

/// Incremental FNV-1a (64-bit) hasher over typed values.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Creates a digest in its initial state.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` via its IEEE-754 bit pattern (bit-exact, so two
    /// digests agree only when the floats are identical).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a string, length-prefixed so concatenations can't collide
    /// with differently split inputs.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes())
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Convenience: digest of a single string.
pub fn digest_str(s: &str) -> u64 {
    let mut d = Digest::new();
    d.write_str(s);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Digest::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn order_and_type_sensitive() {
        let mut a = Digest::new();
        a.write_u64(1).write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new();
        c.write_str("ab").write_str("c");
        let mut d = Digest::new();
        d.write_str("a").write_str("bc");
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn floats_hash_by_bits() {
        let mut a = Digest::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Digest::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 in IEEE-754; the digest must notice.
        assert_ne!(a.finish(), b.finish());
        assert_eq!(digest_str("x"), digest_str("x"));
    }
}
