//! The pending-event set of the discrete-event kernel.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time are broken
//! by insertion order, which makes every simulation run fully deterministic
//! for a given seed and schedule of calls.
//!
//! # Implementation
//!
//! The queue is a hand-rolled min-heap of packed 16-byte `Copy` entries
//! `(time, seq·slot)` over a slab of payloads. Compared to the original
//! `BinaryHeap<Entry<T>> + HashSet<u64>` design this
//!
//! * keeps payloads out of the heap, so sift operations move 16-byte
//!   records instead of whole `(time, seq, (Addr, Msg))` entries,
//! * compares entries as a single `u128` key, so the min-child selection
//!   in the sift loops compiles branch-free,
//! * uses hole-based sifting (one move per level instead of a swap's
//!   three) and sifts root removals to the bottom before re-inserting the
//!   tail, as `std`'s `BinaryHeap` does,
//! * replaces the per-cancel/per-pop `HashSet` hashing with an O(1) flag
//!   in the slab slot, addressed directly by the token,
//! * recycles slots through an intrusive free list, so a steady-state run
//!   performs no per-event allocation once the high-water mark is reached.
//!
//! Cancellation stays *lazy*: [`EventQueue::cancel`] marks the slot and the
//! entry is dropped when it reaches the head of the heap — the standard DES
//! technique for timers that are frequently re-armed (e.g. the
//! processor-sharing CPU model re-arms its next-completion timer on every
//! arrival and departure). To bound the garbage a cancel-heavy workload can
//! accumulate, the queue *compacts* (filters cancelled entries and
//! re-heapifies in O(n)) whenever more than half of a non-trivial heap is
//! dead.

use crate::time::SimTime;

/// Token identifying a scheduled event, usable to cancel it.
///
/// Encodes the slab slot and its generation, so cancelling an event that
/// has already fired (and whose slot was recycled) is detected and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    fn new(slot: u32, generation: u32) -> Self {
        EventToken(((generation as u64) << 32) | slot as u64)
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Heap entry: ordering key plus the slab slot holding the payload, packed
/// into 16 bytes so four entries share a cache line.
///
/// `packed` holds `(seq << 32) | slot`. Sequence numbers are unique among
/// pending events (the queue renumbers before they can exceed 32 bits), so
/// comparing `packed` orders ties in time by insertion exactly as a
/// separate `seq` field would — the slot bits never decide.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    packed: u64,
}

impl HeapEntry {
    #[inline]
    fn new(time: SimTime, seq: u64, slot: u32) -> Self {
        HeapEntry {
            time,
            packed: (seq << 32) | slot as u64,
        }
    }
    /// Total order as a single scalar: `(time, seq, slot)` lexicographic.
    /// One u128 compare beats a short-circuiting tuple compare in the sift
    /// loops — the min-of-children selection compiles branch-free.
    #[inline]
    fn key(&self) -> u128 {
        ((self.time.as_micros() as u128) << 64) | self.packed as u128
    }
    #[inline]
    fn slot(&self) -> u32 {
        self.packed as u32
    }
}

enum Slot<T> {
    /// Free cell; holds the next free slot index (`NO_FREE` terminates),
    /// forming an intrusive free list with no side allocation.
    Vacant(u32),
    /// Live event payload.
    Occupied(T),
    /// Cancelled but not yet swept out of the heap.
    Cancelled,
}

/// One slab cell: payload state plus the generation tag that invalidates
/// stale tokens. Kept together so cancel/pop touch a single cache line.
struct SlotEntry<T> {
    generation: u32,
    state: Slot<T>,
}

/// Free-list terminator (the slab can never index 2^32 slots: the heap
/// would overflow memory long before).
const NO_FREE: u32 = u32::MAX;

/// Deterministic pending-event set with lazy cancellation.
pub struct EventQueue<T> {
    heap: Vec<HeapEntry>,
    slots: Vec<SlotEntry<T>>,
    free_head: u32,
    next_seq: u64,
    cancelled: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Compact when at least this many entries are in the heap and more than
/// half of them are cancelled.
const COMPACT_MIN: usize = 64;

/// Heap arity. The sift loops are written for any arity; benchmarks
/// (`BENCH_kernel.json`) put the binary layout ahead of 4- and 8-ary on
/// the kernel's steady-state churn pattern with these 16-byte entries.
const ARITY: usize = 2;

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free_head: NO_FREE,
            next_seq: 0,
            cancelled: 0,
        }
    }

    fn alloc_slot(&mut self, payload: T) -> u32 {
        if self.free_head != NO_FREE {
            let slot = self.free_head;
            let cell = &mut self.slots[slot as usize];
            match cell.state {
                Slot::Vacant(next) => self.free_head = next,
                _ => unreachable!("free list points at a live slot"),
            }
            cell.state = Slot::Occupied(payload);
            slot
        } else {
            self.slots.push(SlotEntry {
                generation: 0,
                state: Slot::Occupied(payload),
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, slot: u32) {
        let next = self.free_head;
        let cell = &mut self.slots[slot as usize];
        cell.state = Slot::Vacant(next);
        cell.generation = cell.generation.wrapping_add(1);
        self.free_head = slot;
    }

    /// Schedules `payload` at `time`, returning a cancellation token.
    pub fn push(&mut self, time: SimTime, payload: T) -> EventToken {
        if self.next_seq > u32::MAX as u64 {
            self.renumber();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(payload);
        let token = EventToken::new(slot, self.slots[slot as usize].generation);
        self.heap.push(HeapEntry::new(time, seq, slot));
        self.sift_up(self.heap.len() - 1);
        token
    }

    /// Reassigns pending sequence numbers to `0..n` in key order, so `seq`
    /// keeps fitting in 32 bits no matter how many events a run schedules.
    /// The remap is monotone in the old key, so relative order — and hence
    /// determinism — is untouched, and the heap property is preserved
    /// in place.
    fn renumber(&mut self) {
        let mut order: Vec<u32> = (0..self.heap.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.heap[i as usize].key());
        for (new_seq, &i) in order.iter().enumerate() {
            let e = &mut self.heap[i as usize];
            *e = HeapEntry::new(e.time, new_seq as u64, e.slot());
        }
        self.next_seq = self.heap.len() as u64;
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        let idx = token.slot() as usize;
        if idx >= self.slots.len() || self.slots[idx].generation != token.generation() {
            return;
        }
        if matches!(self.slots[idx].state, Slot::Occupied(_)) {
            self.slots[idx].state = Slot::Cancelled;
            self.cancelled += 1;
            if self.cancelled * 2 > self.heap.len() && self.heap.len() >= COMPACT_MIN {
                self.compact();
            }
        }
    }

    /// Pops the earliest non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        loop {
            let head = *self.heap.first()?;
            self.remove_root();
            let slot = head.slot();
            let next_free = self.free_head;
            let cell = &mut self.slots[slot as usize];
            let state = std::mem::replace(&mut cell.state, Slot::Vacant(next_free));
            cell.generation = cell.generation.wrapping_add(1);
            self.free_head = slot;
            match state {
                Slot::Occupied(payload) => return Some((head.time, payload)),
                Slot::Cancelled => self.cancelled -= 1,
                Slot::Vacant(_) => unreachable!("heap entry points at vacant slot"),
            }
        }
    }

    /// Time of the earliest non-cancelled event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let head = *self.heap.first()?;
            if matches!(self.slots[head.slot() as usize].state, Slot::Cancelled) {
                self.remove_root();
                self.cancelled -= 1;
                self.free_slot(head.slot());
                continue;
            }
            return Some(head.time);
        }
    }

    /// Number of events still in the heap (cancelled-but-unswept events
    /// included; use only as a capacity heuristic).
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled
    }

    /// True when no live event remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops cancelled entries and restores the heap property in O(n).
    fn compact(&mut self) {
        let mut heap = std::mem::take(&mut self.heap);
        let mut kept = Vec::with_capacity(heap.len() - self.cancelled);
        for entry in heap.drain(..) {
            match self.slots[entry.slot() as usize].state {
                Slot::Cancelled => self.free_slot(entry.slot()),
                Slot::Occupied(_) => kept.push(entry),
                Slot::Vacant(_) => unreachable!("heap entry points at vacant slot"),
            }
        }
        self.heap = kept;
        self.cancelled = 0;
        // Floyd heapify: sift down every non-leaf node, bottom-up.
        if self.heap.len() > 1 {
            let last_parent = (self.heap.len() - 2) / ARITY;
            for i in (0..=last_parent).rev() {
                self.sift_down(i);
            }
        }
    }

    /// Index of the smallest child of `hole`, or `None` for a leaf.
    #[inline]
    fn min_child(&self, hole: usize, n: usize) -> Option<usize> {
        let first = ARITY * hole + 1;
        if first >= n {
            return None;
        }
        // One slice bound check; the iteration itself is check-free.
        let children = &self.heap[first..(first + ARITY).min(n)];
        let mut best = first;
        let mut best_key = children[0].key();
        for (off, c) in children.iter().enumerate().skip(1) {
            let k = c.key();
            if k < best_key {
                best = first + off;
                best_key = k;
            }
        }
        Some(best)
    }

    /// Removes the root entry, restoring the heap property. Sifts the hole
    /// to the bottom level first and re-inserts the tail entry there: root
    /// removals almost always send the tail back near the bottom, so this
    /// does one move per level instead of a three-move swap plus a compare
    /// against the tail's key.
    fn remove_root(&mut self) {
        let tail = self.heap.pop().expect("remove_root on empty heap");
        if self.heap.is_empty() {
            return;
        }
        let n = self.heap.len();
        let mut hole = 0;
        while let Some(child) = self.min_child(hole, n) {
            self.heap[hole] = self.heap[child];
            hole = child;
        }
        self.heap[hole] = tail;
        self.sift_up(hole);
    }

    fn sift_up(&mut self, mut hole: usize) {
        let entry = self.heap[hole];
        let key = entry.key();
        while hole > 0 {
            let parent = (hole - 1) / ARITY;
            if key < self.heap[parent].key() {
                self.heap[hole] = self.heap[parent];
                hole = parent;
            } else {
                break;
            }
        }
        self.heap[hole] = entry;
    }

    fn sift_down(&mut self, mut hole: usize) {
        let entry = self.heap[hole];
        let key = entry.key();
        let n = self.heap.len();
        while let Some(child) = self.min_child(hole, n) {
            if self.heap[child].key() < key {
                self.heap[hole] = self.heap[child];
                hole = child;
            } else {
                break;
            }
        }
        self.heap[hole] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_drops_events() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        q.cancel(tok);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), 1u8);
        assert!(q.pop().is_some());
        q.cancel(tok); // must not affect future events
        q.push(SimTime::from_secs(2), 2u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
    }

    #[test]
    fn cancel_after_fire_does_not_kill_recycled_slot() {
        let mut q = EventQueue::new();
        let stale = q.push(SimTime::from_secs(1), 1u8);
        assert!(q.pop().is_some());
        // The popped slot is recycled for the next push.
        let _fresh = q.push(SimTime::from_secs(2), 2u8);
        q.cancel(stale); // generation mismatch: must be a no-op
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), 1u8);
        q.push(SimTime::from_secs(2), 2u8);
        q.cancel(tok);
        q.cancel(tok);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let t1 = q.push(SimTime::from_secs(1), 1u8);
        let t2 = q.push(SimTime::from_secs(2), 2u8);
        q.push(SimTime::from_secs(3), 3u8);
        q.cancel(t1);
        q.cancel(t2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3u8)));
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_preserves_order_and_tokens() {
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        let mut tokens = Vec::new();
        for i in 0..500u64 {
            let tok = q.push(SimTime::from_micros(1_000 - i), i);
            if i % 3 == 0 {
                live.push((1_000 - i, i));
            } else {
                tokens.push(tok);
            }
        }
        // Cancelling 2/3 of the heap forces at least one compaction.
        for tok in tokens {
            q.cancel(tok);
        }
        assert_eq!(q.len(), live.len());
        assert!(q.raw_len() < 500, "compaction must have swept the heap");
        live.sort_unstable();
        let mut popped = Vec::new();
        while let Some((t, v)) = q.pop() {
            popped.push((t.as_micros(), v));
        }
        assert_eq!(popped, live);
    }

    #[test]
    fn renumbering_preserves_order_and_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        // Ties in time, plus earlier and later events, pushed interleaved.
        q.push(SimTime::from_secs(9), 90u64);
        for i in 0..50u64 {
            q.push(t, i);
        }
        q.push(SimTime::from_secs(1), 10u64);
        // Force the seq-overflow path directly.
        q.renumber();
        assert_eq!(q.next_seq, 52);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 10u64)));
        for i in 0..50u64 {
            assert_eq!(q.pop(), Some((t, i)), "FIFO tie order must survive");
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(9), 90u64)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..10 {
                q.push(SimTime::from_micros(round * 10 + i), i);
            }
            for _ in 0..10 {
                q.pop().unwrap();
            }
        }
        // The slab never needs to exceed the high-water mark of 10.
        assert!(q.slots.len() <= 10, "slab grew to {}", q.slots.len());
    }
}
