//! The pending-event set of the discrete-event kernel.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time are broken
//! by insertion order, which makes every simulation run fully deterministic
//! for a given seed and schedule of calls.
//!
//! Cancellation is *lazy*: [`EventQueue::cancel`] marks a token and the event
//! is dropped when it reaches the head of the heap. This is the standard DES
//! technique for timers that are frequently re-armed (e.g. the
//! processor-sharing CPU model re-arms its next-completion timer on every
//! arrival and departure).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Token identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic pending-event set with lazy cancellation.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`, returning a cancellation token.
    pub fn push(&mut self, time: SimTime, payload: T) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        EventToken(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        self.cancelled.insert(token.0);
    }

    /// Pops the earliest non-cancelled event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest non-cancelled event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let head = self.heap.peek()?;
            if self.cancelled.contains(&head.seq) {
                let seq = head.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(head.time);
        }
    }

    /// Number of events still in the heap (cancelled-but-unswept events
    /// included; use only as a capacity heuristic).
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live event remains.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_drops_events() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        q.cancel(tok);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), 1u8);
        assert!(q.pop().is_some());
        q.cancel(tok); // must not affect future events
        q.push(SimTime::from_secs(2), 2u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let t1 = q.push(SimTime::from_secs(1), 1u8);
        let t2 = q.push(SimTime::from_secs(2), 2u8);
        q.push(SimTime::from_secs(3), 3u8);
        q.cancel(t1);
        q.cancel(t2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3u8)));
        assert!(q.is_empty());
    }
}
