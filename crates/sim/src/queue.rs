//! The pending-event set of the discrete-event kernel.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time are broken
//! by insertion order, which makes every simulation run fully deterministic
//! for a given seed and schedule of calls.
//!
//! # Implementation
//!
//! The queue is a hand-rolled min-heap of packed 16-byte `Copy` entries
//! `(time, seq·slot)` over a slab of payloads. Compared to the original
//! `BinaryHeap<Entry<T>> + HashSet<u64>` design this
//!
//! * keeps payloads out of the heap, so sift operations move 16-byte
//!   records instead of whole `(time, seq, (Addr, Msg))` entries,
//! * compares entries as a single `u128` key, so the min-child selection
//!   in the sift loops compiles branch-free,
//! * uses hole-based sifting (one move per level instead of a swap's
//!   three) and sifts root removals to the bottom before re-inserting the
//!   tail, as `std`'s `BinaryHeap` does,
//! * replaces the per-cancel/per-pop `HashSet` hashing with an O(1) flag
//!   in the slab slot, addressed directly by the token,
//! * recycles slots through an intrusive free list, so a steady-state run
//!   performs no per-event allocation once the high-water mark is reached.
//!
//! Cancellation stays *lazy*: [`EventQueue::cancel`] marks the slot and the
//! entry is dropped when it reaches the head of the heap — the standard DES
//! technique for timers that are frequently re-armed (e.g. the
//! processor-sharing CPU model re-arms its next-completion timer on every
//! arrival and departure). To bound the garbage a cancel-heavy workload can
//! accumulate, the queue *compacts* (filters cancelled entries and
//! re-heapifies in O(n)) whenever more than half of a non-trivial heap is
//! dead.
//!
//! # Coarse deadlines
//!
//! [`EventQueue::push_coarse`] routes an event to a hierarchical timer
//! wheel (see [`crate::wheel`]) instead of the heap: O(1) insert and
//! cancel regardless of how many timers are resident, which is what
//! million-client think-time and patience timers need. The wheel is
//! *exact* — entries fire at their precise microsecond timestamp — and it
//! shares this queue's payload slab, token generations, and the single
//! global sequence counter, so heap and wheel events at the same instant
//! interleave by insertion order exactly as if both sat in one heap.
//! Which structure held a timer is unobservable to the simulation; only
//! the constant factors differ.

// jade-audit: allow-file(hot-panic): hand-audited slab/heap core — every
// index is a heap position < heap.len() maintained by the sift loops, a
// slot id minted by alloc_slot, or a wheel node id owned by the free list;
// the expect()s assert the heap-nonempty invariant established by the
// caller on the preceding line.
use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::collections::VecDeque;

/// Token identifying a scheduled event, usable to cancel it.
///
/// Encodes the slab slot and its generation, so cancelling an event that
/// has already fired (and whose slot was recycled) is detected and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    fn new(slot: u32, generation: u32) -> Self {
        EventToken(((generation as u64) << 32) | slot as u64)
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Heap entry: ordering key plus the slab slot holding the payload, packed
/// into 16 bytes so four entries share a cache line.
///
/// `packed` holds `(seq << 32) | slot`. Sequence numbers are unique among
/// pending events (the queue renumbers before they can exceed 32 bits), so
/// comparing `packed` orders ties in time by insertion exactly as a
/// separate `seq` field would — the slot bits never decide.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    packed: u64,
}

impl HeapEntry {
    #[inline]
    fn new(time: SimTime, seq: u64, slot: u32) -> Self {
        HeapEntry {
            time,
            packed: (seq << 32) | slot as u64,
        }
    }
    /// Total order as a single scalar: `(time, seq, slot)` lexicographic.
    /// One u128 compare beats a short-circuiting tuple compare in the sift
    /// loops — the min-of-children selection compiles branch-free.
    #[inline]
    fn key(&self) -> u128 {
        ((self.time.as_micros() as u128) << 64) | self.packed as u128
    }
    #[inline]
    fn slot(&self) -> u32 {
        self.packed as u32
    }
}

enum Slot<T> {
    /// Free cell; holds the next free slot index (`NO_FREE` terminates),
    /// forming an intrusive free list with no side allocation.
    Vacant(u32),
    /// Live event payload.
    Occupied(T),
    /// Cancelled but not yet swept out of the heap.
    Cancelled,
}

/// One slab cell: payload state plus the generation tag that invalidates
/// stale tokens. Kept together so cancel/pop touch a single cache line.
/// `coarse` records whether the pending entry lives on the wheel rather
/// than the heap, so `cancel` maintains the right garbage counter.
struct SlotEntry<T> {
    generation: u32,
    coarse: bool,
    state: Slot<T>,
}

/// Free-list terminator (the slab can never index 2^32 slots: the heap
/// would overflow memory long before).
const NO_FREE: u32 = u32::MAX;

/// Deterministic pending-event set with lazy cancellation.
pub struct EventQueue<T> {
    heap: Vec<HeapEntry>,
    slots: Vec<SlotEntry<T>>,
    free_head: u32,
    next_seq: u64,
    /// Cancelled-but-unswept entries in the heap.
    cancelled: usize,
    /// Coarse-deadline side: the wheel plus the drain buffer holding the
    /// current minimal wheel timestamp's entries, sorted by seq.
    wheel: TimerWheel,
    ready: VecDeque<u64>,
    ready_time: SimTime,
    /// Cancelled-but-unswept entries on the wheel/ready side.
    wheel_cancelled: usize,
    /// Scratch for wheel drains, reused across calls.
    drain_scratch: Vec<(u64, u64)>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Compact when at least this many entries are in the heap and more than
/// half of them are cancelled.
const COMPACT_MIN: usize = 64;

/// Heap arity. The sift loops are written for any arity; benchmarks
/// (`BENCH_kernel.json`) put the binary layout ahead of 4- and 8-ary on
/// the kernel's steady-state churn pattern with these 16-byte entries.
const ARITY: usize = 2;

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free_head: NO_FREE,
            next_seq: 0,
            cancelled: 0,
            wheel: TimerWheel::new(),
            ready: VecDeque::new(),
            ready_time: SimTime::ZERO,
            wheel_cancelled: 0,
            drain_scratch: Vec::new(),
        }
    }

    // jade-audit: allow(unbounded-growth): the slot slab grows to the
    // run's high-water mark of concurrently pending events and is then
    // recycled through the free list (free_slot pushes retired ids onto
    // free_head; the Vacant arm above pops them).
    fn alloc_slot(&mut self, payload: T) -> u32 {
        if self.free_head != NO_FREE {
            let slot = self.free_head;
            let cell = &mut self.slots[slot as usize];
            match cell.state {
                Slot::Vacant(next) => self.free_head = next,
                _ => unreachable!("free list points at a live slot"),
            }
            cell.state = Slot::Occupied(payload);
            cell.coarse = false;
            slot
        } else {
            self.slots.push(SlotEntry {
                generation: 0,
                coarse: false,
                state: Slot::Occupied(payload),
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, slot: u32) {
        let next = self.free_head;
        let cell = &mut self.slots[slot as usize];
        cell.state = Slot::Vacant(next);
        cell.generation = cell.generation.wrapping_add(1);
        self.free_head = slot;
    }

    /// Schedules `payload` at `time`, returning a cancellation token.
    pub fn push(&mut self, time: SimTime, payload: T) -> EventToken {
        if self.next_seq > u32::MAX as u64 {
            self.renumber();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(payload);
        let token = EventToken::new(slot, self.slots[slot as usize].generation);
        self.heap.push(HeapEntry::new(time, seq, slot));
        self.sift_up(self.heap.len() - 1);
        token
    }

    /// Schedules `payload` at `time` on the timer wheel: O(1) insert and
    /// cancel independent of the resident-timer population, at the cost
    /// of amortized cascade work as the deadline approaches. Semantics
    /// are identical to [`EventQueue::push`] — exact fire time, shared
    /// seq ordering against heap events at the same instant, and a token
    /// with the same cancel/reuse behaviour. Use it for coarse deadlines
    /// (think times, patience timers, periodic ticks) that dominate the
    /// pending set at scale; keep precise, short-lived completions on
    /// the heap.
    // jade-audit: allow(unbounded-growth): wheel nodes are recycled
    // through the wheel's own free list when a timer fires or is
    // cancelled (TimerWheel::free); residency is bounded by the number
    // of concurrently armed timers, not by run length.
    pub fn push_coarse(&mut self, time: SimTime, payload: T) -> EventToken {
        if time.as_micros() < self.wheel.cursor() {
            // The wheel cannot hold entries behind its cursor (possible
            // when a caller schedules against a clock that lags a peek).
            // The heap can, and the two are observably identical.
            return self.push(time, payload);
        }
        if self.next_seq > u32::MAX as u64 {
            self.renumber();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(payload);
        let cell = &mut self.slots[slot as usize];
        cell.coarse = true;
        let token = EventToken::new(slot, cell.generation);
        self.wheel.push(time.as_micros(), (seq << 32) | slot as u64);
        token
    }

    /// Reassigns pending sequence numbers to `0..n` in key order — across
    /// the heap, the wheel, and the wheel's drain buffer jointly — so
    /// `seq` keeps fitting in 32 bits no matter how many events a run
    /// schedules. The remap is monotone in the old global key, so
    /// relative order — and hence determinism — is untouched, and the
    /// heap property is preserved in place.
    // jade-audit: allow(hot-alloc): runs once per 2^32 scheduled events
    // (sequence-counter wrap), amortized to nothing per event.
    fn renumber(&mut self) {
        enum Src {
            Heap(u32),
            Node(u32),
            Over(u32),
            Ready(u32),
        }
        let key_of = |time: u64, packed: u64| ((time as u128) << 64) | packed as u128;
        let mut all: Vec<(u128, Src)> =
            Vec::with_capacity(self.heap.len() + self.wheel.len() + self.ready.len());
        for (i, e) in self.heap.iter().enumerate() {
            all.push((e.key(), Src::Heap(i as u32)));
        }
        for (i, n) in self.wheel.nodes.iter().enumerate() {
            if n.live {
                all.push((key_of(n.time, n.packed), Src::Node(i as u32)));
            }
        }
        for (i, &(t, p)) in self.wheel.overflow.iter().enumerate() {
            all.push((key_of(t, p), Src::Over(i as u32)));
        }
        for (i, &p) in self.ready.iter().enumerate() {
            all.push((key_of(self.ready_time.as_micros(), p), Src::Ready(i as u32)));
        }
        all.sort_unstable_by_key(|&(k, _)| k);
        for (new_seq, (_, src)) in all.iter().enumerate() {
            let reseq = |packed: u64| ((new_seq as u64) << 32) | (packed & u32::MAX as u64);
            match *src {
                Src::Heap(i) => {
                    let e = &mut self.heap[i as usize];
                    *e = HeapEntry::new(e.time, new_seq as u64, e.slot());
                }
                Src::Node(i) => {
                    let n = &mut self.wheel.nodes[i as usize];
                    n.packed = reseq(n.packed);
                }
                Src::Over(i) => {
                    let o = &mut self.wheel.overflow[i as usize];
                    o.1 = reseq(o.1);
                }
                Src::Ready(i) => {
                    let p = &mut self.ready[i as usize];
                    *p = reseq(*p);
                }
            }
        }
        self.next_seq = all.len() as u64;
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        let idx = token.slot() as usize;
        if idx >= self.slots.len() || self.slots[idx].generation != token.generation() {
            return;
        }
        if matches!(self.slots[idx].state, Slot::Cancelled) {
            return;
        }
        if self.slots[idx].coarse {
            self.slots[idx].state = Slot::Cancelled;
            self.wheel_cancelled += 1;
            return;
        }
        if matches!(self.slots[idx].state, Slot::Occupied(_)) {
            self.slots[idx].state = Slot::Cancelled;
            self.cancelled += 1;
            if self.cancelled * 2 > self.heap.len() && self.heap.len() >= COMPACT_MIN {
                self.compact();
            }
        }
    }

    /// Refills the wheel's drain buffer: advances the wheel (cascading
    /// and draining buckets) until either the minimal wheel timestamp's
    /// entries sit in `ready` sorted by seq, the wheel is exhausted, or
    /// the wheel provably cannot beat the current heap head. Cancelled
    /// entries are swept as they surface.
    fn fill_ready(&mut self) {
        while self.ready.is_empty() && !self.wheel.is_empty() {
            // A cancelled heap head only makes this bound conservative:
            // the pop/peek loop removes it and comes back here.
            let bound = self.heap.first().map(|e| e.time.as_micros());
            match self.wheel.next_candidate() {
                Some(cand) if bound.is_none_or(|b| cand <= b) => {
                    self.drain_scratch.clear();
                    self.wheel.advance_once(&mut self.drain_scratch);
                    if self.drain_scratch.is_empty() {
                        continue; // cascaded or migrated; keep advancing
                    }
                    self.drain_scratch.sort_unstable_by_key(|&(_, p)| p);
                    self.ready_time = SimTime::from_micros(self.drain_scratch[0].0);
                    let scratch = std::mem::take(&mut self.drain_scratch);
                    for &(_, p) in &scratch {
                        if matches!(self.slots[p as u32 as usize].state, Slot::Cancelled) {
                            self.wheel_cancelled -= 1;
                            self.free_slot(p as u32);
                        } else {
                            self.ready.push_back(p);
                        }
                    }
                    self.drain_scratch = scratch;
                }
                _ => break,
            }
        }
    }

    /// Pops the earliest non-cancelled event, merging the heap with the
    /// wheel: ties in time resolve by the shared insertion seq.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Pops the earliest non-cancelled event only if it fires at or
    /// before `horizon`; a live event beyond the horizon stays resident
    /// and `None` is returned. Cancelled entries are swept regardless of
    /// their time, so a `None` with [`EventQueue::is_empty`] false means
    /// the next live event is strictly past the horizon. This fuses the
    /// engine's former peek-then-pop pair into one traversal per event.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, T)> {
        loop {
            self.fill_ready();
            let take_wheel = match (self.ready.front(), self.heap.first()) {
                (None, None) => return None,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(&p), Some(h)) => {
                    (((self.ready_time.as_micros() as u128) << 64) | p as u128) < h.key()
                }
            };
            if take_wheel {
                let p = *self.ready.front().expect("checked non-empty");
                let slot = p as u32;
                if self.ready_time > horizon
                    && matches!(self.slots[slot as usize].state, Slot::Occupied(_))
                {
                    return None;
                }
                self.ready.pop_front();
                let next_free = self.free_head;
                let cell = &mut self.slots[slot as usize];
                let state = std::mem::replace(&mut cell.state, Slot::Vacant(next_free));
                cell.generation = cell.generation.wrapping_add(1);
                self.free_head = slot;
                match state {
                    Slot::Occupied(payload) => return Some((self.ready_time, payload)),
                    // fill_ready sweeps entries cancelled before the
                    // drain; this one was cancelled while in `ready`.
                    Slot::Cancelled => self.wheel_cancelled -= 1,
                    Slot::Vacant(_) => unreachable!("ready entry points at vacant slot"),
                }
            } else {
                let head = *self.heap.first().expect("checked non-empty");
                let slot = head.slot();
                if head.time > horizon
                    && matches!(self.slots[slot as usize].state, Slot::Occupied(_))
                {
                    return None;
                }
                self.remove_root();
                let next_free = self.free_head;
                let cell = &mut self.slots[slot as usize];
                let state = std::mem::replace(&mut cell.state, Slot::Vacant(next_free));
                cell.generation = cell.generation.wrapping_add(1);
                self.free_head = slot;
                match state {
                    Slot::Occupied(payload) => return Some((head.time, payload)),
                    Slot::Cancelled => self.cancelled -= 1,
                    Slot::Vacant(_) => unreachable!("heap entry points at vacant slot"),
                }
            }
        }
    }

    /// Time of the earliest non-cancelled event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            if let Some(&head) = self.heap.first() {
                if matches!(self.slots[head.slot() as usize].state, Slot::Cancelled) {
                    self.remove_root();
                    self.cancelled -= 1;
                    self.free_slot(head.slot());
                    continue;
                }
            }
            self.fill_ready();
            let mut swept_ready = false;
            while let Some(&p) = self.ready.front() {
                if matches!(self.slots[p as u32 as usize].state, Slot::Cancelled) {
                    self.ready.pop_front();
                    self.wheel_cancelled -= 1;
                    self.free_slot(p as u32);
                    swept_ready = true;
                } else {
                    break;
                }
            }
            if swept_ready && self.ready.is_empty() && !self.wheel.is_empty() {
                // The whole drained batch turned out to be cancelled;
                // advance the wheel further. (Without the sweep check
                // this would spin: `fill_ready` legitimately leaves
                // `ready` empty when the heap head is earlier than any
                // wheel entry.)
                continue;
            }
            let heap_time = self.heap.first().map(|e| e.time);
            let wheel_time = if self.ready.is_empty() {
                None
            } else {
                Some(self.ready_time)
            };
            return match (heap_time, wheel_time) {
                (None, None) => None,
                (Some(t), None) | (None, Some(t)) => Some(t),
                (Some(a), Some(b)) => Some(a.min(b)),
            };
        }
    }

    /// Number of events still resident (cancelled-but-unswept events
    /// included; use only as a capacity heuristic).
    pub fn raw_len(&self) -> usize {
        self.heap.len() + self.wheel.len() + self.ready.len()
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled + self.wheel.len() + self.ready.len()
            - self.wheel_cancelled
    }

    /// True when no live event remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops cancelled entries and restores the heap property in O(n).
    fn compact(&mut self) {
        let mut heap = std::mem::take(&mut self.heap);
        let mut kept = Vec::with_capacity(heap.len() - self.cancelled);
        for entry in heap.drain(..) {
            match self.slots[entry.slot() as usize].state {
                Slot::Cancelled => self.free_slot(entry.slot()),
                Slot::Occupied(_) => kept.push(entry),
                Slot::Vacant(_) => unreachable!("heap entry points at vacant slot"),
            }
        }
        self.heap = kept;
        self.cancelled = 0;
        // Floyd heapify: sift down every non-leaf node, bottom-up.
        if self.heap.len() > 1 {
            let last_parent = (self.heap.len() - 2) / ARITY;
            for i in (0..=last_parent).rev() {
                self.sift_down(i);
            }
        }
    }

    /// Index of the smallest child of `hole`, or `None` for a leaf.
    #[inline]
    fn min_child(&self, hole: usize, n: usize) -> Option<usize> {
        let first = ARITY * hole + 1;
        if first >= n {
            return None;
        }
        // One slice bound check; the iteration itself is check-free.
        let children = &self.heap[first..(first + ARITY).min(n)];
        let mut best = first;
        let mut best_key = children[0].key();
        for (off, c) in children.iter().enumerate().skip(1) {
            let k = c.key();
            if k < best_key {
                best = first + off;
                best_key = k;
            }
        }
        Some(best)
    }

    /// Removes the root entry, restoring the heap property. Sifts the hole
    /// to the bottom level first and re-inserts the tail entry there: root
    /// removals almost always send the tail back near the bottom, so this
    /// does one move per level instead of a three-move swap plus a compare
    /// against the tail's key.
    fn remove_root(&mut self) {
        let tail = self.heap.pop().expect("remove_root on empty heap");
        if self.heap.is_empty() {
            return;
        }
        let n = self.heap.len();
        let mut hole = 0;
        while let Some(child) = self.min_child(hole, n) {
            self.heap[hole] = self.heap[child];
            hole = child;
        }
        self.heap[hole] = tail;
        self.sift_up(hole);
    }

    fn sift_up(&mut self, mut hole: usize) {
        let entry = self.heap[hole];
        let key = entry.key();
        while hole > 0 {
            let parent = (hole - 1) / ARITY;
            if key < self.heap[parent].key() {
                self.heap[hole] = self.heap[parent];
                hole = parent;
            } else {
                break;
            }
        }
        self.heap[hole] = entry;
    }

    fn sift_down(&mut self, mut hole: usize) {
        let entry = self.heap[hole];
        let key = entry.key();
        let n = self.heap.len();
        while let Some(child) = self.min_child(hole, n) {
            if self.heap[child].key() < key {
                self.heap[hole] = self.heap[child];
                hole = child;
            } else {
                break;
            }
        }
        self.heap[hole] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn cancellation_drops_events() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        q.cancel(tok);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), 1u8);
        assert!(q.pop().is_some());
        q.cancel(tok); // must not affect future events
        q.push(SimTime::from_secs(2), 2u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
    }

    #[test]
    fn cancel_after_fire_does_not_kill_recycled_slot() {
        let mut q = EventQueue::new();
        let stale = q.push(SimTime::from_secs(1), 1u8);
        assert!(q.pop().is_some());
        // The popped slot is recycled for the next push.
        let _fresh = q.push(SimTime::from_secs(2), 2u8);
        q.cancel(stale); // generation mismatch: must be a no-op
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.push(SimTime::from_secs(1), 1u8);
        q.push(SimTime::from_secs(2), 2u8);
        q.cancel(tok);
        q.cancel(tok);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let t1 = q.push(SimTime::from_secs(1), 1u8);
        let t2 = q.push(SimTime::from_secs(2), 2u8);
        q.push(SimTime::from_secs(3), 3u8);
        q.cancel(t1);
        q.cancel(t2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3u8)));
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_preserves_order_and_tokens() {
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        let mut tokens = Vec::new();
        for i in 0..500u64 {
            let tok = q.push(SimTime::from_micros(1_000 - i), i);
            if i % 3 == 0 {
                live.push((1_000 - i, i));
            } else {
                tokens.push(tok);
            }
        }
        // Cancelling 2/3 of the heap forces at least one compaction.
        for tok in tokens {
            q.cancel(tok);
        }
        assert_eq!(q.len(), live.len());
        assert!(q.raw_len() < 500, "compaction must have swept the heap");
        live.sort_unstable();
        let mut popped = Vec::new();
        while let Some((t, v)) = q.pop() {
            popped.push((t.as_micros(), v));
        }
        assert_eq!(popped, live);
    }

    #[test]
    fn renumbering_preserves_order_and_fifo_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        // Ties in time, plus earlier and later events, pushed interleaved.
        q.push(SimTime::from_secs(9), 90u64);
        for i in 0..50u64 {
            q.push(t, i);
        }
        q.push(SimTime::from_secs(1), 10u64);
        // Force the seq-overflow path directly.
        q.renumber();
        assert_eq!(q.next_seq, 52);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 10u64)));
        for i in 0..50u64 {
            assert_eq!(q.pop(), Some((t, i)), "FIFO tie order must survive");
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(9), 90u64)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn coarse_and_precise_events_interleave_by_push_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(500);
        // Alternate structures at one instant: the shared seq counter
        // must make the structure choice unobservable.
        for i in 0..40u64 {
            if i % 2 == 0 {
                q.push(t, i);
            } else {
                q.push_coarse(t, i);
            }
        }
        q.push(SimTime::from_millis(400), 100);
        q.push_coarse(SimTime::from_millis(300), 200);
        assert_eq!(q.pop(), Some((SimTime::from_millis(300), 200)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(400), 100)));
        for i in 0..40u64 {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn coarse_cancellation_and_stale_tokens() {
        let mut q = EventQueue::new();
        let a = q.push_coarse(SimTime::from_secs(1), 1u8);
        let b = q.push_coarse(SimTime::from_secs(2), 2u8);
        q.push(SimTime::from_secs(3), 3u8);
        q.cancel(a);
        q.cancel(a); // double cancel is a no-op
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2u8)));
        q.cancel(b); // already fired: no-op
                     // b's recycled slot must not be killable through the stale token.
        let _fresh = q.push_coarse(SimTime::from_secs(4), 4u8);
        q.cancel(b);
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3u8)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(4), 4u8)));
        assert!(q.is_empty());
    }

    #[test]
    fn coarse_peek_matches_pop() {
        let mut q = EventQueue::new();
        let mut times = Vec::new();
        // Spread across wheel levels, with a few precise events mixed in.
        for i in 0..200u64 {
            let t = SimTime::from_micros((i * i * 37) % 5_000_000);
            if i % 5 == 0 {
                q.push(t, i);
            } else {
                q.push_coarse(t, i);
            }
            times.push(t);
        }
        times.sort_unstable();
        for expect in times {
            assert_eq!(q.peek_time(), Some(expect));
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, expect);
        }
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_skips_fully_cancelled_coarse_batches() {
        let mut q = EventQueue::new();
        let a = q.push_coarse(SimTime::from_secs(1), 1u8);
        let b = q.push_coarse(SimTime::from_secs(1), 2u8);
        q.push_coarse(SimTime::from_secs(5), 3u8);
        // Cancel the entire earliest batch after it may have drained.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 3u8)));
        assert!(q.is_empty());
    }

    #[test]
    fn renumbering_covers_the_wheel() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        q.push(SimTime::from_secs(9), 90u64);
        for i in 0..50u64 {
            if i % 2 == 0 {
                q.push_coarse(t, i);
            } else {
                q.push(t, i);
            }
        }
        q.push_coarse(SimTime::from_secs(1), 10u64);
        q.renumber();
        assert_eq!(q.next_seq, 52);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 10u64)));
        for i in 0..50u64 {
            assert_eq!(q.pop(), Some((t, i)), "FIFO tie order must survive");
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(9), 90u64)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn coarse_push_behind_cursor_falls_back_to_heap() {
        let mut q = EventQueue::new();
        q.push_coarse(SimTime::from_secs(10), 1u8);
        // Draining advances the wheel cursor to t=10s.
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1u8)));
        // An earlier coarse push must still fire at its exact time.
        q.push_coarse(SimTime::from_secs(4), 2u8);
        q.push_coarse(SimTime::from_secs(12), 3u8);
        assert_eq!(q.pop(), Some((SimTime::from_secs(4), 2u8)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(12), 3u8)));
    }

    #[test]
    fn pop_at_or_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1u8);
        q.push_coarse(SimTime::from_secs(2), 2u8);
        q.push(SimTime::from_secs(5), 5u8);
        // Horizon is inclusive; the t=5 event stays resident.
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), 1u8))
        );
        assert_eq!(
            q.pop_at_or_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(2), 2u8))
        );
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), 5u8)));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_at_or_before_sweeps_cancelled_entries_past_the_horizon() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(9), 9u8);
        let b = q.push_coarse(SimTime::from_secs(8), 8u8);
        q.cancel(a);
        q.cancel(b);
        // Both events are beyond the horizon but cancelled: the probe
        // sweeps them and reports the queue truly empty.
        assert_eq!(q.pop_at_or_before(SimTime::from_secs(1)), None);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pop_at_or_before_matches_pop_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(3);
        for i in 0..20u64 {
            if i % 2 == 0 {
                q.push(t, i);
            } else {
                q.push_coarse(t, i);
            }
        }
        // FIFO tie order through the horizon-bounded pop.
        for i in 0..20u64 {
            assert_eq!(q.pop_at_or_before(t), Some((t, i)));
        }
        assert_eq!(q.pop_at_or_before(t), None);
    }

    #[test]
    fn slots_are_recycled_without_growth() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..10 {
                q.push(SimTime::from_micros(round * 10 + i), i);
            }
            for _ in 0..10 {
                q.pop().unwrap();
            }
        }
        // The slab never needs to exceed the high-water mark of 10.
        assert!(q.slots.len() <= 10, "slab grew to {}", q.slots.len());
    }
}
