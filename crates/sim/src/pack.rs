//! Checked narrowing for id-like integers.
//!
//! The simulation packs ids aggressively — `SlabKey` and `RequestId`
//! carry `{generation, slot}` in one `u64`, tables and columns are dense
//! `u16` indices, servers and nodes dense `u32`s. The *packing modules*
//! ([`crate::slab`], [`crate::queue`], [`crate::cpu`], and jade-tiers'
//! `request`) are audited by hand and may use raw `as` truncation; every
//! other construction of an id from a wider integer must go through these
//! helpers, which panic loudly instead of silently wrapping when a
//! counter outgrows its id type (`jade-audit` rule `packing-cast`).
//!
//! The panic is deliberate: an id space overflowing is a capacity bug to
//! surface, not a value to wrap. The checks are two instructions and sit
//! on registration paths (new component, new table, new client), never in
//! per-event code.

/// Narrows an id-like integer to `u32`, panicking if it does not fit.
#[inline]
#[track_caller]
pub fn id_u32<T: TryInto<u32>>(n: T) -> u32 {
    n.try_into()
        .unwrap_or_else(|_| panic!("id out of u32 range"))
}

/// Narrows an id-like integer to `u16`, panicking if it does not fit.
#[inline]
#[track_caller]
pub fn id_u16<T: TryInto<u16>>(n: T) -> u16 {
    n.try_into()
        .unwrap_or_else(|_| panic!("id out of u16 range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(id_u32(7usize), 7);
        assert_eq!(id_u32(u32::MAX as usize), u32::MAX);
        assert_eq!(id_u16(9usize), 9);
        assert_eq!(id_u16(u16::MAX as u64), u16::MAX);
    }

    #[test]
    #[should_panic(expected = "id out of u32 range")]
    fn overflowing_u32_panics() {
        id_u32(u32::MAX as u64 + 1);
    }

    #[test]
    #[should_panic(expected = "id out of u16 range")]
    fn overflowing_u16_panics() {
        id_u16(1usize << 20);
    }
}
