//! Bounded simulation tracing.
//!
//! A [`Tracer`] records timestamped, categorized events into a ring
//! buffer. Tracing is off by default (a disabled tracer costs one branch
//! per call site) and is enabled per run for debugging or demonstration —
//! e.g. `run_experiment --trace` prints the tail of the management
//! plane's activity.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Severity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// High-volume detail (per-request steps).
    Debug,
    /// Notable occurrences (reconfigurations, failures detected).
    Info,
    /// Abnormal events (request failures, rejected operations).
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO ",
            TraceLevel::Warn => "WARN ",
        })
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Subsystem tag (e.g. `"manager"`, `"request"`, `"legacy"`).
    pub category: &'static str,
    /// Rendered message.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {} {:<8} {}",
            self.time.to_string(),
            self.level,
            self.category,
            self.message
        )
    }
}

/// Ring-buffer tracer.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    min_level: TraceLevel,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            min_level: TraceLevel::Info,
            capacity: 0,
            events: VecDeque::new(),
            recorded: 0,
            dropped: 0,
        }
    }

    /// A tracer keeping the last `capacity` events at or above
    /// `min_level`.
    pub fn enabled(capacity: usize, min_level: TraceLevel) -> Self {
        Tracer {
            enabled: true,
            min_level,
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.min(4096)),
            recorded: 0,
            dropped: 0,
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event. `message` is only materialized when the tracer
    /// is enabled and the level passes the filter — pass a closure.
    pub fn record(
        &mut self,
        time: SimTime,
        level: TraceLevel,
        category: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if !self.enabled || level < self.min_level {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            time,
            level,
            category,
            message: message(),
        });
        self.recorded += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events of one category.
    pub fn category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// `(recorded, dropped)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.recorded, self.dropped)
    }

    /// Renders the retained events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("({} earlier events dropped)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_formatting() {
        let mut tr = Tracer::disabled();
        let mut called = false;
        tr.record(t(1), TraceLevel::Warn, "x", || {
            called = true;
            "msg".into()
        });
        assert!(!called, "message closure must not run when disabled");
        assert_eq!(tr.counters(), (0, 0));
        assert_eq!(tr.events().count(), 0);
    }

    #[test]
    fn level_filter_applies() {
        let mut tr = Tracer::enabled(10, TraceLevel::Info);
        tr.record(t(1), TraceLevel::Debug, "x", || "d".into());
        tr.record(t(2), TraceLevel::Info, "x", || "i".into());
        tr.record(t(3), TraceLevel::Warn, "x", || "w".into());
        let msgs: Vec<&str> = tr.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["i", "w"]);
    }

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let mut tr = Tracer::enabled(3, TraceLevel::Debug);
        for i in 0..10 {
            tr.record(t(i), TraceLevel::Info, "x", || format!("e{i}"));
        }
        let msgs: Vec<&str> = tr.events().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["e7", "e8", "e9"]);
        assert_eq!(tr.counters(), (10, 7));
        assert!(tr.render().contains("7 earlier events dropped"));
    }

    #[test]
    fn category_filter() {
        let mut tr = Tracer::enabled(10, TraceLevel::Debug);
        tr.record(t(1), TraceLevel::Info, "manager", || "a".into());
        tr.record(t(2), TraceLevel::Info, "request", || "b".into());
        tr.record(t(3), TraceLevel::Info, "manager", || "c".into());
        assert_eq!(tr.category("manager").count(), 2);
        assert_eq!(tr.category("request").count(), 1);
    }

    #[test]
    fn rendering_includes_time_and_level() {
        let mut tr = Tracer::enabled(4, TraceLevel::Debug);
        tr.record(t(90), TraceLevel::Warn, "legacy", || {
            "server stopped".into()
        });
        let line = tr.render();
        assert!(line.contains("90.000s"), "{line}");
        assert!(line.contains("WARN"), "{line}");
        assert!(line.contains("legacy"), "{line}");
    }
}
