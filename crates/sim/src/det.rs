//! Deterministic hashing: the sanctioned replacement for
//! `std::collections`' default `RandomState`.
//!
//! `RandomState` seeds itself per process, so two runs of the same
//! simulation can place identical keys in different buckets. That is
//! harmless for pure lookups, but the moment a map is iterated the bucket
//! order leaks into results — and even for lookup-only maps it makes heap
//! layouts and profiles irreproducible. The workspace therefore bans the
//! default hasher in every crate that feeds a run digest (enforced by
//! `jade-audit`'s `nondet-hasher` rule) and uses these aliases instead.
//!
//! [`FxHasher`] is the fixed-seed multiply-rotate mix previously
//! duplicated by the storage engine's secondary indexes and the PS-CPU's
//! job index; both now share this one definition. It is an order of
//! magnitude cheaper than SipHash on the small keys (ids, interned
//! strings, column values) the simulation hashes, and — having no random
//! state — it hashes identically across runs, clones and platforms.
//!
//! Iterating a [`DetHashMap`]/[`DetHashSet`] is *still* unordered (bucket
//! order is hash order, not insertion order); the determinism contract
//! only guarantees the order is the *same* on every run. Code whose
//! iteration order reaches a digest must sort first or use a `BTreeMap`
//! (see the `unordered-iter` audit rule).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fixed multiplier of the fx mix (pushes entropy into the high bits,
/// which is where `HashMap`'s control bytes and bucket index come from).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Deterministic fx-style hasher: a fixed-seed multiply-rotate mix with
/// no per-process random state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(FX_SEED);
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`-constructible).
pub type DetState = BuildHasherDefault<FxHasher>;

/// `HashMap` with the deterministic hasher — the drop-in replacement for
/// a default-hashed `HashMap` in digest-feeding crates.
pub type DetHashMap<K, V> = HashMap<K, V, DetState>;

/// `HashSet` with the deterministic hasher.
pub type DetHashSet<T> = HashSet<T, DetState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_across_hasher_instances() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_and_u64_paths_mix() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn det_map_round_trips() {
        let mut m: DetHashMap<u64, &str> = DetHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: DetHashSet<u64> = DetHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
