//! Deterministic randomness for simulation runs.
//!
//! Every experiment owns one [`SimRng`] seeded from a `u64`, so runs are
//! exactly reproducible and parameter sweeps can share seeds across
//! configurations (common random numbers).
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna)
//! seeded through splitmix64 — no external crates, identical output on
//! every platform, and cheap to [`fork`](SimRng::fork) into independent
//! per-client or per-run streams.

/// splitmix64 step: used for seeding and for deriving fork seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable RNG with the distribution helpers the workload model needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives the seed for an independent stream of the same root seed:
    /// `stream_for(seed, i)` is stable across runs and independent of any
    /// draws made elsewhere — the harness uses it to give each run in a
    /// sweep its own stream while preserving common random numbers.
    pub fn stream_seed(root: u64, stream: u64) -> u64 {
        let mut sm = root ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
        splitmix64(&mut sm)
    }

    /// Next raw 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; used to give each client its
    /// own stream so adding clients does not perturb existing ones.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits -> the standard [0, 1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.range_u64(0, n as u64 - 1) as usize
    }

    /// Uniform integer in the inclusive range (unbiased via rejection).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full u64 range.
            return self.next_u64();
        }
        let zone = u64::MAX - (u64::MAX.wrapping_sub(span).wrapping_add(1)) % span;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return lo + x % span;
            }
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - u is in (0, 1], so ln() is finite and the result non-negative.
        let u = self.f64();
        -mean * (1.0 - u).ln()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// weights. Panics if all weights are zero or the slice is empty.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted() needs a positive total weight");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.f64(), b.f64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut r = SimRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn range_is_inclusive_and_unbiased_at_edges() {
        let mut r = SimRng::seed_from_u64(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            let x = r.range_u64(5, 8);
            assert!((5..=8).contains(&x));
            lo_seen |= x == 5;
            hi_seen |= x == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = SimRng::seed_from_u64(9);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::seed_from_u64(5);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        // Child streams must not be identical.
        let same = (0..32).filter(|_| c1.f64() == c2.f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_seeds_differ_per_stream_and_are_stable() {
        let a = SimRng::stream_seed(42, 0);
        let b = SimRng::stream_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, SimRng::stream_seed(42, 0));
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        SimRng::seed_from_u64(0).below(0);
    }
}
