//! Deterministic randomness for simulation runs.
//!
//! Every experiment owns one [`SimRng`] seeded from a `u64`, so runs are
//! exactly reproducible and parameter sweeps can share seeds across
//! configurations (common random numbers).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seedable RNG with the distribution helpers the workload model needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each client its
    /// own stream so adding clients does not perturb existing ones.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in the inclusive range.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Samples an index from a discrete distribution given by non-negative
    /// weights. Panics if all weights are zero or the slice is empty.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted() needs a positive total weight");
        let mut x = self.inner.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.f64(), b.f64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut r = SimRng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = SimRng::seed_from_u64(9);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SimRng::seed_from_u64(5);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        // Child streams must not be identical.
        let same = (0..32).filter(|_| c1.f64() == c2.f64()).count();
        assert!(same < 4);
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        SimRng::seed_from_u64(0).below(0);
    }
}
