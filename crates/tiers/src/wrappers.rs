//! Fractal wrappers for the J2EE legacy software (paper §3.2).
//!
//! Each wrapper implements the uniform management interface for one legacy
//! server and reflects control operations onto the [`LegacyLayer`]:
//! attribute writes rewrite the legacy configuration file, `bind`/`unbind`
//! rewrite connection descriptors (`worker.properties`, the PLB worker
//! list, the C-JDBC virtual-database descriptor), and `start`/`stop`
//! invoke the legacy start/stop procedures.
//!
//! The component carrying a wrapper must expose a `server-id` attribute
//! (set at deployment) so that wrappers can resolve binding targets to
//! legacy processes.

use crate::config::{render_cjdbc_xml, WorkerEntry};
use crate::config::{render_httpd_conf, render_my_cnf, render_plb_conf, render_worker_properties};
use crate::legacy::LegacyLayer;
use crate::server::{ServerId, ServerState};
use jade_fractal::{ArchView, AttrValue, ComponentId, Endpoint, FractalError, Wrapper};

type Result<T> = std::result::Result<T, FractalError>;

/// Resolves the legacy process behind a management component through its
/// `server-id` attribute.
pub fn server_id_of(view: &dyn ArchView, comp: ComponentId) -> Result<ServerId> {
    view.attr_of(comp, "server-id")
        .and_then(|v| v.as_int())
        .map(|i| ServerId(jade_sim::id_u32(i)))
        .ok_or_else(|| FractalError::Wrapper {
            reason: format!("component {comp:?} has no server-id attribute"),
        })
}

fn wrap_err(e: impl std::fmt::Display) -> FractalError {
    FractalError::Wrapper {
        reason: e.to_string(),
    }
}

/// Builds a [`WorkerEntry`] for a bound endpoint.
fn worker_entry(
    env: &LegacyLayer,
    view: &dyn ArchView,
    ep: &Endpoint,
    idx: usize,
) -> Result<WorkerEntry> {
    let sid = server_id_of(view, ep.component)?;
    let host = env.host_of(sid).map_err(wrap_err)?;
    let port = env.server(sid).map_err(wrap_err)?.port();
    let name = view
        .name_of(ep.component)
        .map(|n| n.to_string())
        .unwrap_or_else(|| format!("worker{idx}"));
    Ok(WorkerEntry { name, host, port })
}

fn validate_port(name: &str, value: &AttrValue) -> Result<()> {
    if name == "port" {
        match value.as_int() {
            Some(p) if (1..=65535).contains(&p) => Ok(()),
            _ => Err(FractalError::InvalidAttribute {
                attribute: name.to_owned(),
                reason: "port must be an integer in 1..=65535".into(),
            }),
        }
    } else {
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Apache
// ----------------------------------------------------------------------

/// Wrapper for an Apache web server. A modification of the `port`
/// attribute "is reflected in the httpd.conf file"; `bind` on the
/// `ajp-itf` interface rewrites `worker.properties` (paper §3.2).
#[derive(Debug, Clone, Copy)]
pub struct ApacheWrapper {
    /// The wrapped legacy process.
    pub server: ServerId,
}

impl ApacheWrapper {
    fn rewrite_httpd_conf(&self, env: &mut LegacyLayer) -> Result<()> {
        let (node, port, name) = {
            let s = env.server(self.server).map_err(wrap_err)?;
            (s.process().node, s.port(), s.process().name.clone())
        };
        let host = env.host_of(self.server).map_err(wrap_err)?;
        env.configs.write(
            node,
            "conf/httpd.conf",
            render_httpd_conf(&format!("{host}.{name}"), port, "/var/www"),
        );
        Ok(())
    }

    fn rewrite_workers(
        &self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
    ) -> Result<()> {
        let endpoints = view.bound_to(me, "ajp-itf");
        let entries: Vec<WorkerEntry> = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| worker_entry(env, view, ep, i))
            .collect::<Result<_>>()?;
        let worker_ids: Vec<ServerId> = endpoints
            .iter()
            .map(|ep| server_id_of(view, ep.component))
            .collect::<Result<_>>()?;
        let node = {
            // Keep mod_jk's in-memory worker set aligned with the file.
            match env.server_mut(self.server).map_err(wrap_err)? {
                crate::legacy::LegacyServer::Apache(a) => {
                    a.workers = worker_ids;
                    a.rr_cursor = 0;
                    a.process.node
                }
                other => other.process().node,
            }
        };
        env.configs.write(
            node,
            "conf/worker.properties",
            render_worker_properties(&entries),
        );
        Ok(())
    }
}

impl Wrapper<LegacyLayer> for ApacheWrapper {
    fn validate_attr(&self, name: &str, value: &AttrValue) -> Result<()> {
        validate_port(name, value)
    }

    fn on_set_attr(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
        name: &str,
        value: &AttrValue,
    ) -> Result<()> {
        if name == "port" {
            if let crate::legacy::LegacyServer::Apache(a) =
                env.server_mut(self.server).map_err(wrap_err)?
            {
                a.port = value.as_int().unwrap_or(80) as u16;
            }
            self.rewrite_httpd_conf(env)?;
        }
        Ok(())
    }

    fn on_bind(
        &mut self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        _target: &Endpoint,
    ) -> Result<()> {
        if client_itf == "ajp-itf" {
            self.rewrite_workers(env, view, me)?;
        }
        Ok(())
    }

    fn on_unbind(
        &mut self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        _target: &Endpoint,
    ) -> Result<()> {
        if client_itf == "ajp-itf" {
            self.rewrite_workers(env, view, me)?;
        }
        Ok(())
    }

    fn on_start(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.start_server(self.server).map_err(wrap_err)
    }

    fn on_stop(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.stop_server(self.server).map_err(wrap_err)
    }
}

// ----------------------------------------------------------------------
// Tomcat
// ----------------------------------------------------------------------

/// Wrapper for a Tomcat servlet server.
#[derive(Debug, Clone, Copy)]
pub struct TomcatWrapper {
    /// The wrapped legacy process.
    pub server: ServerId,
}

impl Wrapper<LegacyLayer> for TomcatWrapper {
    fn validate_attr(&self, name: &str, value: &AttrValue) -> Result<()> {
        validate_port(name, value)
    }

    fn on_set_attr(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
        name: &str,
        value: &AttrValue,
    ) -> Result<()> {
        if name == "port" {
            let port = value.as_int().unwrap_or(8098) as u16;
            let node = {
                let t = env.tomcat_mut(self.server).map_err(wrap_err)?;
                t.port = port;
                t.process.node
            };
            env.configs.write(
                node,
                "conf/server.xml",
                format!("<Server>\n  <Connector protocol=\"ajp13\" port=\"{port}\"/>\n</Server>\n"),
            );
        }
        Ok(())
    }

    fn on_start(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.start_server(self.server).map_err(wrap_err)
    }

    fn on_stop(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.stop_server(self.server).map_err(wrap_err)
    }
}

// ----------------------------------------------------------------------
// MySQL
// ----------------------------------------------------------------------

/// Wrapper for a MySQL server.
#[derive(Debug, Clone, Copy)]
pub struct MysqlWrapper {
    /// The wrapped legacy process.
    pub server: ServerId,
}

impl Wrapper<LegacyLayer> for MysqlWrapper {
    fn validate_attr(&self, name: &str, value: &AttrValue) -> Result<()> {
        validate_port(name, value)
    }

    fn on_set_attr(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
        name: &str,
        value: &AttrValue,
    ) -> Result<()> {
        if name == "port" {
            let port = value.as_int().unwrap_or(3306) as u16;
            let node = {
                let m = env.mysql_mut(self.server).map_err(wrap_err)?;
                m.port = port;
                m.process.node
            };
            env.configs
                .write(node, "etc/my.cnf", render_my_cnf(port, "/var/lib/mysql"));
        }
        Ok(())
    }

    fn on_start(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.start_server(self.server).map_err(wrap_err)
    }

    fn on_stop(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.stop_server(self.server).map_err(wrap_err)
    }
}

// ----------------------------------------------------------------------
// C-JDBC
// ----------------------------------------------------------------------

/// Wrapper for the C-JDBC controller. Binding its `backends` collection
/// interface to a MySQL component registers the replica and — when the
/// replica is already running — triggers state reconciliation through the
/// recovery log (paper §4.1). Unbinding disables and unregisters it.
#[derive(Debug, Clone, Copy)]
pub struct CjdbcWrapper {
    /// The wrapped legacy process.
    pub server: ServerId,
}

impl CjdbcWrapper {
    fn rewrite_descriptor(
        &self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
    ) -> Result<()> {
        let endpoints = view.bound_to(me, "backends");
        let entries: Vec<WorkerEntry> = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| worker_entry(env, view, ep, i))
            .collect::<Result<_>>()?;
        let node = env.server(self.server).map_err(wrap_err)?.process().node;
        env.configs
            .write(node, "conf/cjdbc.xml", render_cjdbc_xml("rubis", &entries));
        Ok(())
    }
}

impl Wrapper<LegacyLayer> for CjdbcWrapper {
    fn on_bind(
        &mut self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        target: &Endpoint,
    ) -> Result<()> {
        if client_itf != "backends" {
            return Ok(());
        }
        let backend = server_id_of(view, target.component)?;
        env.cjdbc_register_backend(self.server, backend)
            .map_err(wrap_err)?;
        // If the replica is already running, bring it into the cluster via
        // log replay; otherwise the deployer enables it after boot.
        if env
            .server(backend)
            .map_err(wrap_err)?
            .process()
            .state
            .is_running()
        {
            env.cjdbc_enable_backend(self.server, backend)
                .map_err(wrap_err)?;
        }
        self.rewrite_descriptor(env, view, me)
    }

    fn on_unbind(
        &mut self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        target: &Endpoint,
    ) -> Result<()> {
        if client_itf != "backends" {
            return Ok(());
        }
        let backend = server_id_of(view, target.component)?;
        // Unbinding removes the replica from the cluster but *keeps its
        // trace*: "removing a database replica is realized by keeping
        // trace of the state of this replica … stored as the index value
        // in the recovery log corresponding to the last write request
        // that it has executed before being disabled" (paper §4.1). A
        // later re-bind replays exactly the missed suffix. Destroying the
        // replica outright is the deployer's job
        // ([`LegacyLayer::cjdbc_unregister_backend`]).
        match env.cjdbc_backend_status(self.server, backend) {
            Ok(crate::cjdbc::BackendStatus::Active) => {
                let _ = env.cjdbc_disable_backend(self.server, backend);
            }
            Ok(crate::cjdbc::BackendStatus::Syncing) => {
                let _ = env.cjdbc_abort_enable(self.server, backend);
            }
            _ => {}
        }
        self.rewrite_descriptor(env, view, me)
    }

    fn on_start(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.start_server(self.server).map_err(wrap_err)
    }

    fn on_stop(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.stop_server(self.server).map_err(wrap_err)
    }
}

// ----------------------------------------------------------------------
// PLB / L4 switch
// ----------------------------------------------------------------------

/// Wrapper for an HTTP load balancer (PLB in front of Tomcat replicas, or
/// the L4 switch in front of Apache replicas). Binding the `workers`
/// collection interface adds a worker to the rotation.
#[derive(Debug, Clone, Copy)]
pub struct BalancerWrapper {
    /// The wrapped legacy process.
    pub server: ServerId,
}

impl BalancerWrapper {
    fn rewrite_conf(
        &self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
    ) -> Result<()> {
        let endpoints = view.bound_to(me, "workers");
        let entries: Vec<WorkerEntry> = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| worker_entry(env, view, ep, i))
            .collect::<Result<_>>()?;
        let (node, port) = {
            let s = env.server(self.server).map_err(wrap_err)?;
            (s.process().node, s.port())
        };
        env.configs
            .write(node, "etc/plb.conf", render_plb_conf(port, &entries));
        Ok(())
    }
}

impl Wrapper<LegacyLayer> for BalancerWrapper {
    fn on_bind(
        &mut self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        target: &Endpoint,
    ) -> Result<()> {
        if client_itf != "workers" {
            return Ok(());
        }
        let worker = server_id_of(view, target.component)?;
        env.balancer_mut(self.server)
            .map_err(wrap_err)?
            .add_worker(worker)
            .map_err(wrap_err)?;
        self.rewrite_conf(env, view, me)
    }

    fn on_unbind(
        &mut self,
        env: &mut LegacyLayer,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        target: &Endpoint,
    ) -> Result<()> {
        if client_itf != "workers" {
            return Ok(());
        }
        let worker = server_id_of(view, target.component)?;
        env.balancer_mut(self.server)
            .map_err(wrap_err)?
            .remove_worker(worker)
            .map_err(wrap_err)?;
        self.rewrite_conf(env, view, me)
    }

    fn on_start(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.start_server(self.server).map_err(wrap_err)
    }

    fn on_stop(
        &mut self,
        env: &mut LegacyLayer,
        _view: &dyn ArchView,
        _me: ComponentId,
    ) -> Result<()> {
        env.stop_server(self.server).map_err(wrap_err)
    }
}

/// Stops a legacy process when its component is declared failed, without
/// journaling a normal stop — used by tests and the repair manager to keep
/// component and process state aligned.
pub fn sync_failed_process(env: &mut LegacyLayer, server: ServerId) {
    if let Ok(s) = env.server_mut(server) {
        if s.process().state == ServerState::Running {
            s.process_mut().state = ServerState::Failed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::BalancePolicy;
    use crate::cjdbc::ReadPolicy;
    use crate::legacy::LegacyEvent;
    use jade_cluster::{ClusterManager, Network, NodeId, NodeSpec};
    use jade_cluster::{SoftwareInstallationService, SoftwareRepository};
    use jade_fractal::{InterfaceDecl, Registry};

    fn env(nodes: usize) -> LegacyLayer {
        let cluster = ClusterManager::homogeneous(nodes, NodeSpec::default(), 128);
        let sis = SoftwareInstallationService::new(SoftwareRepository::j2ee_catalogue());
        LegacyLayer::new(cluster, Network::lan_100mbps(), sis)
    }

    fn install(l: &mut LegacyLayer, node: NodeId, pkg: &str) {
        l.sis.install(&mut l.cluster, node, pkg).unwrap();
    }

    /// Reproduces the paper's §5.1 scenario: Apache1 bound to Tomcat1 is
    /// rebound to Tomcat2, through exactly the four management operations
    /// the paper lists.
    #[test]
    fn qualitative_rebind_scenario() {
        let mut legacy = env(3);
        for (n, pkg) in [(0, "apache"), (1, "tomcat"), (2, "tomcat")] {
            install(&mut legacy, NodeId(n), pkg);
        }
        let apache_s = legacy.create_apache("Apache1", NodeId(0));
        let tomcat1_s = legacy.create_tomcat("Tomcat1", NodeId(1));
        let tomcat2_s = legacy.create_tomcat("Tomcat2", NodeId(2));

        let mut reg: Registry<LegacyLayer> = Registry::new();
        let apache = reg.new_primitive(
            "Apache1",
            vec![
                InterfaceDecl::server("http", "http"),
                InterfaceDecl::optional_client("ajp-itf", "ajp"),
            ],
            Box::new(ApacheWrapper { server: apache_s }),
        );
        let tomcat1 = reg.new_primitive(
            "Tomcat1",
            vec![InterfaceDecl::server("ajp", "ajp")],
            Box::new(TomcatWrapper { server: tomcat1_s }),
        );
        let tomcat2 = reg.new_primitive(
            "Tomcat2",
            vec![InterfaceDecl::server("ajp", "ajp")],
            Box::new(TomcatWrapper { server: tomcat2_s }),
        );
        reg.set_attr(&mut legacy, apache, "server-id", apache_s.0 as i64)
            .unwrap();
        reg.set_attr(&mut legacy, tomcat1, "server-id", tomcat1_s.0 as i64)
            .unwrap();
        reg.set_attr(&mut legacy, tomcat2, "server-id", tomcat2_s.0 as i64)
            .unwrap();
        reg.set_attr(&mut legacy, tomcat2, "port", 8098i64).unwrap();

        reg.bind(&mut legacy, apache, "ajp-itf", tomcat1, "ajp")
            .unwrap();
        reg.start(&mut legacy, apache).unwrap();

        // --- The paper's four operations ---
        reg.stop(&mut legacy, apache).unwrap();
        reg.unbind(&mut legacy, apache, "ajp-itf", None).unwrap();
        reg.bind(&mut legacy, apache, "ajp-itf", tomcat2, "ajp")
            .unwrap();
        reg.start(&mut legacy, apache).unwrap();

        // worker.properties now points at Tomcat2 on node3 port 8098,
        // exactly the file the paper shows an administrator hand-editing.
        let wp = legacy
            .configs
            .read(NodeId(0), "conf/worker.properties")
            .unwrap();
        assert!(wp.contains("worker.Tomcat2.host=node3"), "{wp}");
        assert!(wp.contains("worker.Tomcat2.port=8098"), "{wp}");
        assert!(!wp.contains("Tomcat1"), "{wp}");
    }

    #[test]
    fn apache_port_attribute_reflected_in_httpd_conf() {
        let mut legacy = env(1);
        install(&mut legacy, NodeId(0), "apache");
        let apache_s = legacy.create_apache("Apache1", NodeId(0));
        let mut reg: Registry<LegacyLayer> = Registry::new();
        let apache = reg.new_primitive(
            "Apache1",
            vec![],
            Box::new(ApacheWrapper { server: apache_s }),
        );
        reg.set_attr(&mut legacy, apache, "server-id", apache_s.0 as i64)
            .unwrap();
        reg.set_attr(&mut legacy, apache, "port", 8081i64).unwrap();
        let conf = legacy.configs.read(NodeId(0), "conf/httpd.conf").unwrap();
        assert!(conf.contains("Listen 8081"));
        // Invalid port rejected by validation.
        assert!(reg.set_attr(&mut legacy, apache, "port", 0i64).is_err());
    }

    #[test]
    fn balancer_wrapper_maintains_worker_set() {
        let mut legacy = env(3);
        install(&mut legacy, NodeId(0), "plb");
        install(&mut legacy, NodeId(1), "tomcat");
        install(&mut legacy, NodeId(2), "tomcat");
        let plb_s = legacy.create_plb("PLB", NodeId(0), BalancePolicy::RoundRobin);
        let t1_s = legacy.create_tomcat("Tomcat1", NodeId(1));
        let t2_s = legacy.create_tomcat("Tomcat2", NodeId(2));
        let mut reg: Registry<LegacyLayer> = Registry::new();
        let plb = reg.new_primitive(
            "PLB",
            vec![
                InterfaceDecl::server("http", "http"),
                InterfaceDecl::collection_client("workers", "ajp"),
            ],
            Box::new(BalancerWrapper { server: plb_s }),
        );
        let mk = |reg: &mut Registry<LegacyLayer>,
                  legacy: &mut LegacyLayer,
                  name: &str,
                  sid: ServerId| {
            let c = reg.new_primitive(
                name,
                vec![InterfaceDecl::server("ajp", "ajp")],
                Box::new(TomcatWrapper { server: sid }),
            );
            reg.set_attr(legacy, c, "server-id", sid.0 as i64).unwrap();
            c
        };
        reg.set_attr(&mut legacy, plb, "server-id", plb_s.0 as i64)
            .unwrap();
        let t1 = mk(&mut reg, &mut legacy, "Tomcat1", t1_s);
        let t2 = mk(&mut reg, &mut legacy, "Tomcat2", t2_s);
        reg.bind(&mut legacy, plb, "workers", t1, "ajp").unwrap();
        reg.bind(&mut legacy, plb, "workers", t2, "ajp").unwrap();
        assert_eq!(legacy.balancer_mut(plb_s).unwrap().len(), 2);
        let conf = legacy.configs.read(NodeId(0), "etc/plb.conf").unwrap();
        assert!(conf.contains("node2:8098") && conf.contains("node3:8098"));
        reg.unbind(&mut legacy, plb, "workers", Some(t1)).unwrap();
        assert_eq!(legacy.balancer_mut(plb_s).unwrap().len(), 1);
    }

    #[test]
    fn cjdbc_wrapper_bind_triggers_sync_for_running_backend() {
        let mut legacy = env(3);
        install(&mut legacy, NodeId(0), "cjdbc");
        install(&mut legacy, NodeId(1), "mysql");
        let cj_s = legacy.create_cjdbc("C-JDBC", NodeId(0), ReadPolicy::LeastPending);
        let my_s = legacy.create_mysql("MySQL1", NodeId(1));
        legacy.start_server(cj_s).unwrap();
        legacy.finish_boot(cj_s).unwrap();
        legacy.start_server(my_s).unwrap();
        legacy.finish_boot(my_s).unwrap();
        legacy.drain_outbox();

        let mut reg: Registry<LegacyLayer> = Registry::new();
        let cj = reg.new_primitive(
            "C-JDBC",
            vec![
                InterfaceDecl::server("jdbc", "jdbc"),
                InterfaceDecl::collection_client("backends", "mysql"),
            ],
            Box::new(CjdbcWrapper { server: cj_s }),
        );
        let my = reg.new_primitive(
            "MySQL1",
            vec![InterfaceDecl::server("mysql", "mysql")],
            Box::new(MysqlWrapper { server: my_s }),
        );
        reg.set_attr(&mut legacy, cj, "server-id", cj_s.0 as i64)
            .unwrap();
        reg.set_attr(&mut legacy, my, "server-id", my_s.0 as i64)
            .unwrap();
        reg.bind(&mut legacy, cj, "backends", my, "mysql").unwrap();
        // The bind registered the backend and began reconciliation.
        let events = legacy.drain_outbox();
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, LegacyEvent::ReplayBatchDone { .. })));
        // Descriptor written.
        let xml = legacy.configs.read(NodeId(0), "conf/cjdbc.xml").unwrap();
        assert!(xml.contains("node2:3306"));
        // Unbind disables but keeps the replica's trace (checkpoint) for
        // a later re-insertion (paper §4.1).
        reg.unbind(&mut legacy, cj, "backends", Some(my)).unwrap();
        assert_eq!(legacy.cjdbc(cj_s).unwrap().backends(), vec![my_s]);
        assert_eq!(
            legacy.cjdbc_backend_status(cj_s, my_s).unwrap(),
            crate::cjdbc::BackendStatus::Disabled
        );
    }
}
