//! The Apache web server (static content tier).

use crate::server::{ServerId, ServerProcess, Tier};
use jade_cluster::NodeId;
use jade_sim::SimDuration;

/// An Apache httpd process.
#[derive(Debug, Clone)]
pub struct ApacheServer {
    /// Common process state.
    pub process: ServerProcess,
    /// HTTP listen port (`port` attribute, reflected in `httpd.conf`).
    pub port: u16,
    /// CPU demand to serve one static document — static pages are "one or
    /// two orders of magnitude" cheaper than dynamic ones (paper §2).
    pub static_demand: SimDuration,
    /// mod_jk worker set: the Tomcat instances dynamic requests are
    /// forwarded to (mirrors the `worker.properties` bindings).
    pub workers: Vec<ServerId>,
    /// Round-robin cursor over the workers (mod_jk's `lb` balancing).
    pub rr_cursor: usize,
}

impl ApacheServer {
    /// Creates a stopped Apache on `node`.
    pub fn new(id: ServerId, name: &str, node: NodeId) -> Self {
        ApacheServer {
            process: ServerProcess::new(id, name, node, Tier::Web),
            port: 80,
            static_demand: SimDuration::from_micros(300),
            workers: Vec::new(),
            rr_cursor: 0,
        }
    }

    /// Next Tomcat in the mod_jk rotation, or `None` when unbound.
    // jade-audit: allow(hot-panic): cursor is taken modulo workers.len(),
    // which the guard above ensures is nonzero.
    pub fn next_worker(&mut self) -> Option<ServerId> {
        if self.workers.is_empty() {
            return None;
        }
        let w = self.workers[self.rr_cursor % self.workers.len()];
        self.rr_cursor = (self.rr_cursor + 1) % self.workers.len();
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerState;

    #[test]
    fn defaults() {
        let a = ApacheServer::new(ServerId(0), "Apache1", NodeId(0));
        assert_eq!(a.port, 80);
        assert_eq!(a.process.state, ServerState::Stopped);
        assert_eq!(a.process.tier, Tier::Web);
    }

    #[test]
    fn mod_jk_rotation() {
        let mut a = ApacheServer::new(ServerId(0), "Apache1", NodeId(0));
        assert_eq!(a.next_worker(), None);
        a.workers = vec![ServerId(1), ServerId(2)];
        assert_eq!(a.next_worker(), Some(ServerId(1)));
        assert_eq!(a.next_worker(), Some(ServerId(2)));
        assert_eq!(a.next_worker(), Some(ServerId(1)));
    }
}
