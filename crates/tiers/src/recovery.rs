//! The C-JDBC recovery log (paper §4.1).
//!
//! "This recovery log is implemented as a particular database whose
//! purpose is to keep track of all the requests that affect the state of
//! the database. Basically, all write requests are logged and indexed as
//! strings in this recovery log. When a new server is inserted in the
//! clustered database … the recovery log enables us to know the exact set
//! of write requests to replay on this server to make it up-to-date. …
//! Symmetrically, removing a database replica is realized by keeping trace
//! of the state of this replica … stored as the index value … of the last
//! write request that it has executed before being disabled."

use crate::sql::{Schema, Statement};
use std::sync::Arc;

/// A logged write: global index plus the statement (stored rendered, as
/// C-JDBC stores strings, and structured for replay). The statement is
/// `Arc`-shared with the broadcast that produced it — logging a write
/// never clones it.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Global write index (0-based, dense).
    pub index: u64,
    /// The write statement.
    pub statement: Arc<Statement>,
    /// The rendered string form (what C-JDBC actually persisted).
    pub rendered: String,
}

/// Append-only log of all writes accepted by the clustered database.
#[derive(Debug, Clone)]
pub struct RecoveryLog {
    schema: Arc<Schema>,
    entries: Vec<LogEntry>,
}

impl RecoveryLog {
    /// Creates an empty log rendering against `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        RecoveryLog {
            schema,
            entries: Vec::new(),
        }
    }

    /// Appends a write, returning its index. Panics on non-write
    /// statements — reads must never reach the log.
    pub fn append(&mut self, statement: Arc<Statement>) -> u64 {
        assert!(
            statement.is_write(),
            "only write requests are logged (got {})",
            statement.render(&self.schema)
        );
        let index = self.entries.len() as u64;
        let rendered = statement.render(&self.schema);
        self.entries.push(LogEntry {
            index,
            statement,
            rendered,
        });
        index
    }

    /// Index one past the last logged write (== number of writes).
    pub fn head(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Entries with `index >= from` in order — "the exact set of write
    /// requests to replay" on a stale replica whose checkpoint is `from`.
    pub fn entries_from(&self, from: u64) -> &[LogEntry] {
        let start = (from as usize).min(self.entries.len());
        &self.entries[start..]
    }

    /// Number of writes a replica checkpointed at `from` is missing.
    pub fn backlog(&self, from: u64) -> u64 {
        self.head().saturating_sub(from)
    }

    /// All rendered statements (diagnostics / persistence emulation).
    pub fn rendered(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.rendered.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Value;

    fn schema() -> Arc<Schema> {
        Schema::builder().table("t", &["a"]).build()
    }

    fn log() -> RecoveryLog {
        RecoveryLog::new(schema())
    }

    fn w(i: i64) -> Arc<Statement> {
        Arc::new(schema().insert("t", &[("a", Value::Int(i))]))
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let mut log = log();
        assert_eq!(log.append(w(1)), 0);
        assert_eq!(log.append(w(2)), 1);
        assert_eq!(log.head(), 2);
        let tail = log.entries_from(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].index, 1);
        assert_eq!(log.backlog(0), 2);
        assert_eq!(log.backlog(2), 0);
        assert_eq!(log.backlog(99), 0);
    }

    #[test]
    #[should_panic(expected = "only write requests")]
    fn reads_are_rejected() {
        let mut log = log();
        log.append(Arc::new(schema().count("t")));
    }

    #[test]
    fn rendered_strings_match_statements() {
        let mut log = log();
        log.append(w(7));
        assert_eq!(log.rendered().next().unwrap(), "INSERT INTO t SET a=7");
    }
}
