//! The C-JDBC recovery log (paper §4.1).
//!
//! "This recovery log is implemented as a particular database whose
//! purpose is to keep track of all the requests that affect the state of
//! the database. Basically, all write requests are logged and indexed as
//! strings in this recovery log. When a new server is inserted in the
//! clustered database … the recovery log enables us to know the exact set
//! of write requests to replay on this server to make it up-to-date. …
//! Symmetrically, removing a database replica is realized by keeping trace
//! of the state of this replica … stored as the index value … of the last
//! write request that it has executed before being disabled."
//!
//! Two refinements over the literal model:
//!
//! * each entry carries the [`WriteDelta`] the primary captured when it
//!   executed the write, so replay applies physical effects instead of
//!   re-evaluating statements (the string form is rendered lazily, only
//!   when diagnostics ask for it — never on the hot append path);
//! * every [`RecoveryLog::snapshot_interval`] writes the log accepts a
//!   copy-on-write checkpoint [`Snapshot`] of the cluster state, so a
//!   joining backend receives {nearest snapshot, delta tail} — O(delta) —
//!   instead of replaying the entire history. The *simulated* resync
//!   latency still follows the full entry backlog ([`SyncPlan::backlog`]),
//!   keeping virtual-time trajectories identical to the full-replay
//!   implementation (the digest-neutral contract).

use crate::sql::{Schema, Statement};
use crate::storage::{Snapshot, WriteDelta};
use std::sync::Arc;

/// A logged write: global index, the statement (structured, for
/// diagnostics and statement-level replay fallback) and the physical
/// delta captured by the primary. Both are `Arc`-shared with the
/// broadcast that produced them — logging a write never clones either.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Global write index (0-based, dense).
    pub index: u64,
    /// The write statement.
    pub statement: Arc<Statement>,
    /// The primary's captured physical effect. `None` when the write was
    /// logged without delta capture (statement-replay mode, or the
    /// statement errored on the primary) — replay then re-executes the
    /// statement, which reproduces the identical outcome.
    pub delta: Option<Arc<WriteDelta>>,
}

impl LogEntry {
    /// The rendered string form (what C-JDBC actually persisted),
    /// produced on demand — the hot write path never renders.
    pub fn render(&self, schema: &Schema) -> String {
        self.statement.render(schema)
    }
}

/// What [`crate::cjdbc::CjdbcController::begin_enable`] hands a joining
/// backend: either the delta tail alone (applied onto the backend's
/// retained state) or the nearest checkpoint snapshot plus the shorter
/// tail past it.
#[derive(Debug, Clone, Default)]
pub struct SyncPlan {
    /// `(position, snapshot)`: replace the backend's state with the
    /// snapshot covering log entries `< position`, then apply `entries`.
    /// `None`: the backend's own state is current up to its checkpoint —
    /// apply `entries` directly.
    pub snapshot: Option<(u64, Snapshot)>,
    /// Delta tail to apply, in log order.
    pub entries: Vec<LogEntry>,
    /// The full entry count the literal statement-replay model would have
    /// transferred (`head - checkpoint`). The simulated resync latency is
    /// modeled on this, not on `entries.len()`, so switching a backend to
    /// the snapshot path never shifts virtual time.
    pub backlog: u64,
}

impl SyncPlan {
    /// True when the plan carries no state to transfer at all.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.entries.is_empty()
    }
}

/// How many writes the log accepts between checkpoint snapshots.
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 1024;

/// Append-only log of all writes accepted by the clustered database.
#[derive(Debug, Clone)]
pub struct RecoveryLog {
    schema: Arc<Schema>,
    entries: Vec<LogEntry>,
    /// Checkpoint snapshots at ascending log positions (a snapshot at
    /// position `p` covers entries `< p`).
    snapshots: Vec<(u64, Snapshot)>,
    snapshot_interval: u64,
}

impl RecoveryLog {
    /// Creates an empty log rendering against `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        RecoveryLog {
            schema,
            entries: Vec::new(),
            snapshots: Vec::new(),
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
        }
    }

    /// Appends a write without a captured delta (statement-replay mode),
    /// returning its index. Panics on non-write statements — reads must
    /// never reach the log.
    pub fn append(&mut self, statement: Arc<Statement>) -> u64 {
        self.push_entry(statement, None)
    }

    /// Appends a write together with the physical delta its primary
    /// captured, returning its index.
    pub fn append_captured(&mut self, statement: Arc<Statement>, delta: Arc<WriteDelta>) -> u64 {
        self.push_entry(statement, Some(delta))
    }

    // jade-audit: allow(unbounded-growth): the recovery log intentionally
    // retains every write of the run — it is the replay source that
    // brings checkpointed replicas back in sync (paper's RAIDb-1
    // recovery); truncating it would break resync.
    fn push_entry(&mut self, statement: Arc<Statement>, delta: Option<Arc<WriteDelta>>) -> u64 {
        assert!(
            statement.is_write(),
            "only write requests are logged (got {})",
            statement.render(&self.schema)
        );
        let index = self.entries.len() as u64;
        self.entries.push(LogEntry {
            index,
            statement,
            delta,
        });
        index
    }

    /// Index one past the last logged write (== number of writes).
    pub fn head(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Entries with `index >= from` in order — "the exact set of write
    /// requests to replay" on a stale replica whose checkpoint is `from`.
    pub fn entries_from(&self, from: u64) -> &[LogEntry] {
        let start = (from as usize).min(self.entries.len());
        &self.entries[start..]
    }

    /// Number of writes a replica checkpointed at `from` is missing.
    pub fn backlog(&self, from: u64) -> u64 {
        self.head().saturating_sub(from)
    }

    /// All rendered statements (diagnostics / persistence emulation),
    /// produced lazily — nothing is rendered until the iterator is
    /// consumed.
    pub fn rendered(&self) -> impl Iterator<Item = String> + '_ {
        self.entries.iter().map(|e| e.render(&self.schema))
    }

    // ------------------------------------------------------------------
    // Checkpoint snapshots
    // ------------------------------------------------------------------

    /// Writes between checkpoint snapshots.
    pub fn snapshot_interval(&self) -> u64 {
        self.snapshot_interval
    }

    /// Reconfigures the checkpoint cadence (tests and benches).
    pub fn set_snapshot_interval(&mut self, every: u64) {
        self.snapshot_interval = every.max(1);
    }

    /// True when enough writes accumulated since the last checkpoint that
    /// the caller should capture and [`RecoveryLog::install_snapshot`] a
    /// fresh one (the log itself holds no database state).
    pub fn snapshot_due(&self) -> bool {
        let last = self.snapshots.last().map(|(p, _)| *p).unwrap_or(0);
        self.head() >= last + self.snapshot_interval
    }

    /// Records a checkpoint snapshot of the cluster state at the current
    /// head (the snapshot must reflect every logged write).
    pub fn install_snapshot(&mut self, snapshot: Snapshot) {
        let pos = self.head();
        debug_assert!(self.snapshots.last().is_none_or(|(p, _)| *p <= pos));
        self.snapshots.push((pos, snapshot));
    }

    /// Number of checkpoint snapshots retained.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// The most advanced snapshot strictly past `from`, if any (a
    /// snapshot at or before `from` adds nothing over the backend's own
    /// retained state).
    pub fn nearest_snapshot(&self, from: u64) -> Option<&(u64, Snapshot)> {
        self.snapshots.iter().rev().find(|(p, _)| *p > from)
    }

    /// Builds the cheapest reconciliation plan for a backend checkpointed
    /// at `from`: nearest snapshot + delta tail when a snapshot would
    /// skip work, the plain tail otherwise. `backlog` always reflects the
    /// full `head - from` (see [`SyncPlan::backlog`]).
    pub fn sync_plan(&self, from: u64) -> SyncPlan {
        let backlog = self.backlog(from);
        match self.nearest_snapshot(from) {
            Some((pos, snap)) => SyncPlan {
                snapshot: Some((*pos, snap.clone())),
                entries: self.entries_from(*pos).to_vec(),
                backlog,
            },
            None => SyncPlan {
                snapshot: None,
                entries: self.entries_from(from).to_vec(),
                backlog,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Value;
    use crate::storage::Database;

    fn schema() -> Arc<Schema> {
        Schema::builder().table("t", &["a"]).build()
    }

    fn log() -> RecoveryLog {
        RecoveryLog::new(schema())
    }

    fn w(i: i64) -> Arc<Statement> {
        Arc::new(schema().insert("t", &[("a", Value::Int(i))]))
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let mut log = log();
        assert_eq!(log.append(w(1)), 0);
        assert_eq!(log.append(w(2)), 1);
        assert_eq!(log.head(), 2);
        let tail = log.entries_from(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].index, 1);
        assert_eq!(log.backlog(0), 2);
        assert_eq!(log.backlog(2), 0);
        assert_eq!(log.backlog(99), 0);
    }

    #[test]
    #[should_panic(expected = "only write requests")]
    fn reads_are_rejected() {
        let mut log = log();
        log.append(Arc::new(schema().count("t")));
    }

    #[test]
    fn rendered_strings_match_statements() {
        let mut log = log();
        log.append(w(7));
        assert_eq!(log.rendered().next().unwrap(), "INSERT INTO t SET a=7");
    }

    #[test]
    fn captured_deltas_ride_along() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        let mut log = RecoveryLog::new(Arc::clone(&schema));
        let stmt = w(3);
        let (_, delta) = db.execute_capture(&stmt).unwrap();
        log.append_captured(Arc::clone(&stmt), Arc::new(delta));
        log.append(w(4));
        let entries = log.entries_from(0);
        assert!(entries[0].delta.is_some());
        assert!(entries[1].delta.is_none());
    }

    #[test]
    fn snapshot_cadence_and_nearest_lookup() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        let mut log = RecoveryLog::new(Arc::clone(&schema));
        log.set_snapshot_interval(4);
        assert!(!log.snapshot_due(), "empty log needs no snapshot");
        for i in 0..10 {
            log.append(w(i));
            let _ = db.execute(&schema.insert("t", &[("a", Value::Int(i))]));
            if log.snapshot_due() {
                log.install_snapshot(db.snapshot());
            }
        }
        // Snapshots landed at positions 4 and 8.
        assert_eq!(log.snapshot_count(), 2);
        assert_eq!(log.nearest_snapshot(0).map(|(p, _)| *p), Some(8));
        assert_eq!(log.nearest_snapshot(7).map(|(p, _)| *p), Some(8));
        assert_eq!(log.nearest_snapshot(8).map(|(p, _)| *p), None);
        assert_eq!(log.nearest_snapshot(99).map(|(p, _)| *p), None);
    }

    #[test]
    fn sync_plan_prefers_snapshot_but_reports_full_backlog() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        let mut log = RecoveryLog::new(Arc::clone(&schema));
        log.set_snapshot_interval(4);
        for i in 0..6 {
            log.append(w(i));
            let _ = db.execute(&schema.insert("t", &[("a", Value::Int(i))]));
            if log.snapshot_due() {
                log.install_snapshot(db.snapshot());
            }
        }
        // Fresh joiner (checkpoint 0): snapshot at 4 + tail of 2, but the
        // latency model still sees all 6 entries.
        let plan = log.sync_plan(0);
        assert_eq!(plan.snapshot.as_ref().map(|(p, _)| *p), Some(4));
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.backlog, 6);
        // A backend checkpointed past the snapshot gets the plain tail.
        let plan = log.sync_plan(5);
        assert!(plan.snapshot.is_none());
        assert_eq!(plan.entries.len(), 1);
        assert_eq!(plan.backlog, 1);
        // Fully current: empty plan.
        assert!(log.sync_plan(6).is_empty());
    }
}
