//! Common state shared by all legacy server processes.

use jade_cluster::NodeId;

/// Identifier of a legacy server process, unique across all tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

/// Process state of a legacy server.
///
/// `Starting` models boot latency (a freshly deployed Tomcat or MySQL is
/// not immediately able to serve); the self-optimization reactor must wait
/// for it before wiring the replica into the load balancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Installed but not running.
    Stopped,
    /// Boot in progress.
    Starting,
    /// Serving requests.
    Running,
    /// Crashed (process or node failure).
    Failed,
}

impl ServerState {
    /// True when the server can accept work.
    pub fn is_running(self) -> bool {
        self == ServerState::Running
    }
}

/// The software tier a server belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Static web tier (Apache).
    Web,
    /// Servlet/business tier (Tomcat).
    Application,
    /// Database tier (MySQL).
    Database,
    /// A load balancer (L4 switch, PLB or C-JDBC).
    Balancer,
}

/// Base bookkeeping embedded in every concrete server struct.
#[derive(Debug, Clone)]
pub struct ServerProcess {
    /// Unique id.
    pub id: ServerId,
    /// Process name, e.g. `"Tomcat1"` (paper Figure 4 naming).
    pub name: String,
    /// Node hosting the process.
    pub node: NodeId,
    /// Life-cycle state.
    pub state: ServerState,
    /// Tier of the process.
    pub tier: Tier,
}

impl ServerProcess {
    /// Creates a stopped process.
    pub fn new(id: ServerId, name: &str, node: NodeId, tier: Tier) -> Self {
        ServerProcess {
            id,
            name: name.to_owned(),
            node,
            state: ServerState::Stopped,
            tier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_predicate() {
        assert!(ServerState::Running.is_running());
        assert!(!ServerState::Starting.is_running());
        assert!(!ServerState::Stopped.is_running());
        assert!(!ServerState::Failed.is_running());
    }

    #[test]
    fn process_construction() {
        let p = ServerProcess::new(ServerId(3), "Tomcat1", NodeId(2), Tier::Application);
        assert_eq!(p.state, ServerState::Stopped);
        assert_eq!(p.name, "Tomcat1");
    }
}
