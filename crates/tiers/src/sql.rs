//! A miniature SQL dialect — the statements the RUBiS servlets issue —
//! built around an interned **schema catalog**.
//!
//! The database tier needs *actual state* so that C-JDBC's recovery log
//! and state reconciliation (paper §4.1) are real mechanisms rather than
//! mocks: a replica that joins late must converge to the same contents by
//! replaying logged writes, and the property-based tests verify exactly
//! that.
//!
//! Table and column names resolve **once**, at schema-declaration /
//! statement-preparation time, to dense [`TableId`] / [`ColId`] indices.
//! A prepared [`Statement`] carries only those ids plus values, so the
//! per-request execution path in [`crate::storage`] performs zero string
//! hashing and zero name allocation — the same interpretation-overhead
//! trap C-JDBC itself avoids with prepared statements and full schema
//! knowledge (§4.1). Rows are fixed-layout `Vec<Value>` ordered by the
//! table's declared column list; absent columns hold [`Value::Null`].
//!
//! Name-based ergonomics survive where they belong: [`Schema`] offers
//! string-keyed statement builders for tests and dataset dumps, and
//! [`Statement::render`] still produces the exact SQL-like strings the
//! recovery log indexes ("all write requests are logged and indexed as
//! strings", §4.1).

use jade_sim::id_u16;
use std::fmt::{self, Write as _};
use std::sync::Arc;

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent column (fixed-layout rows need an explicit hole).
    Null,
    /// Integer column.
    Int(i64),
    /// Text column.
    Text(String),
}

impl Value {
    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a primary key — the compiled-plan path
    /// ([`crate::plan`]) stores key parameters as `Int` slots. Values no
    /// key can hold (`Null`, `Text`, negatives) map to a key that misses
    /// every row, so a malformed slot behaves like a stale bookmark
    /// rather than a panic.
    pub fn as_key(&self) -> u64 {
        match self {
            Value::Int(i) if *i >= 0 => *i as u64,
            _ => u64::MAX,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

/// Dense id of a table in its [`Schema`] (declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u16);

/// Dense id of a column within its table (declaration order — also the
/// column's position in the fixed row layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColId(pub u16);

/// A stored row: one value per declared column, shared between the table
/// and any outstanding query results (copy-on-write on update).
pub type SharedRow = Arc<Vec<Value>>;

/// Catalog entry of one table.
#[derive(Debug, PartialEq)]
pub struct TableDef {
    name: String,
    columns: Vec<String>,
    /// Column positions in name-sorted order (digest / render order — the
    /// order the historical `BTreeMap<String, Value>` rows iterated in).
    sorted_cols: Vec<u16>,
    /// Columns carrying a secondary hash index.
    indexed: Vec<ColId>,
}

impl TableDef {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared column names, in layout order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns (the row layout width).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column name of `col`.
    pub fn column(&self, col: ColId) -> &str {
        &self.columns[col.0 as usize]
    }

    /// Resolves a column name to its layout position.
    pub fn col_id(&self, name: &str) -> Option<ColId> {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(|i| ColId(id_u16(i)))
    }

    /// Column positions in name-sorted order.
    pub fn sorted_cols(&self) -> &[u16] {
        &self.sorted_cols
    }

    /// Columns declared as secondarily indexed.
    pub fn indexed(&self) -> &[ColId] {
        &self.indexed
    }
}

/// The schema catalog: every table and column the workload may touch,
/// declared up front and interned to dense ids.
///
/// Built deterministically by a [`SchemaBuilder`] and shared as
/// `Arc<Schema>` by statement preparers, every database replica, the
/// recovery log (for rendering) and the C-JDBC controller — there is no
/// global interner, so id assignment never depends on execution order and
/// replica digests stay byte-identical across worker counts.
#[derive(Debug, PartialEq)]
pub struct Schema {
    tables: Vec<TableDef>,
    /// Table positions in name-sorted order (digest order).
    sorted_tables: Vec<u16>,
}

impl Schema {
    /// Starts declaring a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder { tables: Vec::new() }
    }

    /// A schema with no tables (placeholder for not-yet-deployed layers).
    pub fn empty() -> Arc<Schema> {
        Schema::builder().build()
    }

    /// Number of declared tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no table is declared.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Resolves a table name to its id.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(id_u16(i)))
    }

    /// Catalog entry of `table`, if in range.
    pub fn table(&self, table: TableId) -> Option<&TableDef> {
        self.tables.get(table.0 as usize)
    }

    /// Table positions in name-sorted order.
    pub fn sorted_tables(&self) -> &[u16] {
        &self.sorted_tables
    }

    /// Table name of `table`, or a placeholder for out-of-catalog ids
    /// (only reachable through a mismatched schema).
    pub fn table_name(&self, table: TableId) -> &str {
        self.table(table).map_or("?", |t| t.name.as_str())
    }

    /// Resolves a table name, panicking when it is not declared (for
    /// preparation-time interning of known-good names).
    pub fn must_table(&self, name: &str) -> TableId {
        self.table_id(name)
            .unwrap_or_else(|| panic!("table '{name}' is not in the schema"))
    }

    /// Resolves a column name in `table`, panicking when either is not
    /// declared.
    pub fn must_col(&self, table: &str, name: &str) -> ColId {
        self.col_of(self.must_table(table), name)
    }

    fn col_of(&self, table: TableId, name: &str) -> ColId {
        let def = &self.tables[table.0 as usize];
        def.col_id(name)
            .unwrap_or_else(|| panic!("column '{}.{name}' is not in the schema", def.name))
    }

    /// Builds a full-width row from `(column, value)` pairs; unnamed
    /// columns are [`Value::Null`].
    pub fn row(&self, table: TableId, cols: &[(ColId, Value)]) -> Vec<Value> {
        let width = self.tables[table.0 as usize].width();
        let mut row = vec![Value::Null; width];
        for (col, v) in cols {
            row[col.0 as usize] = v.clone();
        }
        row
    }

    // ------------------------------------------------------------------
    // Name-keyed statement builders (preparation-time convenience: these
    // do the string lookups so the execution path never has to).
    // ------------------------------------------------------------------

    /// Prepares a `CREATE TABLE`.
    pub fn create_table(&self, table: &str) -> Statement {
        Statement::CreateTable {
            table: self.must_table(table),
        }
    }

    /// Prepares an `INSERT` from `(column, value)` pairs.
    pub fn insert(&self, table: &str, cols: &[(&str, Value)]) -> Statement {
        let t = self.must_table(table);
        let pairs: Vec<(ColId, Value)> = cols
            .iter()
            .map(|(c, v)| (self.col_of(t, c), v.clone()))
            .collect();
        Statement::Insert {
            table: t,
            row: self.row(t, &pairs),
        }
    }

    /// Prepares an `UPDATE` of `(column, value)` pairs.
    pub fn update(&self, table: &str, key: u64, cols: &[(&str, Value)]) -> Statement {
        let t = self.must_table(table);
        Statement::Update {
            table: t,
            key,
            set: cols
                .iter()
                .map(|(c, v)| (self.col_of(t, c), v.clone()))
                .collect(),
        }
    }

    /// Prepares a `DELETE` by primary key.
    pub fn delete(&self, table: &str, key: u64) -> Statement {
        Statement::Delete {
            table: self.must_table(table),
            key,
        }
    }

    /// Prepares a primary-key select.
    pub fn select_by_key(&self, table: &str, key: u64) -> Statement {
        Statement::SelectByKey {
            table: self.must_table(table),
            key,
        }
    }

    /// Prepares an equality-filter select.
    pub fn select_where(&self, table: &str, column: &str, value: Value, limit: usize) -> Statement {
        let t = self.must_table(table);
        Statement::SelectWhere {
            table: t,
            column: self.col_of(t, column),
            value,
            limit,
        }
    }

    /// Prepares a `COUNT(*)`.
    pub fn count(&self, table: &str) -> Statement {
        Statement::Count {
            table: self.must_table(table),
        }
    }
}

/// Declares tables, columns and secondary indexes, then builds the
/// immutable [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    tables: Vec<TableDef>,
}

impl SchemaBuilder {
    /// Declares a table with its columns (layout order).
    pub fn table(mut self, name: &str, columns: &[&str]) -> Self {
        assert!(
            !self.tables.iter().any(|t| t.name == name),
            "duplicate table '{name}'"
        );
        let columns: Vec<String> = columns.iter().map(|c| (*c).to_owned()).collect();
        let mut sorted_cols: Vec<u16> = (0..columns.len() as u16).collect();
        sorted_cols.sort_by(|&a, &b| columns[a as usize].cmp(&columns[b as usize]));
        self.tables.push(TableDef {
            name: name.to_owned(),
            columns,
            sorted_cols,
            indexed: Vec::new(),
        });
        self
    }

    /// Declares a secondary hash index on an equality-filter column.
    pub fn index(mut self, table: &str, column: &str) -> Self {
        let t = self
            .tables
            .iter_mut()
            .find(|t| t.name == table)
            .unwrap_or_else(|| panic!("index on undeclared table '{table}'"));
        let col = t
            .col_id(column)
            .unwrap_or_else(|| panic!("index on undeclared column '{table}.{column}'"));
        if !t.indexed.contains(&col) {
            t.indexed.push(col);
        }
        self
    }

    /// Finalizes the catalog.
    pub fn build(self) -> Arc<Schema> {
        let mut sorted_tables: Vec<u16> = (0..self.tables.len() as u16).collect();
        sorted_tables.sort_by(|&a, &b| {
            self.tables[a as usize]
                .name
                .cmp(&self.tables[b as usize].name)
        });
        Arc::new(Schema {
            tables: self.tables,
            sorted_tables,
        })
    }
}

/// The statements the engine executes, fully interned: table and column
/// references are dense ids resolved at preparation time.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// Creates an empty table (idempotent).
    CreateTable {
        /// Table id.
        table: TableId,
    },
    /// Inserts a row; the engine assigns the primary key. The row is
    /// full-width (one value per declared column, `Null` for absent).
    Insert {
        /// Target table.
        table: TableId,
        /// Column values in layout order.
        row: Vec<Value>,
    },
    /// Updates columns of the row with primary key `key`.
    Update {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: u64,
        /// Columns to overwrite (`Null` unsets a column).
        set: Vec<(ColId, Value)>,
    },
    /// Deletes the row with primary key `key`.
    Delete {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: u64,
    },
    /// Reads one row by primary key.
    SelectByKey {
        /// Target table.
        table: TableId,
        /// Primary key.
        key: u64,
    },
    /// Reads all rows whose `column` equals `value` (index lookup when
    /// the column is indexed, key-ordered scan otherwise).
    SelectWhere {
        /// Target table.
        table: TableId,
        /// Filter column.
        column: ColId,
        /// Filter value.
        value: Value,
        /// Max rows returned.
        limit: usize,
    },
    /// Counts rows in a table.
    Count {
        /// Target table.
        table: TableId,
    },
}

impl Statement {
    /// True for statements that modify state — exactly the set the C-JDBC
    /// recovery log must record ("all write requests are logged and
    /// indexed as strings in this recovery log", §4.1).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::CreateTable { .. }
                | Statement::Insert { .. }
                | Statement::Update { .. }
                | Statement::Delete { .. }
        )
    }

    /// The table the statement touches.
    pub fn table(&self) -> TableId {
        match self {
            Statement::CreateTable { table }
            | Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::SelectByKey { table, .. }
            | Statement::SelectWhere { table, .. }
            | Statement::Count { table } => *table,
        }
    }

    /// Renders the statement roughly as SQL text (the recovery log's
    /// "indexed as strings" representation, and handy in traces). Columns
    /// appear in name-sorted order with `Null`s omitted, matching the
    /// name-keyed engine this one replaced byte for byte.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        self.render_into(schema, &mut out);
        out
    }

    fn render_into(&self, schema: &Schema, out: &mut String) {
        // Writing into a String is infallible; errors are impossible.
        let _ = self.try_render(schema, out);
    }

    fn try_render(&self, schema: &Schema, out: &mut String) -> fmt::Result {
        match self {
            Statement::CreateTable { table } => {
                write!(out, "CREATE TABLE {}", schema.table_name(*table))
            }
            Statement::Insert { table, row } => {
                write!(out, "INSERT INTO {} SET ", schema.table_name(*table))?;
                let mut first = true;
                if let Some(def) = schema.table(*table) {
                    for &ci in def.sorted_cols() {
                        let v = &row[ci as usize];
                        if v.is_null() {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        write!(out, "{}={v}", def.column(ColId(ci)))?;
                    }
                }
                Ok(())
            }
            Statement::Update { table, key, set } => {
                write!(out, "UPDATE {} SET ", schema.table_name(*table))?;
                let mut first = true;
                if let Some(def) = schema.table(*table) {
                    for &ci in def.sorted_cols() {
                        let Some((_, v)) = set.iter().find(|(c, _)| c.0 == ci) else {
                            continue;
                        };
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        write!(out, "{}={v}", def.column(ColId(ci)))?;
                    }
                }
                write!(out, " WHERE id={key}")
            }
            Statement::Delete { table, key } => {
                write!(
                    out,
                    "DELETE FROM {} WHERE id={key}",
                    schema.table_name(*table)
                )
            }
            Statement::SelectByKey { table, key } => {
                write!(
                    out,
                    "SELECT * FROM {} WHERE id={key}",
                    schema.table_name(*table)
                )
            }
            Statement::SelectWhere {
                table,
                column,
                value,
                limit,
            } => {
                let col = schema.table(*table).map_or("?", |def| def.column(*column));
                write!(
                    out,
                    "SELECT * FROM {} WHERE {col}={value} LIMIT {limit}",
                    schema.table_name(*table)
                )
            }
            Statement::Count { table } => {
                write!(out, "SELECT COUNT(*) FROM {}", schema.table_name(*table))
            }
        }
    }
}

/// Result of executing a statement. Row contents are `Arc`-shared with
/// the table — a select clones reference counts, never row data.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// DDL / write acknowledgement; for inserts carries the assigned key.
    Ack {
        /// Primary key assigned by an insert, when applicable.
        inserted_key: Option<u64>,
        /// Number of rows affected.
        affected: u64,
    },
    /// Rows returned by a select, as `(key, row)` pairs.
    Rows(Vec<(u64, SharedRow)>),
    /// Count result.
    Count(u64),
}

impl QueryResult {
    /// Number of rows carried (selects) or affected (writes).
    pub fn cardinality(&self) -> u64 {
        match self {
            QueryResult::Ack { affected, .. } => *affected,
            QueryResult::Rows(rows) => rows.len() as u64,
            QueryResult::Count(n) => *n,
        }
    }
}

/// Summary of a statement executed into a caller-provided row buffer
/// (the allocation-free counterpart of [`QueryResult`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecSummary {
    /// DDL / write acknowledgement.
    Ack {
        /// Primary key assigned by an insert, when applicable.
        inserted_key: Option<u64>,
        /// Number of rows affected.
        affected: u64,
    },
    /// A select completed; the buffer holds this many rows.
    Rows(usize),
    /// Count result.
    Count(u64),
}

impl ExecSummary {
    /// Number of rows carried (selects) or affected (writes).
    pub fn cardinality(&self) -> u64 {
        match self {
            ExecSummary::Ack { affected, .. } => *affected,
            ExecSummary::Rows(n) => *n as u64,
            ExecSummary::Count(n) => *n,
        }
    }
}

/// Errors from the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Statement referenced a missing table.
    NoSuchTable(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .table("items", &["name", "seller", "category", "price"])
            .table("t", &["a"])
            .index("items", "seller")
            .build()
    }

    #[test]
    fn write_classification() {
        let s = schema();
        assert!(s.create_table("t").is_write());
        assert!(s.insert("t", &[]).is_write());
        assert!(!s.count("t").is_write());
        assert!(!s.select_by_key("t", 1).is_write());
    }

    #[test]
    fn render_is_sql_like() {
        let schema = schema();
        let s = schema.update("items", 9, &[("price", Value::Int(42))]);
        assert_eq!(s.render(&schema), "UPDATE items SET price=42 WHERE id=9");
        let q = schema.select_where("items", "seller", "bob".into(), 10);
        assert_eq!(
            q.render(&schema),
            "SELECT * FROM items WHERE seller='bob' LIMIT 10"
        );
    }

    #[test]
    fn render_sorts_columns_by_name_and_skips_nulls() {
        let schema = schema();
        // Layout order is name/seller/category/price; render order is the
        // historical BTreeMap (name-sorted) order with Nulls omitted.
        let s = schema.insert(
            "items",
            &[
                ("price", Value::Int(5)),
                ("category", Value::Int(2)),
                ("name", Value::Text("x".into())),
            ],
        );
        assert_eq!(
            s.render(&schema),
            "INSERT INTO items SET category=2, name='x', price=5"
        );
    }

    #[test]
    fn interning_resolves_names_once() {
        let schema = schema();
        let t = schema.table_id("items").unwrap();
        let def = schema.table(t).unwrap();
        assert_eq!(def.width(), 4);
        assert_eq!(def.col_id("seller"), Some(ColId(1)));
        assert_eq!(def.indexed(), &[ColId(1)]);
        assert_eq!(schema.table_id("nope"), None);
        match schema.select_where("items", "category", Value::Int(1), 5) {
            Statement::SelectWhere { table, column, .. } => {
                assert_eq!(table, t);
                assert_eq!(column, ColId(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
