//! A miniature SQL dialect — the statements the RUBiS servlets issue.
//!
//! The database tier needs *actual state* so that C-JDBC's recovery log
//! and state reconciliation (paper §4.1) are real mechanisms rather than
//! mocks: a replica that joins late must converge to the same contents by
//! replaying logged writes, and the property-based tests verify exactly
//! that.

use std::collections::BTreeMap;
use std::fmt;

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer column.
    Int(i64),
    /// Text column.
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

/// A row: named columns. The primary key `id` is managed by the table.
pub type Row = BTreeMap<String, Value>;

/// Builds a row from `(column, value)` pairs.
pub fn row(cols: &[(&str, Value)]) -> Row {
    cols.iter()
        .map(|(k, v)| ((*k).to_owned(), v.clone()))
        .collect()
}

/// The statements the engine executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// Creates an empty table (idempotent).
    CreateTable {
        /// Table name.
        table: String,
    },
    /// Inserts a row; the engine assigns the primary key.
    Insert {
        /// Target table.
        table: String,
        /// Column values.
        row: Row,
    },
    /// Updates columns of the row with primary key `key`.
    Update {
        /// Target table.
        table: String,
        /// Primary key.
        key: u64,
        /// Columns to overwrite.
        set: Row,
    },
    /// Deletes the row with primary key `key`.
    Delete {
        /// Target table.
        table: String,
        /// Primary key.
        key: u64,
    },
    /// Reads one row by primary key.
    SelectByKey {
        /// Target table.
        table: String,
        /// Primary key.
        key: u64,
    },
    /// Reads all rows whose `column` equals `value` (full scan).
    SelectWhere {
        /// Target table.
        table: String,
        /// Filter column.
        column: String,
        /// Filter value.
        value: Value,
        /// Max rows returned.
        limit: usize,
    },
    /// Counts rows in a table.
    Count {
        /// Target table.
        table: String,
    },
}

impl Statement {
    /// True for statements that modify state — exactly the set the C-JDBC
    /// recovery log must record ("all write requests are logged and
    /// indexed as strings in this recovery log", §4.1).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::CreateTable { .. }
                | Statement::Insert { .. }
                | Statement::Update { .. }
                | Statement::Delete { .. }
        )
    }

    /// The table the statement touches.
    pub fn table(&self) -> &str {
        match self {
            Statement::CreateTable { table }
            | Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::SelectByKey { table, .. }
            | Statement::SelectWhere { table, .. }
            | Statement::Count { table } => table,
        }
    }

    /// Renders the statement roughly as SQL text (the recovery log's
    /// "indexed as strings" representation, and handy in traces).
    pub fn render(&self) -> String {
        match self {
            Statement::CreateTable { table } => format!("CREATE TABLE {table}"),
            Statement::Insert { table, row } => {
                let cols: Vec<String> = row.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("INSERT INTO {table} SET {}", cols.join(", "))
            }
            Statement::Update { table, key, set } => {
                let cols: Vec<String> = set.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("UPDATE {table} SET {} WHERE id={key}", cols.join(", "))
            }
            Statement::Delete { table, key } => format!("DELETE FROM {table} WHERE id={key}"),
            Statement::SelectByKey { table, key } => {
                format!("SELECT * FROM {table} WHERE id={key}")
            }
            Statement::SelectWhere {
                table,
                column,
                value,
                limit,
            } => format!("SELECT * FROM {table} WHERE {column}={value} LIMIT {limit}"),
            Statement::Count { table } => format!("SELECT COUNT(*) FROM {table}"),
        }
    }
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// DDL / write acknowledgement; for inserts carries the assigned key.
    Ack {
        /// Primary key assigned by an insert, when applicable.
        inserted_key: Option<u64>,
        /// Number of rows affected.
        affected: u64,
    },
    /// Rows returned by a select, as `(key, row)` pairs.
    Rows(Vec<(u64, Row)>),
    /// Count result.
    Count(u64),
}

impl QueryResult {
    /// Number of rows carried (selects) or affected (writes).
    pub fn cardinality(&self) -> u64 {
        match self {
            QueryResult::Ack { affected, .. } => *affected,
            QueryResult::Rows(rows) => rows.len() as u64,
            QueryResult::Count(n) => *n,
        }
    }
}

/// Errors from the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Statement referenced a missing table.
    NoSuchTable(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_classification() {
        assert!(Statement::CreateTable { table: "t".into() }.is_write());
        assert!(Statement::Insert {
            table: "t".into(),
            row: Row::new()
        }
        .is_write());
        assert!(!Statement::Count { table: "t".into() }.is_write());
        assert!(!Statement::SelectByKey {
            table: "t".into(),
            key: 1
        }
        .is_write());
    }

    #[test]
    fn render_is_sql_like() {
        let s = Statement::Update {
            table: "items".into(),
            key: 9,
            set: row(&[("price", Value::Int(42))]),
        };
        assert_eq!(s.render(), "UPDATE items SET price=42 WHERE id=9");
        let q = Statement::SelectWhere {
            table: "items".into(),
            column: "seller".into(),
            value: "bob".into(),
            limit: 10,
        };
        assert_eq!(
            q.render(),
            "SELECT * FROM items WHERE seller='bob' LIMIT 10"
        );
    }
}
