//! The Tomcat servlet container (application/business tier).

use crate::server::{ServerId, ServerProcess, Tier};
use jade_cluster::NodeId;

/// A Tomcat process.
#[derive(Debug, Clone)]
pub struct TomcatServer {
    /// Common process state.
    pub process: ServerProcess,
    /// AJP connector port (`port` attribute, reflected in `server.xml`).
    pub port: u16,
    /// Maximum concurrently processed requests; beyond this, requests wait
    /// in the connector accept queue.
    pub max_threads: usize,
    /// Requests currently being processed (holding a worker thread).
    pub active: usize,
}

impl TomcatServer {
    /// Creates a stopped Tomcat on `node`.
    pub fn new(id: ServerId, name: &str, node: NodeId) -> Self {
        TomcatServer {
            process: ServerProcess::new(id, name, node, Tier::Application),
            port: 8098,
            max_threads: 150,
            active: 0,
        }
    }

    /// True when a worker thread is available.
    pub fn has_capacity(&self) -> bool {
        self.active < self.max_threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_check() {
        let mut t = TomcatServer::new(ServerId(1), "Tomcat1", NodeId(1));
        assert!(t.has_capacity());
        t.active = t.max_threads;
        assert!(!t.has_capacity());
    }
}
