//! Compiled interaction plans: each RUBiS interaction's statement
//! template, compiled once at workload-build time into a flat opcode
//! program over pre-resolved [`TableId`]/[`ColId`] handles.
//!
//! The 26 interactions have a fixed SQL shape — only the RNG-drawn keys
//! and values change per request — so the per-request hot path does not
//! need to construct and interpret [`Statement`] trees at all. A
//! [`CompiledPlan`] carries the shape; a request carries a small typed
//! parameter buffer (recycled through the existing pools) holding the
//! per-request draws; the storage engine executes the program directly
//! ([`crate::storage::Database::execute_plan`] and the per-step entry
//! points) with scratch-row reuse on reads and `WriteDelta` capture on
//! writes, composing with the execute-once replication path.
//!
//! The interpreted statement path stays intact as the fallback and as the
//! differential oracle: [`PlanStep::statement`] re-materializes the exact
//! prepared statement a step stands for (the recovery log still records
//! statements, and `tests/plan_prop.rs` proves result/error/digest parity
//! between the two executions).

use crate::sql::{ColId, Statement, TableId, Value};
use jade_sim::SimDuration;

/// Where a step operand's value comes from at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A constant baked into the template at compile time.
    Const(Value),
    /// The value in this slot of the request's parameter buffer.
    Param(u16),
}

impl Operand {
    /// Resolves the operand against a request's parameter buffer.
    // jade-audit: allow(hot-panic): Param slots are assigned by the plan
    // compiler against the same parameter layout the generator fills, so
    // slot < params.len() by construction.
    #[inline]
    pub fn resolve<'a>(&'a self, params: &'a [Value]) -> &'a Value {
        match self {
            Operand::Const(v) => v,
            Operand::Param(slot) => &params[*slot as usize],
        }
    }
}

/// One opcode of a compiled program. Table, column and index references
/// are pre-resolved; value positions are [`Operand`]s filled from the
/// parameter buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOp {
    /// Primary-key point read (the compiled `SelectByKey`).
    ReadKey {
        /// Target table.
        table: TableId,
        /// Primary key (resolved via [`Value::as_key`]).
        key: Operand,
    },
    /// Equality-filter read (the compiled `SelectWhere`; the engine takes
    /// the secondary-index probe when the column is indexed).
    Scan {
        /// Target table.
        table: TableId,
        /// Filter column.
        column: ColId,
        /// Filter value.
        value: Operand,
        /// Max rows returned.
        limit: usize,
    },
    /// Live-row count (the compiled `Count`).
    Count {
        /// Target table.
        table: TableId,
    },
    /// Row insert; the row template is full-width in layout order.
    Insert {
        /// Target table.
        table: TableId,
        /// Column values in layout order.
        row: Vec<Operand>,
    },
    /// Column update of the row at `key`.
    Update {
        /// Target table.
        table: TableId,
        /// Primary key (resolved via [`Value::as_key`]).
        key: Operand,
        /// Columns to overwrite.
        set: Vec<(ColId, Operand)>,
    },
}

/// One step of a compiled program: the opcode plus the step's calibrated
/// mean CPU demand on the executing database node (the per-request jitter
/// is applied at plan-instantiation time, exactly like the interpreted
/// path).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The operation.
    pub op: StepOp,
    /// Un-jittered mean CPU demand (the value a freshly prepared
    /// [`crate::request::SqlOp`] would carry).
    pub demand: SimDuration,
}

impl PlanStep {
    /// True when the step modifies the database (must be logged and
    /// broadcast by the replication layer).
    pub fn is_write(&self) -> bool {
        matches!(self.op, StepOp::Insert { .. } | StepOp::Update { .. })
    }

    /// Re-materializes the prepared [`Statement`] this step stands for
    /// under a concrete parameter buffer — byte-equal to what the
    /// interpreted generator would have built. The recovery log records
    /// statements ("all write requests are logged and indexed as
    /// strings", paper §4.1), and a replica without a captured delta
    /// re-executes the statement, so the write path materializes one per
    /// logged write; reads never call this.
    // jade-audit: allow(hot-alloc): materializes a statement tree only on
    // the write path, where the statement becomes the recovery-log entry
    // shared by every replica; reads never take this path.
    pub fn statement(&self, params: &[Value]) -> Statement {
        match &self.op {
            StepOp::ReadKey { table, key } => Statement::SelectByKey {
                table: *table,
                key: key.resolve(params).as_key(),
            },
            StepOp::Scan {
                table,
                column,
                value,
                limit,
            } => Statement::SelectWhere {
                table: *table,
                column: *column,
                value: value.resolve(params).clone(),
                limit: *limit,
            },
            StepOp::Count { table } => Statement::Count { table: *table },
            StepOp::Insert { table, row } => Statement::Insert {
                table: *table,
                row: row.iter().map(|o| o.resolve(params).clone()).collect(),
            },
            StepOp::Update { table, key, set } => Statement::Update {
                table: *table,
                key: key.resolve(params).as_key(),
                set: set
                    .iter()
                    .map(|(c, o)| (*c, o.resolve(params).clone()))
                    .collect(),
            },
        }
    }
}

/// A whole interaction compiled to a flat program: the steps in issue
/// order plus the size of the parameter buffer a request must fill.
/// Compiled once per interaction type (26 programs per process) and
/// shared by reference; static/form interactions compile to an empty
/// program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPlan {
    /// Interaction name (RUBiS servlet name).
    pub name: &'static str,
    /// The program, in statement-issue order.
    pub steps: Vec<PlanStep>,
    /// Number of parameter slots a request's buffer must fill.
    pub params: u16,
    /// True when any step writes (pre-computed `any(is_write)`).
    pub writes: bool,
}

impl CompiledPlan {
    /// Builds a program, pre-computing the write flag.
    pub fn new(name: &'static str, steps: Vec<PlanStep>, params: u16) -> Self {
        let writes = steps.iter().any(PlanStep::is_write);
        CompiledPlan {
            name,
            steps,
            params,
            writes,
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for a zero-step (static page) program.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .table("t", &["a", "b"])
            .index("t", "a")
            .build()
    }

    #[test]
    fn operands_resolve_consts_and_params() {
        let params = [Value::Int(7), Value::Text("x".into())];
        assert_eq!(
            Operand::Const(Value::Int(1)).resolve(&params),
            &Value::Int(1)
        );
        assert_eq!(Operand::Param(0).resolve(&params), &Value::Int(7));
        assert_eq!(Operand::Param(1).resolve(&params), &Value::Text("x".into()));
    }

    #[test]
    fn materialized_statements_match_the_prepared_forms() {
        let schema = schema();
        let t = schema.must_table("t");
        let a = schema.must_col("t", "a");
        let params = [Value::Int(3), Value::Int(42)];
        let read = PlanStep {
            op: StepOp::ReadKey {
                table: t,
                key: Operand::Param(0),
            },
            demand: SimDuration::from_millis(1),
        };
        assert_eq!(read.statement(&params), schema.select_by_key("t", 3));
        assert!(!read.is_write());
        let ins = PlanStep {
            op: StepOp::Insert {
                table: t,
                row: vec![Operand::Param(1), Operand::Const(Value::Null)],
            },
            demand: SimDuration::from_millis(1),
        };
        assert_eq!(
            ins.statement(&params),
            schema.insert("t", &[("a", Value::Int(42))])
        );
        assert!(ins.is_write());
        let upd = PlanStep {
            op: StepOp::Update {
                table: t,
                key: Operand::Param(0),
                set: vec![(a, Operand::Param(1))],
            },
            demand: SimDuration::from_millis(1),
        };
        assert_eq!(
            upd.statement(&params),
            schema.update("t", 3, &[("a", Value::Int(42))])
        );
    }

    #[test]
    fn compiled_plan_precomputes_the_write_flag() {
        let schema = schema();
        let t = schema.must_table("t");
        let read_only = CompiledPlan::new(
            "r",
            vec![PlanStep {
                op: StepOp::Count { table: t },
                demand: SimDuration::ZERO,
            }],
            0,
        );
        assert!(!read_only.writes);
        assert_eq!(read_only.len(), 1);
        let writing = CompiledPlan::new(
            "w",
            vec![PlanStep {
                op: StepOp::Insert {
                    table: t,
                    row: vec![Operand::Const(Value::Null), Operand::Const(Value::Null)],
                },
                demand: SimDuration::ZERO,
            }],
            0,
        );
        assert!(writing.writes);
        let empty = CompiledPlan::new("s", Vec::new(), 0);
        assert!(empty.is_empty() && !empty.writes);
    }
}
