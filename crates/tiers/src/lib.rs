//! # jade-tiers — the J2EE legacy layer
//!
//! Everything below Jade's management plane, rebuilt from scratch:
//!
//! * [`apache`], [`tomcat`], [`mysql`] — the tier server processes; MySQL
//!   carries an actual storage engine ([`storage`]) executing a mini-SQL
//!   dialect ([`sql`]),
//! * [`cjdbc`] — the C-JDBC database clustering middleware (RAIDb-1 full
//!   mirroring) with its [`recovery`] log and state reconciliation
//!   (paper §4.1),
//! * [`balancer`] — PLB / L4-switch HTTP load balancing (Random,
//!   Round-Robin),
//! * [`config`] — the legacy configuration artifacts (`httpd.conf`,
//!   `worker.properties`, …) that wrappers rewrite,
//! * [`legacy`] — the aggregate [`legacy::LegacyLayer`]: the environment
//!   that Fractal wrappers reflect onto,
//! * [`wrappers`] — the Fractal wrappers themselves (paper §3.2),
//! * [`request`] — interaction plans flowing client → servlet → database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apache;
pub mod balancer;
pub mod cjdbc;
pub mod config;
pub mod legacy;
pub mod mysql;
pub mod plan;
pub mod recovery;
pub mod request;
pub mod server;
pub mod sql;
pub mod storage;
pub mod tomcat;
pub mod wrappers;

pub use apache::ApacheServer;
pub use balancer::{BalancePolicy, BalancerError, HttpBalancer};
pub use cjdbc::{BackendStatus, CjdbcController, CjdbcError, ReadPolicy};
pub use legacy::{LegacyError, LegacyEvent, LegacyLayer, LegacyServer};
pub use mysql::MysqlServer;
pub use plan::{CompiledPlan, Operand, PlanStep, StepOp};
pub use recovery::{LogEntry, RecoveryLog};
pub use request::{CompiledRun, DbQuery, InteractionPlan, RequestId, SqlOp, SqlProgram};
pub use server::{ServerId, ServerProcess, ServerState, Tier};
pub use sql::{
    ColId, ExecSummary, QueryResult, Schema, SchemaBuilder, SharedRow, SqlError, Statement,
    TableId, Value,
};
pub use storage::{Database, Table};
pub use tomcat::TomcatServer;
pub use wrappers::{ApacheWrapper, BalancerWrapper, CjdbcWrapper, MysqlWrapper, TomcatWrapper};
