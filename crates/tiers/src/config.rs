//! Simulated legacy configuration artifacts.
//!
//! The whole point of Jade's wrappers is that they hide "software-specific,
//! hand-managed configuration files" (paper §3.2) — so the reproduction
//! keeps those files around: wrappers render real `httpd.conf`,
//! `worker.properties`, `my.cnf`… content into a per-node configuration
//! store, and the qualitative evaluation (§5.1) can diff the manual
//! procedure against Jade's four component operations.

use jade_cluster::NodeId;
use std::collections::BTreeMap;

/// Per-node file store: `(node, path) -> contents`.
#[derive(Debug, Clone, Default)]
pub struct ConfigStore {
    files: BTreeMap<(NodeId, String), String>,
    /// Number of writes ever performed (a cost proxy for manual edits).
    writes: u64,
}

impl ConfigStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes (replaces) a file.
    pub fn write(&mut self, node: NodeId, path: &str, contents: String) {
        self.files.insert((node, path.to_owned()), contents);
        self.writes += 1;
    }

    /// Reads a file.
    pub fn read(&self, node: NodeId, path: &str) -> Option<&str> {
        self.files.get(&(node, path.to_owned())).map(String::as_str)
    }

    /// Removes a file.
    pub fn remove(&mut self, node: NodeId, path: &str) {
        self.files.remove(&(node, path.to_owned()));
    }

    /// Paths present on a node.
    pub fn paths_on(&self, node: NodeId) -> Vec<&str> {
        self.files
            .keys()
            .filter(|(n, _)| *n == node)
            .map(|(_, p)| p.as_str())
            .collect()
    }

    /// Total number of file writes performed so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

/// A worker entry for `worker.properties` (Apache→Tomcat via mod_jk) or
/// the PLB worker list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerEntry {
    /// Worker symbolic name.
    pub name: String,
    /// Target host.
    pub host: String,
    /// Target port.
    pub port: u16,
}

/// Renders `worker.properties` the way the paper shows it (§5.1):
///
/// ```text
/// worker.worker.port=8098
/// worker.worker.host=node3
/// worker.worker.type=ajp13
/// ...
/// ```
pub fn render_worker_properties(entries: &[WorkerEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!("worker.{}.port={}\n", e.name, e.port));
        out.push_str(&format!("worker.{}.host={}\n", e.name, e.host));
        out.push_str(&format!("worker.{}.type=ajp13\n", e.name));
        out.push_str(&format!("worker.{}.lbfactor=100\n", e.name));
    }
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    out.push_str(&format!("worker.list={}, loadbalancer\n", names.join(", ")));
    out.push_str("worker.loadbalancer.type=lb\n");
    out.push_str(&format!(
        "worker.loadbalancer.balanced_workers={}\n",
        names.join(", ")
    ));
    out
}

/// Renders a minimal `httpd.conf`.
pub fn render_httpd_conf(server_name: &str, port: u16, doc_root: &str) -> String {
    format!("ServerName {server_name}\nListen {port}\nDocumentRoot \"{doc_root}\"\nKeepAlive On\n")
}

/// Renders a minimal `my.cnf`.
pub fn render_my_cnf(port: u16, datadir: &str) -> String {
    format!("[mysqld]\nport={port}\ndatadir={datadir}\nmax_connections=500\n")
}

/// Renders a PLB configuration listing backend workers.
pub fn render_plb_conf(listen_port: u16, workers: &[WorkerEntry]) -> String {
    let mut out = format!("listen 0.0.0.0:{listen_port}\n");
    for w in workers {
        out.push_str(&format!("server {}:{}\n", w.host, w.port));
    }
    out
}

/// Renders a C-JDBC virtual-database descriptor naming its backends.
pub fn render_cjdbc_xml(vdb: &str, backends: &[WorkerEntry]) -> String {
    let mut out = format!("<C-JDBC>\n  <VirtualDatabase name=\"{vdb}\">\n");
    out.push_str("    <RAIDb-1>\n");
    for b in backends {
        out.push_str(&format!(
            "      <DatabaseBackend name=\"{}\" url=\"jdbc:mysql://{}:{}/{vdb}\"/>\n",
            b.name, b.host, b.port
        ));
    }
    out.push_str("    </RAIDb-1>\n  </VirtualDatabase>\n</C-JDBC>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_properties_matches_paper_syntax() {
        let rendered = render_worker_properties(&[WorkerEntry {
            name: "worker".into(),
            host: "node3".into(),
            port: 8098,
        }]);
        // Exactly the §5.1 lines.
        assert!(rendered.contains("worker.worker.port=8098"));
        assert!(rendered.contains("worker.worker.host=node3"));
        assert!(rendered.contains("worker.worker.type=ajp13"));
        assert!(rendered.contains("worker.worker.lbfactor=100"));
        assert!(rendered.contains("worker.list=worker, loadbalancer"));
        assert!(rendered.contains("worker.loadbalancer.type=lb"));
        assert!(rendered.contains("worker.loadbalancer.balanced_workers=worker"));
    }

    #[test]
    fn store_roundtrip_and_write_count() {
        let mut store = ConfigStore::new();
        store.write(
            NodeId(1),
            "conf/httpd.conf",
            render_httpd_conf("node1", 80, "/www"),
        );
        assert!(store
            .read(NodeId(1), "conf/httpd.conf")
            .unwrap()
            .contains("Listen 80"));
        assert!(store.read(NodeId(2), "conf/httpd.conf").is_none());
        store.write(
            NodeId(1),
            "conf/httpd.conf",
            render_httpd_conf("node1", 8080, "/www"),
        );
        assert_eq!(store.write_count(), 2);
        assert_eq!(store.paths_on(NodeId(1)), vec!["conf/httpd.conf"]);
        store.remove(NodeId(1), "conf/httpd.conf");
        assert!(store.paths_on(NodeId(1)).is_empty());
    }

    #[test]
    fn cjdbc_descriptor_lists_backends() {
        let xml = render_cjdbc_xml(
            "rubis",
            &[
                WorkerEntry {
                    name: "backend1".into(),
                    host: "node5".into(),
                    port: 3306,
                },
                WorkerEntry {
                    name: "backend2".into(),
                    host: "node6".into(),
                    port: 3306,
                },
            ],
        );
        assert!(xml.contains("jdbc:mysql://node5:3306/rubis"));
        assert!(xml.contains("jdbc:mysql://node6:3306/rubis"));
        assert!(xml.contains("RAIDb-1"));
    }
}
