//! Request-level types flowing through the multi-tier architecture
//! (paper §2, Figure 1: client → web/app server → database).

use crate::plan::{CompiledPlan, PlanStep};
use crate::sql::{Statement, Value};
use jade_sim::SimDuration;
use std::sync::Arc;

/// Unique id of one client HTTP interaction end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// One database query a servlet issues, with its execution cost on a
/// database node.
///
/// The statement is `Arc`-shared: cloning a plan, broadcasting a write to
/// N mirrored backends and appending to the recovery log all reuse the
/// one prepared statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlOp {
    /// The statement to execute.
    pub statement: Arc<Statement>,
    /// CPU demand on the executing MySQL node.
    pub demand: SimDuration,
}

impl SqlOp {
    /// Builds a query op from a freshly prepared statement.
    pub fn new(statement: Statement, demand: SimDuration) -> Self {
        SqlOp {
            statement: Arc::new(statement),
            demand,
        }
    }

    /// Builds a query op sharing an already-prepared statement (e.g. the
    /// constant `COUNT(*)` reads the RUBiS mix reissues verbatim).
    pub fn shared(statement: Arc<Statement>, demand: SimDuration) -> Self {
        SqlOp { statement, demand }
    }

    /// True when the op modifies the database.
    pub fn is_write(&self) -> bool {
        self.statement.is_write()
    }
}

/// One request's instantiation of a [`CompiledPlan`]: the shared program
/// plus the small per-request buffers — RNG-drawn parameter values and
/// jittered per-step demands. Both buffers recycle through the system's
/// pools, so the steady-state compiled path allocates nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRun {
    /// The interaction's compiled program (shared, compiled once).
    pub plan: &'static CompiledPlan,
    /// The request's parameter buffer, one slot per RNG draw.
    pub params: Vec<Value>,
    /// Jittered CPU demand per step, in step order.
    pub demands: Vec<SimDuration>,
}

/// The SQL body of an interaction plan: either the interpreted statement
/// list (the fallback and differential oracle) or a compiled program run.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlProgram {
    /// Interpreted prepared statements, executed one `Statement` at a time.
    Ops(Vec<SqlOp>),
    /// A compiled-plan instantiation, executed opcode-by-opcode.
    Compiled(CompiledRun),
}

/// A borrowed view of one query at dispatch time, uniform across the
/// interpreted and compiled representations — what the C-JDBC dispatch
/// path consumes.
#[derive(Debug, Clone, Copy)]
pub enum DbQuery<'a> {
    /// An interpreted prepared statement.
    Stmt(&'a SqlOp),
    /// One step of a compiled program plus the run's parameter buffer.
    Step {
        /// The opcode to execute.
        step: &'a PlanStep,
        /// The request's parameter buffer.
        params: &'a [Value],
        /// Jittered CPU demand for this step.
        demand: SimDuration,
    },
}

impl DbQuery<'_> {
    /// True when the query modifies the database.
    pub fn is_write(&self) -> bool {
        match self {
            DbQuery::Stmt(op) => op.is_write(),
            DbQuery::Step { step, .. } => step.is_write(),
        }
    }

    /// CPU demand on the executing MySQL node.
    pub fn demand(&self) -> SimDuration {
        match self {
            DbQuery::Stmt(op) => op.demand,
            DbQuery::Step { demand, .. } => *demand,
        }
    }
}

impl SqlProgram {
    /// Number of queries in the program.
    pub fn len(&self) -> usize {
        match self {
            SqlProgram::Ops(ops) => ops.len(),
            SqlProgram::Compiled(run) => run.plan.steps.len(),
        }
    }

    /// True for a query-free (static page) program.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows query `idx` in dispatch form.
    // jade-audit: allow(hot-panic): idx is the dispatcher's program
    // counter, bounded by this program's len() (the dispatch loop stops
    // there).
    pub fn query_at(&self, idx: usize) -> DbQuery<'_> {
        match self {
            SqlProgram::Ops(ops) => DbQuery::Stmt(&ops[idx]),
            SqlProgram::Compiled(run) => DbQuery::Step {
                step: &run.plan.steps[idx],
                params: &run.params,
                demand: run.demands[idx],
            },
        }
    }

    /// True when query `idx` modifies the database.
    // jade-audit: allow(hot-panic): idx is the dispatcher's program
    // counter, bounded by this program's len().
    pub fn is_write_at(&self, idx: usize) -> bool {
        match self {
            SqlProgram::Ops(ops) => ops[idx].is_write(),
            SqlProgram::Compiled(run) => run.plan.steps[idx].is_write(),
        }
    }

    /// Total database-tier CPU demand (one replica's worth).
    pub fn db_demand(&self) -> SimDuration {
        match self {
            SqlProgram::Ops(ops) => ops
                .iter()
                .fold(SimDuration::ZERO, |acc, op| acc + op.demand),
            SqlProgram::Compiled(run) => run
                .demands
                .iter()
                .fold(SimDuration::ZERO, |acc, d| acc + *d),
        }
    }

    /// True when at least one query writes.
    pub fn has_write(&self) -> bool {
        match self {
            SqlProgram::Ops(ops) => ops.iter().any(SqlOp::is_write),
            SqlProgram::Compiled(run) => run.plan.writes,
        }
    }

    /// Borrows the interpreted statement list. Panics on a compiled run —
    /// callers that need statements must go through [`SqlProgram::query_at`]
    /// or materialize via [`PlanStep::statement`].
    pub fn as_ops(&self) -> &[SqlOp] {
        match self {
            SqlProgram::Ops(ops) => ops,
            SqlProgram::Compiled(run) => {
                panic!("as_ops on a compiled run of {:?}", run.plan.name)
            }
        }
    }

    /// Consumes the program into an interpreted statement list,
    /// materializing statements from a compiled run (test/bench helper —
    /// the hot path never converts).
    pub fn into_ops(self) -> Vec<SqlOp> {
        match self {
            SqlProgram::Ops(ops) => ops,
            SqlProgram::Compiled(run) => run
                .plan
                .steps
                .iter()
                .zip(run.demands.iter())
                .map(|(step, demand)| SqlOp::new(step.statement(&run.params), *demand))
                .collect(),
        }
    }
}

/// The fully resolved work plan of one dynamic web interaction: servlet
/// CPU, then a sequence of SQL queries, then response generation CPU.
///
/// The workload generator (jade-rubis) instantiates one of these per
/// emulated client request, with concrete keys and randomized demands.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionPlan {
    /// Interaction name (one of RUBiS's 26, e.g. `"SearchItemsByCategory"`).
    pub name: &'static str,
    /// Servlet CPU demand before the first query.
    pub pre_demand: SimDuration,
    /// Database queries, executed sequentially.
    pub sql: SqlProgram,
    /// Servlet CPU demand after the last query (page generation).
    pub post_demand: SimDuration,
    /// Response size (network serialization).
    pub response_bytes: u64,
}

impl InteractionPlan {
    /// A static-document interaction (served by the web tier alone).
    pub fn static_page(name: &'static str, demand: SimDuration, bytes: u64) -> Self {
        InteractionPlan {
            name,
            pre_demand: demand,
            sql: SqlProgram::Ops(Vec::new()),
            post_demand: SimDuration::ZERO,
            response_bytes: bytes,
        }
    }

    /// Total application-tier CPU demand.
    pub fn servlet_demand(&self) -> SimDuration {
        self.pre_demand + self.post_demand
    }

    /// Total database-tier CPU demand (one replica's worth).
    pub fn db_demand(&self) -> SimDuration {
        self.sql.db_demand()
    }

    /// True when at least one query writes.
    pub fn has_write(&self) -> bool {
        self.sql.has_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Operand, StepOp};
    use crate::sql::Schema;

    #[test]
    fn demand_accounting() {
        let schema = Schema::builder()
            .table("items", &["name"])
            .table("bids", &["bid"])
            .build();
        let plan = InteractionPlan {
            name: "ViewItem",
            pre_demand: SimDuration::from_millis(3),
            sql: SqlProgram::Ops(vec![
                SqlOp::new(
                    schema.select_by_key("items", 1),
                    SimDuration::from_millis(10),
                ),
                SqlOp::new(
                    schema.insert("bids", &[("bid", Value::Int(5))]),
                    SimDuration::from_millis(8),
                ),
            ]),
            post_demand: SimDuration::from_millis(4),
            response_bytes: 4000,
        };
        assert_eq!(plan.servlet_demand(), SimDuration::from_millis(7));
        assert_eq!(plan.db_demand(), SimDuration::from_millis(18));
        assert!(plan.has_write());
    }

    #[test]
    fn static_pages_have_no_sql() {
        let p = InteractionPlan::static_page("index.html", SimDuration::from_micros(500), 2000);
        assert!(p.sql.is_empty());
        assert!(!p.has_write());
        assert_eq!(p.db_demand(), SimDuration::ZERO);
    }

    #[test]
    fn compiled_runs_answer_the_same_questions_as_ops() {
        let schema = Schema::builder().table("items", &["name"]).build();
        let t = schema.must_table("items");
        let plan: &'static CompiledPlan = Box::leak(Box::new(CompiledPlan::new(
            "ViewItem",
            vec![
                PlanStep {
                    op: StepOp::ReadKey {
                        table: t,
                        key: Operand::Param(0),
                    },
                    demand: SimDuration::from_millis(10),
                },
                PlanStep {
                    op: StepOp::Insert {
                        table: t,
                        row: vec![Operand::Const(Value::Null)],
                    },
                    demand: SimDuration::from_millis(8),
                },
            ],
            1,
        )));
        let sql = SqlProgram::Compiled(CompiledRun {
            plan,
            params: vec![Value::Int(7)],
            demands: vec![SimDuration::from_millis(11), SimDuration::from_millis(9)],
        });
        assert_eq!(sql.len(), 2);
        assert!(!sql.is_empty());
        assert!(!sql.is_write_at(0));
        assert!(sql.is_write_at(1));
        assert!(sql.has_write());
        assert_eq!(sql.db_demand(), SimDuration::from_millis(20));
        let q = sql.query_at(0);
        assert!(!q.is_write());
        assert_eq!(q.demand(), SimDuration::from_millis(11));
        // The materialized fallback carries the jittered demands and the
        // resolved statements.
        let ops = sql.into_ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(*ops[0].statement, schema.select_by_key("items", 7));
        assert_eq!(ops[0].demand, SimDuration::from_millis(11));
        assert!(ops[1].is_write());
    }
}
