//! Request-level types flowing through the multi-tier architecture
//! (paper §2, Figure 1: client → web/app server → database).

use crate::sql::Statement;
use jade_sim::SimDuration;
use std::sync::Arc;

/// Unique id of one client HTTP interaction end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// One database query a servlet issues, with its execution cost on a
/// database node.
///
/// The statement is `Arc`-shared: cloning a plan, broadcasting a write to
/// N mirrored backends and appending to the recovery log all reuse the
/// one prepared statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlOp {
    /// The statement to execute.
    pub statement: Arc<Statement>,
    /// CPU demand on the executing MySQL node.
    pub demand: SimDuration,
}

impl SqlOp {
    /// Builds a query op from a freshly prepared statement.
    pub fn new(statement: Statement, demand: SimDuration) -> Self {
        SqlOp {
            statement: Arc::new(statement),
            demand,
        }
    }

    /// Builds a query op sharing an already-prepared statement (e.g. the
    /// constant `COUNT(*)` reads the RUBiS mix reissues verbatim).
    pub fn shared(statement: Arc<Statement>, demand: SimDuration) -> Self {
        SqlOp { statement, demand }
    }

    /// True when the op modifies the database.
    pub fn is_write(&self) -> bool {
        self.statement.is_write()
    }
}

/// The fully resolved work plan of one dynamic web interaction: servlet
/// CPU, then a sequence of SQL queries, then response generation CPU.
///
/// The workload generator (jade-rubis) instantiates one of these per
/// emulated client request, with concrete keys and randomized demands.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionPlan {
    /// Interaction name (one of RUBiS's 26, e.g. `"SearchItemsByCategory"`).
    pub name: &'static str,
    /// Servlet CPU demand before the first query.
    pub pre_demand: SimDuration,
    /// Database queries, executed sequentially.
    pub sql: Vec<SqlOp>,
    /// Servlet CPU demand after the last query (page generation).
    pub post_demand: SimDuration,
    /// Response size (network serialization).
    pub response_bytes: u64,
}

impl InteractionPlan {
    /// A static-document interaction (served by the web tier alone).
    pub fn static_page(name: &'static str, demand: SimDuration, bytes: u64) -> Self {
        InteractionPlan {
            name,
            pre_demand: demand,
            sql: Vec::new(),
            post_demand: SimDuration::ZERO,
            response_bytes: bytes,
        }
    }

    /// Total application-tier CPU demand.
    pub fn servlet_demand(&self) -> SimDuration {
        self.pre_demand + self.post_demand
    }

    /// Total database-tier CPU demand (one replica's worth).
    pub fn db_demand(&self) -> SimDuration {
        self.sql
            .iter()
            .fold(SimDuration::ZERO, |acc, op| acc + op.demand)
    }

    /// True when at least one query writes.
    pub fn has_write(&self) -> bool {
        self.sql.iter().any(SqlOp::is_write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::{Schema, Value};

    #[test]
    fn demand_accounting() {
        let schema = Schema::builder()
            .table("items", &["name"])
            .table("bids", &["bid"])
            .build();
        let plan = InteractionPlan {
            name: "ViewItem",
            pre_demand: SimDuration::from_millis(3),
            sql: vec![
                SqlOp::new(
                    schema.select_by_key("items", 1),
                    SimDuration::from_millis(10),
                ),
                SqlOp::new(
                    schema.insert("bids", &[("bid", Value::Int(5))]),
                    SimDuration::from_millis(8),
                ),
            ],
            post_demand: SimDuration::from_millis(4),
            response_bytes: 4000,
        };
        assert_eq!(plan.servlet_demand(), SimDuration::from_millis(7));
        assert_eq!(plan.db_demand(), SimDuration::from_millis(18));
        assert!(plan.has_write());
    }

    #[test]
    fn static_pages_have_no_sql() {
        let p = InteractionPlan::static_page("index.html", SimDuration::from_micros(500), 2000);
        assert!(p.sql.is_empty());
        assert!(!p.has_write());
        assert_eq!(p.db_demand(), SimDuration::ZERO);
    }
}
