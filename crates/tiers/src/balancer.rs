//! Generic HTTP load balancer state, shared by PLB (in front of the
//! replicated Tomcat servers) and the L4 switch (in front of the
//! replicated Apache servers) — paper §2: "a particular (hardware or
//! software) component in front of the cluster of replicated servers …
//! different load balancing algorithms may be used, e.g. Random,
//! Round-Robin".

use crate::server::ServerId;
use jade_sim::SimRng;

/// Worker-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Cycle deterministically through workers.
    RoundRobin,
    /// Uniform random worker.
    Random,
}

/// Errors from the balancer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BalancerError {
    /// No worker is registered / enabled.
    NoWorker,
    /// Worker already present.
    DuplicateWorker(ServerId),
    /// Worker not present.
    UnknownWorker(ServerId),
}

impl std::fmt::Display for BalancerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BalancerError::NoWorker => write!(f, "no worker available"),
            BalancerError::DuplicateWorker(id) => write!(f, "worker {id:?} already registered"),
            BalancerError::UnknownWorker(id) => write!(f, "worker {id:?} not registered"),
        }
    }
}

impl std::error::Error for BalancerError {}

/// Distributes requests over a dynamic set of worker servers.
#[derive(Debug, Clone)]
pub struct HttpBalancer {
    workers: Vec<ServerId>,
    policy: BalancePolicy,
    cursor: usize,
}

impl HttpBalancer {
    /// Creates an empty balancer.
    pub fn new(policy: BalancePolicy) -> Self {
        HttpBalancer {
            workers: Vec::new(),
            policy,
            cursor: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// Swaps the policy at run time (ablation experiments).
    pub fn set_policy(&mut self, policy: BalancePolicy) {
        self.policy = policy;
    }

    /// Adds a worker to the rotation.
    pub fn add_worker(&mut self, id: ServerId) -> Result<(), BalancerError> {
        if self.workers.contains(&id) {
            return Err(BalancerError::DuplicateWorker(id));
        }
        self.workers.push(id);
        Ok(())
    }

    /// Removes a worker from the rotation.
    pub fn remove_worker(&mut self, id: ServerId) -> Result<(), BalancerError> {
        let before = self.workers.len();
        self.workers.retain(|&w| w != id);
        if self.workers.len() == before {
            return Err(BalancerError::UnknownWorker(id));
        }
        self.cursor = 0;
        Ok(())
    }

    /// Current workers, in registration order.
    pub fn workers(&self) -> &[ServerId] {
        &self.workers
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no worker is registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Picks a worker for the next request.
    // jade-audit: allow(hot-panic): both arms index modulo/below
    // workers.len(), which the guard above ensures is nonzero.
    pub fn route(&mut self, rng: &mut SimRng) -> Result<ServerId, BalancerError> {
        if self.workers.is_empty() {
            return Err(BalancerError::NoWorker);
        }
        Ok(match self.policy {
            BalancePolicy::RoundRobin => {
                let id = self.workers[self.cursor % self.workers.len()];
                self.cursor = (self.cursor + 1) % self.workers.len();
                id
            }
            BalancePolicy::Random => self.workers[rng.below(self.workers.len())],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair() {
        let mut b = HttpBalancer::new(BalancePolicy::RoundRobin);
        b.add_worker(ServerId(1)).unwrap();
        b.add_worker(ServerId(2)).unwrap();
        let mut rng = SimRng::seed_from_u64(0);
        let picks: Vec<_> = (0..4).map(|_| b.route(&mut rng).unwrap()).collect();
        assert_eq!(
            picks,
            vec![ServerId(1), ServerId(2), ServerId(1), ServerId(2)]
        );
    }

    #[test]
    fn random_covers_all_workers() {
        let mut b = HttpBalancer::new(BalancePolicy::Random);
        for i in 0..3 {
            b.add_worker(ServerId(i)).unwrap();
        }
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = jade_sim::DetHashSet::default();
        for _ in 0..100 {
            seen.insert(b.route(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn membership_errors() {
        let mut b = HttpBalancer::new(BalancePolicy::RoundRobin);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(b.route(&mut rng), Err(BalancerError::NoWorker));
        b.add_worker(ServerId(1)).unwrap();
        assert_eq!(
            b.add_worker(ServerId(1)),
            Err(BalancerError::DuplicateWorker(ServerId(1)))
        );
        assert_eq!(
            b.remove_worker(ServerId(2)),
            Err(BalancerError::UnknownWorker(ServerId(2)))
        );
        b.remove_worker(ServerId(1)).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn removal_mid_rotation_stays_valid() {
        let mut b = HttpBalancer::new(BalancePolicy::RoundRobin);
        for i in 0..3 {
            b.add_worker(ServerId(i)).unwrap();
        }
        let mut rng = SimRng::seed_from_u64(0);
        b.route(&mut rng).unwrap();
        b.route(&mut rng).unwrap();
        b.remove_worker(ServerId(0)).unwrap();
        // Cursor reset: routing still works and only live workers appear.
        for _ in 0..10 {
            let w = b.route(&mut rng).unwrap();
            assert_ne!(w, ServerId(0));
        }
    }
}
