//! The MySQL storage engine: fixed-layout keyed rows executing the
//! interned mini-SQL dialect of [`crate::sql`].
//!
//! Each database replica holds "a full copy of the whole database (full
//! mirroring)" (paper §4.1), so the engine exposes a content digest used
//! by the consistency tests to prove that a late-joining replica converges
//! to the same state after recovery-log replay.
//!
//! Performance shape (the request hot path of every simulated RUBiS
//! interaction):
//!
//! * statements arrive pre-interned — no name hashing or lookup per
//!   request, table and column references are direct indices;
//! * rows are dense: keys are assigned monotonically and never reused, so
//!   a table is a `Vec<Option<SharedRow>>` indexed by key — `SelectByKey`
//!   is one bounds check;
//! * equality-filter columns declared in the [`crate::sql::Schema`] carry
//!   secondary hash indexes with key-sorted posting lists, making
//!   `SelectWhere` O(matches) while preserving the key-ordered,
//!   limit-truncated result the naive full scan produced;
//! * `Count` reads a maintained live-row counter;
//! * results share rows by `Arc` — no row contents are cloned; updates
//!   copy-on-write only when a result still holds the row.
//!
//! [`Database::digest`] reproduces the replaced name-keyed engine's digest
//! byte for byte (tables in name order, columns in name order, `Null`s
//! skipped), which is what lets `tests/storage_prop.rs` prove digest
//! parity against `jade_bench::NaiveDatabase`.
//!
//! Replication support (RAIDb-1 execute-once): a write executed through
//! [`Database::execute_capture`] additionally emits a [`WriteDelta`] — the
//! physical effect of the statement with its row image `Arc`-shared — and
//! [`Database::apply_delta`] replays that effect on a mirrored replica
//! without re-evaluating the statement, so the whole cluster performs one
//! row allocation per write. Tables are themselves `Arc`'d copy-on-write:
//! [`Database::snapshot`] is an O(#tables) checkpoint and
//! [`Database::from_snapshot`] an O(#tables) restore; a restored replica
//! deep-copies a table only when a later write actually touches it.

use crate::plan::{CompiledPlan, PlanStep, StepOp};
use crate::sql::{
    ColId, ExecSummary, QueryResult, Schema, SharedRow, SqlError, Statement, TableId, Value,
};
use jade_sim::{id_u16, DetHashMap};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One secondary index: filter value → keys of matching rows, kept
/// sorted ascending (keys are assigned monotonically, so insertion is an
/// O(1) push; only update/delete need a binary-searched removal). Uses
/// the workspace-wide deterministic fx hasher ([`jade_sim::det`]) — no
/// per-process random state, a few ns per value instead of SipHash's
/// tens. Posting lists are `Arc`'d so a copy-on-write table unshare
/// (first write after [`Database::snapshot`]) clones the map skeleton
/// but shares every posting allocation; only postings actually mutated
/// afterwards are copied.
type Index = DetHashMap<Value, Arc<Vec<u64>>>;

/// Rows per [`RowStore`] chunk. Small enough that unsharing one chunk
/// after a snapshot is cheap, large enough that the per-chunk `Arc`
/// overhead stays invisible next to the row allocations themselves.
const ROW_CHUNK: usize = 256;

/// Dense primary-key row storage in fixed-size `Arc`'d chunks.
///
/// Slot `k` holds the row with key `k`; deleted rows leave a hole (keys
/// are never reused, so the total slot count is the next key). Chunking
/// makes the store copy-on-write at chunk granularity: cloning it (the
/// first write to a table after [`Database::snapshot`]) copies
/// O(#chunks) pointers, and only chunks actually written afterwards are
/// deep-copied. A replica catching up from a checkpoint therefore does
/// work proportional to the delta tail it applies, not to table size.
#[derive(Debug, Clone, Default, PartialEq)]
struct RowStore {
    chunks: Vec<Arc<Vec<Option<SharedRow>>>>,
    /// Total slots across all chunks (== the next key).
    slots: usize,
}

impl RowStore {
    /// Appends a row at the next key.
    fn push(&mut self, row: SharedRow) {
        if self.slots.is_multiple_of(ROW_CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(ROW_CHUNK)));
        }
        let chunk = self.chunks.last_mut().expect("chunk just ensured");
        Arc::make_mut(chunk).push(Some(row));
        self.slots += 1;
    }

    /// The row at `key`, if present.
    fn get(&self, key: u64) -> Option<&SharedRow> {
        let k = key as usize;
        if k >= self.slots {
            return None;
        }
        self.chunks[k / ROW_CHUNK][k % ROW_CHUNK].as_ref()
    }

    /// Removes and returns the row at `key`. Checks occupancy through a
    /// shared reference first so a miss never unshares the chunk.
    // jade-audit: allow(hot-panic): chunk index k / ROW_CHUNK is in
    // bounds because the guard on the previous line rejects k >= slots,
    // and slots never exceeds chunks.len() * ROW_CHUNK.
    fn take(&mut self, key: u64) -> Option<SharedRow> {
        let k = key as usize;
        if k >= self.slots || self.chunks[k / ROW_CHUNK][k % ROW_CHUNK].is_none() {
            return None;
        }
        Arc::make_mut(&mut self.chunks[k / ROW_CHUNK])[k % ROW_CHUNK].take()
    }

    /// Stores `row` at `key` (slot must already exist).
    fn set(&mut self, key: u64, row: SharedRow) {
        let k = key as usize;
        Arc::make_mut(&mut self.chunks[k / ROW_CHUNK])[k % ROW_CHUNK] = Some(row);
    }

    /// Iterates `(key, row)` pairs in key order.
    fn iter(&self) -> impl Iterator<Item = (u64, &SharedRow)> {
        self.chunks.iter().enumerate().flat_map(|(c, chunk)| {
            chunk
                .iter()
                .enumerate()
                .filter_map(move |(i, r)| r.as_ref().map(|r| ((c * ROW_CHUNK + i) as u64, r)))
        })
    }
}

/// One table: dense rows indexed directly by primary key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    created: bool,
    rows: RowStore,
    live: usize,
    /// Parallel to the schema's column list; `Some` for indexed columns.
    indexes: Vec<Option<Index>>,
}

impl Table {
    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates `(key, row)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SharedRow)> {
        self.rows.iter()
    }

    fn next_key(&self) -> u64 {
        self.rows.slots as u64
    }

    fn index_insert(&mut self, col: ColId, value: &Value, key: u64) {
        if value.is_null() {
            return;
        }
        if let Some(Some(idx)) = self.indexes.get_mut(col.0 as usize) {
            let posting = Arc::make_mut(idx.entry(value.clone()).or_default());
            debug_assert!(posting.last().is_none_or(|&last| last < key));
            posting.push(key);
        }
    }

    /// Inserts `key` into the posting list of `value`, preserving sort
    /// order (updates can introduce keys below the current maximum).
    fn index_insert_sorted(&mut self, col: ColId, value: &Value, key: u64) {
        if value.is_null() {
            return;
        }
        if let Some(Some(idx)) = self.indexes.get_mut(col.0 as usize) {
            let posting = Arc::make_mut(idx.entry(value.clone()).or_default());
            if let Err(pos) = posting.binary_search(&key) {
                posting.insert(pos, key);
            }
        }
    }

    fn index_remove(&mut self, col: ColId, value: &Value, key: u64) {
        if value.is_null() {
            return;
        }
        if let Some(Some(idx)) = self.indexes.get_mut(col.0 as usize) {
            if let Some(posting) = idx.get_mut(value) {
                let posting = Arc::make_mut(posting);
                if let Ok(pos) = posting.binary_search(&key) {
                    posting.remove(pos);
                }
                if posting.is_empty() {
                    idx.remove(value);
                }
            }
        }
    }
}

/// The physical effect of one write statement, captured by the replica
/// that executed it ([`Database::execute_capture`]) and applied verbatim
/// everywhere else ([`Database::apply_delta`]). Row images are
/// [`SharedRow`]s: broadcasting a delta to N mirrored replicas shares one
/// allocation cluster-wide instead of re-constructing the row N times.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteDelta {
    /// `CREATE TABLE` (idempotent, like the statement).
    CreateTable {
        /// Table created.
        table: TableId,
    },
    /// A row was inserted at `key` (always the table's next dense key).
    Insert {
        /// Table inserted into.
        table: TableId,
        /// Key the primary assigned (deterministic per-table counter).
        key: u64,
        /// The inserted row image, shared with the primary's slot.
        row: SharedRow,
    },
    /// The row at `key` was replaced by `row`; `changed` lists the
    /// columns whose value actually changed (the index entries to move —
    /// old values are read from the applying replica's identical row).
    Update {
        /// Table updated.
        table: TableId,
        /// Key of the updated row.
        key: u64,
        /// The full post-update row image, shared with the primary.
        row: SharedRow,
        /// Columns whose value changed (no-op column sets are skipped).
        changed: Vec<ColId>,
    },
    /// The row at `key` was removed.
    Delete {
        /// Table deleted from.
        table: TableId,
        /// Key of the removed row.
        key: u64,
    },
    /// The write affected nothing (update/delete of a missing key).
    Noop,
}

/// A copy-on-write checkpoint of a database's full contents: cloning,
/// taking and restoring are all O(#tables) reference bumps. A restored
/// replica shares every table with the snapshot until a write touches it
/// (`Arc::make_mut` then deep-copies just that table).
#[derive(Debug, Clone)]
pub struct Snapshot {
    schema: Arc<Schema>,
    tables: Vec<Arc<Table>>,
}

/// An in-memory relational database over an interned [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Database {
    schema: Arc<Schema>,
    /// Parallel to `schema`'s table list. Each table is `Arc`'d so
    /// snapshots and base-image restores share structure; the write path
    /// pays one pointer check (`Arc::make_mut`) per statement and a deep
    /// copy only on the first write after a snapshot was taken.
    tables: Vec<Arc<Table>>,
}

impl Database {
    /// Creates an empty database over `schema` (tables exist in the
    /// catalog but are not *created* until a `CREATE TABLE` executes).
    pub fn new(schema: Arc<Schema>) -> Self {
        let tables = (0..schema.len())
            .map(|_| Arc::new(Table::default()))
            .collect();
        Database { schema, tables }
    }

    /// Takes a copy-on-write checkpoint of the current contents.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            schema: Arc::clone(&self.schema),
            tables: self.tables.clone(),
        }
    }

    /// Materializes a database from a checkpoint (O(#tables); table
    /// contents stay shared with the snapshot until written).
    pub fn from_snapshot(snap: &Snapshot) -> Database {
        Database {
            schema: Arc::clone(&snap.schema),
            tables: snap.tables.clone(),
        }
    }

    /// The schema this database executes against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    #[cold]
    fn no_such_table(&self, table: TableId) -> SqlError {
        SqlError::NoSuchTable(self.schema.table_name(table).to_owned())
    }

    fn table_ref(&self, id: TableId) -> Result<&Table, SqlError> {
        match self.tables.get(id.0 as usize) {
            Some(t) if t.created => Ok(t),
            _ => Err(self.no_such_table(id)),
        }
    }

    /// Mutable access to a created table (copy-on-write: deep-copies the
    /// table only when a snapshot or base image still shares it).
    // jade-audit: allow(hot-panic): every caller validates the TableId
    // through table_ref on the preceding line; ids come from compiled
    // plans resolved against this same catalog.
    fn table_mut(&mut self, id: TableId) -> &mut Table {
        Arc::make_mut(&mut self.tables[id.0 as usize])
    }

    /// Executes a statement, materializing a [`QueryResult`] (row contents
    /// stay `Arc`-shared with the table).
    ///
    /// Key assignment is deterministic (per-table counter), so executing
    /// the same statement sequence on two replicas yields identical
    /// databases — the invariant C-JDBC's full-mirroring replication
    /// depends on.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult, SqlError> {
        let mut rows = Vec::new();
        let summary = self.execute_into(stmt, &mut rows)?;
        Ok(match summary {
            ExecSummary::Ack {
                inserted_key,
                affected,
            } => QueryResult::Ack {
                inserted_key,
                affected,
            },
            ExecSummary::Rows(_) => QueryResult::Rows(rows),
            ExecSummary::Count(n) => QueryResult::Count(n),
        })
    }

    /// Executes a statement into a caller-owned row buffer (cleared
    /// first) — the allocation-free hot path each MySQL server drives
    /// with its reused scratch buffer.
    pub fn execute_into(
        &mut self,
        stmt: &Statement,
        out: &mut Vec<(u64, SharedRow)>,
    ) -> Result<ExecSummary, SqlError> {
        out.clear();
        match stmt {
            Statement::CreateTable { table } => {
                self.create_table(*table)?;
                Ok(ExecSummary::Ack {
                    inserted_key: None,
                    affected: 0,
                })
            }
            Statement::Insert { table, row } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                debug_assert_eq!(
                    row.len(),
                    t.indexes.len(),
                    "insert row width must match the table layout"
                );
                let key = t.next_key();
                for (ci, v) in row.iter().enumerate() {
                    t.index_insert(ColId(id_u16(ci)), v, key);
                }
                t.rows.push(Arc::new(row.clone()));
                t.live += 1;
                Ok(ExecSummary::Ack {
                    inserted_key: Some(key),
                    affected: 1,
                })
            }
            Statement::Update { table, key, set } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                // Take the row out of its slot so the table's reference
                // doesn't count against copy-on-write: `make_mut` clones
                // contents only when a query result still shares the row.
                let affected = match t.rows.take(*key) {
                    Some(mut shared) => {
                        for (col, v) in set {
                            let old = &shared[col.0 as usize];
                            if *old == *v {
                                continue;
                            }
                            let old = old.clone();
                            t.index_remove(*col, &old, *key);
                            t.index_insert_sorted(*col, v, *key);
                            Arc::make_mut(&mut shared)[col.0 as usize] = v.clone();
                        }
                        t.rows.set(*key, shared);
                        1
                    }
                    None => 0,
                };
                Ok(ExecSummary::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::Delete { table, key } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                let removed = t.rows.take(*key);
                let affected = match removed {
                    Some(row) => {
                        t.live -= 1;
                        for (ci, v) in row.iter().enumerate() {
                            t.index_remove(ColId(id_u16(ci)), v, *key);
                        }
                        1
                    }
                    None => 0,
                };
                Ok(ExecSummary::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::SelectByKey { table, key } => {
                let t = self.table_ref(*table)?;
                if let Some(row) = t.rows.get(*key) {
                    out.push((*key, Arc::clone(row)));
                }
                Ok(ExecSummary::Rows(out.len()))
            }
            Statement::SelectWhere {
                table,
                column,
                value,
                limit,
            } => {
                let t = self.table_ref(*table)?;
                // A NULL filter matches nothing (absent columns are not
                // equal to an explicit NULL — the historical engine never
                // stored them at all).
                if value.is_null() {
                    return Ok(ExecSummary::Rows(0));
                }
                match t.indexes.get(column.0 as usize) {
                    Some(Some(idx)) => {
                        if let Some(posting) = idx.get(value) {
                            for &key in posting.iter().take(*limit) {
                                let row = t.rows.get(key).expect("indexed row");
                                out.push((key, Arc::clone(row)));
                            }
                        }
                    }
                    _ => {
                        // Unindexed column: key-ordered scan, identical
                        // result order to the index path.
                        for (key, row) in t.iter() {
                            if out.len() >= *limit {
                                break;
                            }
                            if row[column.0 as usize] == *value {
                                out.push((key, Arc::clone(row)));
                            }
                        }
                    }
                }
                Ok(ExecSummary::Rows(out.len()))
            }
            Statement::Count { table } => {
                Ok(ExecSummary::Count(self.table_ref(*table)?.live as u64))
            }
        }
    }

    /// Executes one compiled-plan step into a caller-owned row buffer
    /// (cleared first) — the opcode counterpart of
    /// [`Database::execute_into`], with identical semantics per operation
    /// (the differential property suite proves result-for-result,
    /// error-for-error and digest-for-digest parity). The step's operands
    /// resolve against `params`, the request's typed parameter buffer.
    // jade-audit: allow(hot-panic, hot-alloc): column offsets come from
    // compiled plans resolved against this catalog, and index postings
    // only hold live row keys (the expect); the Arc::new/collect is the
    // one materialization of an inserted row, which downstream tiers and
    // replicas then share by reference.
    pub fn execute_step_into(
        &mut self,
        step: &PlanStep,
        params: &[Value],
        out: &mut Vec<(u64, SharedRow)>,
    ) -> Result<ExecSummary, SqlError> {
        out.clear();
        match &step.op {
            StepOp::ReadKey { table, key } => {
                let t = self.table_ref(*table)?;
                let k = key.resolve(params).as_key();
                if let Some(row) = t.rows.get(k) {
                    out.push((k, Arc::clone(row)));
                }
                Ok(ExecSummary::Rows(out.len()))
            }
            StepOp::Scan {
                table,
                column,
                value,
                limit,
            } => {
                let t = self.table_ref(*table)?;
                let value = value.resolve(params);
                // A NULL filter matches nothing (same rule as the
                // interpreted `SelectWhere`).
                if value.is_null() {
                    return Ok(ExecSummary::Rows(0));
                }
                match t.indexes.get(column.0 as usize) {
                    Some(Some(idx)) => {
                        if let Some(posting) = idx.get(value) {
                            for &key in posting.iter().take(*limit) {
                                let row = t.rows.get(key).expect("indexed row");
                                out.push((key, Arc::clone(row)));
                            }
                        }
                    }
                    _ => {
                        for (key, row) in t.iter() {
                            if out.len() >= *limit {
                                break;
                            }
                            if row[column.0 as usize] == *value {
                                out.push((key, Arc::clone(row)));
                            }
                        }
                    }
                }
                Ok(ExecSummary::Rows(out.len()))
            }
            StepOp::Count { table } => Ok(ExecSummary::Count(self.table_ref(*table)?.live as u64)),
            StepOp::Insert { table, row } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                debug_assert_eq!(
                    row.len(),
                    t.indexes.len(),
                    "insert row template width must match the table layout"
                );
                // The row materializes straight from template + params —
                // one allocation, no intermediate statement row.
                let shared: SharedRow =
                    Arc::new(row.iter().map(|o| o.resolve(params).clone()).collect());
                let key = t.next_key();
                for (ci, v) in shared.iter().enumerate() {
                    t.index_insert(ColId(id_u16(ci)), v, key);
                }
                t.rows.push(shared);
                t.live += 1;
                Ok(ExecSummary::Ack {
                    inserted_key: Some(key),
                    affected: 1,
                })
            }
            StepOp::Update { table, key, set } => {
                self.table_ref(*table)?;
                let k = key.resolve(params).as_key();
                let t = self.table_mut(*table);
                let affected = match t.rows.take(k) {
                    Some(mut shared) => {
                        for (col, operand) in set {
                            let v = operand.resolve(params);
                            let old = &shared[col.0 as usize];
                            if *old == *v {
                                continue;
                            }
                            let old = old.clone();
                            t.index_remove(*col, &old, k);
                            t.index_insert_sorted(*col, v, k);
                            Arc::make_mut(&mut shared)[col.0 as usize] = v.clone();
                        }
                        t.rows.set(k, shared);
                        1
                    }
                    None => 0,
                };
                Ok(ExecSummary::Ack {
                    inserted_key: None,
                    affected,
                })
            }
        }
    }

    /// Executes a compiled *write* step once, capturing its physical
    /// effect as a [`WriteDelta`] — the opcode counterpart of
    /// [`Database::execute_capture`], feeding the same execute-once
    /// broadcast path (primary captures, replicas apply).
    pub fn execute_step_capture(
        &mut self,
        step: &PlanStep,
        params: &[Value],
    ) -> Result<(ExecSummary, WriteDelta), SqlError> {
        debug_assert!(step.is_write(), "execute_step_capture is for writes only");
        match &step.op {
            StepOp::Insert { table, row } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                debug_assert_eq!(
                    row.len(),
                    t.indexes.len(),
                    "insert row template width must match the table layout"
                );
                let shared: SharedRow =
                    Arc::new(row.iter().map(|o| o.resolve(params).clone()).collect());
                let key = t.next_key();
                for (ci, v) in shared.iter().enumerate() {
                    t.index_insert(ColId(id_u16(ci)), v, key);
                }
                t.rows.push(Arc::clone(&shared));
                t.live += 1;
                Ok((
                    ExecSummary::Ack {
                        inserted_key: Some(key),
                        affected: 1,
                    },
                    WriteDelta::Insert {
                        table: *table,
                        key,
                        row: shared,
                    },
                ))
            }
            StepOp::Update { table, key, set } => {
                self.table_ref(*table)?;
                let k = key.resolve(params).as_key();
                let t = self.table_mut(*table);
                match t.rows.take(k) {
                    Some(mut shared) => {
                        let mut changed = Vec::with_capacity(set.len());
                        for (col, operand) in set {
                            let v = operand.resolve(params);
                            let old = &shared[col.0 as usize];
                            if *old == *v {
                                continue;
                            }
                            let old = old.clone();
                            t.index_remove(*col, &old, k);
                            t.index_insert_sorted(*col, v, k);
                            Arc::make_mut(&mut shared)[col.0 as usize] = v.clone();
                            changed.push(*col);
                        }
                        let image = Arc::clone(&shared);
                        t.rows.set(k, shared);
                        Ok((
                            ExecSummary::Ack {
                                inserted_key: None,
                                affected: 1,
                            },
                            WriteDelta::Update {
                                table: *table,
                                key: k,
                                row: image,
                                changed,
                            },
                        ))
                    }
                    None => Ok((
                        ExecSummary::Ack {
                            inserted_key: None,
                            affected: 0,
                        },
                        WriteDelta::Noop,
                    )),
                }
            }
            _ => unreachable!("execute_step_capture is for writes only"),
        }
    }

    /// Executes a *read* step as a pure count probe, without materializing
    /// any rows. Plan compilation proves the consumer discards row bodies
    /// (the RUBiS workload only ever observes the [`ExecSummary`] — demand
    /// accounting and outcome digests are summary-derived), so key reads
    /// reduce to a presence check and indexed scans to a posting-length
    /// probe: every posting entry maps to a live row (the materializing
    /// path `expect`s exactly that), hence the cardinality is
    /// `min(posting.len(), limit)`. The interpreter cannot perform this
    /// dead-value elimination on opaque `Statement` trees because its row
    /// buffer is part of the statement-level API contract. Summary parity
    /// with [`Database::execute_step_into`] is enforced by the
    /// differential property suite.
    // jade-audit: allow(hot-panic): column offsets come from compiled
    // plans resolved against this catalog, so row[column] is within the
    // table's fixed width.
    pub fn read_step_summary(
        &self,
        step: &PlanStep,
        params: &[Value],
    ) -> Result<ExecSummary, SqlError> {
        match &step.op {
            StepOp::ReadKey { table, key } => {
                let t = self.table_ref(*table)?;
                let k = key.resolve(params).as_key();
                Ok(ExecSummary::Rows(usize::from(t.rows.get(k).is_some())))
            }
            StepOp::Scan {
                table,
                column,
                value,
                limit,
            } => {
                let t = self.table_ref(*table)?;
                let value = value.resolve(params);
                if value.is_null() {
                    return Ok(ExecSummary::Rows(0));
                }
                let n = match t.indexes.get(column.0 as usize) {
                    Some(Some(idx)) => idx
                        .get(value)
                        .map_or(0, |posting| posting.len().min(*limit)),
                    _ => {
                        let mut n = 0usize;
                        for (_, row) in t.iter() {
                            if n >= *limit {
                                break;
                            }
                            if row[column.0 as usize] == *value {
                                n += 1;
                            }
                        }
                        n
                    }
                };
                Ok(ExecSummary::Rows(n))
            }
            StepOp::Count { table } => Ok(ExecSummary::Count(self.table_ref(*table)?.live as u64)),
            StepOp::Insert { .. } | StepOp::Update { .. } => {
                unreachable!("read_step_summary is for reads only")
            }
        }
    }

    /// Runs a whole compiled program in one call against this replica:
    /// write steps execute through the opcode write path, read steps run
    /// as count-only probes ([`Database::read_step_summary`]) since the
    /// program's consumers never observe row bodies; returns the
    /// accumulated result cardinality (a cheap checksum for benches and
    /// tests). Individual step errors are tolerated exactly like the
    /// dispatch path tolerates statement errors — the failed step
    /// contributes nothing.
    pub fn execute_plan(
        &mut self,
        plan: &CompiledPlan,
        params: &[Value],
        scratch: &mut Vec<(u64, SharedRow)>,
    ) -> u64 {
        let mut acc = 0u64;
        for step in &plan.steps {
            let summary = if step.is_write() {
                self.execute_step_into(step, params, scratch)
            } else {
                self.read_step_summary(step, params)
            };
            if let Ok(summary) = summary {
                acc += summary.cardinality();
            }
        }
        acc
    }

    /// Marks a catalog table created, building its secondary indexes
    /// (idempotent — shared by the statement and delta paths).
    #[cold]
    fn create_table(&mut self, table: TableId) -> Result<(), SqlError> {
        let t = self
            .tables
            .get_mut(table.0 as usize)
            .ok_or(SqlError::NoSuchTable("?".to_owned()))?;
        let t = Arc::make_mut(t);
        if !t.created {
            t.created = true;
            let def = self.schema.table(table).expect("table in catalog");
            t.indexes = vec![None; def.width()];
            for &col in def.indexed() {
                t.indexes[col.0 as usize] = Some(Index::default());
            }
        }
        Ok(())
    }

    /// Executes a *write* statement once, additionally capturing its
    /// physical effect as a [`WriteDelta`] for broadcast: the RAIDb-1
    /// primary runs this, every other replica runs
    /// [`Database::apply_delta`] on the result. The row image inside the
    /// delta is the same `Arc` installed in this database's slot.
    pub fn execute_capture(
        &mut self,
        stmt: &Statement,
    ) -> Result<(ExecSummary, WriteDelta), SqlError> {
        debug_assert!(stmt.is_write(), "execute_capture is for writes only");
        match stmt {
            Statement::CreateTable { table } => {
                self.create_table(*table)?;
                Ok((
                    ExecSummary::Ack {
                        inserted_key: None,
                        affected: 0,
                    },
                    WriteDelta::CreateTable { table: *table },
                ))
            }
            Statement::Insert { table, row } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                debug_assert_eq!(
                    row.len(),
                    t.indexes.len(),
                    "insert row width must match the table layout"
                );
                let key = t.next_key();
                for (ci, v) in row.iter().enumerate() {
                    t.index_insert(ColId(id_u16(ci)), v, key);
                }
                let shared: SharedRow = Arc::new(row.clone());
                t.rows.push(Arc::clone(&shared));
                t.live += 1;
                Ok((
                    ExecSummary::Ack {
                        inserted_key: Some(key),
                        affected: 1,
                    },
                    WriteDelta::Insert {
                        table: *table,
                        key,
                        row: shared,
                    },
                ))
            }
            Statement::Update { table, key, set } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                match t.rows.take(*key) {
                    Some(mut shared) => {
                        let mut changed = Vec::with_capacity(set.len());
                        for (col, v) in set {
                            let old = &shared[col.0 as usize];
                            if *old == *v {
                                continue;
                            }
                            let old = old.clone();
                            t.index_remove(*col, &old, *key);
                            t.index_insert_sorted(*col, v, *key);
                            Arc::make_mut(&mut shared)[col.0 as usize] = v.clone();
                            changed.push(*col);
                        }
                        let image = Arc::clone(&shared);
                        t.rows.set(*key, shared);
                        Ok((
                            ExecSummary::Ack {
                                inserted_key: None,
                                affected: 1,
                            },
                            WriteDelta::Update {
                                table: *table,
                                key: *key,
                                row: image,
                                changed,
                            },
                        ))
                    }
                    None => Ok((
                        ExecSummary::Ack {
                            inserted_key: None,
                            affected: 0,
                        },
                        WriteDelta::Noop,
                    )),
                }
            }
            Statement::Delete { table, key } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                match t.rows.take(*key) {
                    Some(row) => {
                        t.live -= 1;
                        for (ci, v) in row.iter().enumerate() {
                            t.index_remove(ColId(id_u16(ci)), v, *key);
                        }
                        Ok((
                            ExecSummary::Ack {
                                inserted_key: None,
                                affected: 1,
                            },
                            WriteDelta::Delete {
                                table: *table,
                                key: *key,
                            },
                        ))
                    }
                    None => Ok((
                        ExecSummary::Ack {
                            inserted_key: None,
                            affected: 0,
                        },
                        WriteDelta::Noop,
                    )),
                }
            }
            _ => unreachable!("execute_capture is for writes only"),
        }
    }

    /// Applies a captured [`WriteDelta`] to this replica without
    /// re-evaluating the originating statement. Deltas must be applied in
    /// log order onto a replica whose state matches the primary's at
    /// capture time (the RAIDb-1 full-mirroring invariant); row images are
    /// installed by reference, so the whole cluster shares one allocation
    /// per row.
    // jade-audit: allow(hot-panic): the delta was produced by the primary
    // against the same schema, so its column offsets are within the
    // replica's identical table widths.
    pub fn apply_delta(&mut self, delta: &WriteDelta) -> Result<(), SqlError> {
        match delta {
            WriteDelta::CreateTable { table } => self.create_table(*table),
            WriteDelta::Insert { table, key, row } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                debug_assert_eq!(*key, t.next_key(), "deltas apply in log order");
                for (ci, v) in row.iter().enumerate() {
                    t.index_insert(ColId(id_u16(ci)), v, *key);
                }
                t.rows.push(Arc::clone(row));
                t.live += 1;
                Ok(())
            }
            WriteDelta::Update {
                table,
                key,
                row,
                changed,
            } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                match t.rows.take(*key) {
                    Some(old) => {
                        // The replica's pre-image equals the primary's, so
                        // the old index entries are read from it directly.
                        for &col in changed {
                            t.index_remove(col, &old[col.0 as usize], *key);
                            t.index_insert_sorted(col, &row[col.0 as usize], *key);
                        }
                        t.rows.set(*key, Arc::clone(row));
                        Ok(())
                    }
                    None => Ok(()),
                }
            }
            WriteDelta::Delete { table, key } => {
                self.table_ref(*table)?;
                let t = self.table_mut(*table);
                if let Some(row) = t.rows.take(*key) {
                    t.live -= 1;
                    for (ci, v) in row.iter().enumerate() {
                        t.index_remove(ColId(id_u16(ci)), v, *key);
                    }
                }
                Ok(())
            }
            WriteDelta::Noop => Ok(()),
        }
    }

    /// Created-table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.schema
            .sorted_tables()
            .iter()
            .filter(|&&ti| self.tables[ti as usize].created)
            .map(|&ti| self.schema.table(TableId(ti)).expect("in catalog").name())
            .collect()
    }

    /// Looks up a created table by name.
    pub fn get_table(&self, name: &str) -> Option<&Table> {
        let id = self.schema.table_id(name)?;
        let t = &self.tables[id.0 as usize];
        t.created.then_some(t)
    }

    /// Total number of live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Content digest: equal digests ⇔ equal contents (up to hash
    /// collisions). Used to check replica convergence. Iteration order is
    /// stable over interned ids (tables and columns in name order, `Null`
    /// columns skipped), reproducing the replaced name-keyed engine's
    /// digest byte for byte.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for &ti in self.schema.sorted_tables() {
            let table = &self.tables[ti as usize];
            if !table.created {
                continue;
            }
            let def = self.schema.table(TableId(ti)).expect("in catalog");
            def.name().hash(&mut h);
            table.next_key().hash(&mut h);
            for (key, row) in table.iter() {
                key.hash(&mut h);
                for &ci in def.sorted_cols() {
                    match &row[ci as usize] {
                        Value::Null => {}
                        Value::Int(i) => {
                            def.column(ColId(ci)).hash(&mut h);
                            i.hash(&mut h);
                        }
                        Value::Text(s) => {
                            def.column(ColId(ci)).hash(&mut h);
                            s.hash(&mut h);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Value;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .table("users", &["name"])
            .table("t", &["a", "b"])
            .table("x", &["v"])
            .index("t", "a")
            .build()
    }

    fn db() -> Database {
        Database::new(schema())
    }

    #[test]
    fn crud_roundtrip() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("users")).unwrap();
        let r = db
            .execute(&schema.insert("users", &[("name", "alice".into())]))
            .unwrap();
        let key = match r {
            QueryResult::Ack {
                inserted_key: Some(k),
                ..
            } => k,
            other => panic!("unexpected {other:?}"),
        };
        // Read it back.
        let rows = db.execute(&schema.select_by_key("users", key)).unwrap();
        assert_eq!(rows.cardinality(), 1);
        // Update and verify.
        db.execute(&schema.update("users", key, &[("name", "bob".into())]))
            .unwrap();
        if let QueryResult::Rows(rows) = db
            .execute(&schema.select_where("users", "name", "bob".into(), 10))
            .unwrap()
        {
            assert_eq!(rows.len(), 1);
        } else {
            panic!("expected rows");
        }
        // Delete.
        db.execute(&schema.delete("users", key)).unwrap();
        assert_eq!(
            db.execute(&schema.count("users")).unwrap(),
            QueryResult::Count(0)
        );
    }

    #[test]
    fn missing_table_is_an_error() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        // "x" is in the catalog but was never created.
        assert_eq!(
            db.execute(&schema.count("x")),
            Err(SqlError::NoSuchTable("x".into()))
        );
    }

    #[test]
    fn create_table_is_idempotent() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        db.execute(&schema.create_table("t")).unwrap();
        assert_eq!(db.total_rows(), 1, "re-create must not wipe the table");
    }

    #[test]
    fn update_missing_row_affects_zero() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        let r = db
            .execute(&schema.update("t", 99, &[("a", Value::Int(1))]))
            .unwrap();
        assert_eq!(
            r,
            QueryResult::Ack {
                inserted_key: None,
                affected: 0
            }
        );
    }

    #[test]
    fn identical_statement_sequences_yield_identical_digests() {
        let schema = schema();
        let ins = |v: i64| schema.insert("t", &[("a", Value::Int(v))]);
        let stmts = vec![
            schema.create_table("t"),
            ins(1),
            ins(2),
            schema.delete("t", 0),
            ins(3),
        ];
        let mut a = db();
        let mut b = db();
        for s in &stmts {
            a.execute(s).unwrap();
            b.execute(s).unwrap();
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        // Divergence is detected.
        b.execute(&ins(9)).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn keys_are_not_reused_after_delete() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        db.execute(&schema.delete("t", 0)).unwrap();
        let r = db
            .execute(&schema.insert("t", &[("a", Value::Int(2))]))
            .unwrap();
        assert_eq!(
            r,
            QueryResult::Ack {
                inserted_key: Some(1),
                affected: 1
            }
        );
    }

    #[test]
    fn indexed_and_scanned_selects_agree() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        for i in 0..20i64 {
            db.execute(&schema.insert("t", &[("a", Value::Int(i % 3)), ("b", Value::Int(i % 3))]))
                .unwrap();
        }
        // Column "a" is indexed, "b" is not; both hold i % 3, so the
        // index path and the scan path must return identical rows.
        let via_index = db
            .execute(&schema.select_where("t", "a", Value::Int(1), 4))
            .unwrap();
        let via_scan = db
            .execute(&schema.select_where("t", "b", Value::Int(1), 4))
            .unwrap();
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index.cardinality(), 4);
        if let QueryResult::Rows(rows) = &via_index {
            let keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, vec![1, 4, 7, 10], "key order with limit");
        }
    }

    #[test]
    fn index_tracks_updates_and_deletes() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        for _ in 0..3 {
            db.execute(&schema.insert("t", &[("a", Value::Int(7))]))
                .unwrap();
        }
        db.execute(&schema.update("t", 1, &[("a", Value::Int(8))]))
            .unwrap();
        db.execute(&schema.delete("t", 0)).unwrap();
        let hits = db
            .execute(&schema.select_where("t", "a", Value::Int(7), 10))
            .unwrap();
        assert_eq!(
            hits.cardinality(),
            1,
            "one row moved to 8, one deleted, one remains"
        );
        let moved = db
            .execute(&schema.select_where("t", "a", Value::Int(8), 10))
            .unwrap();
        assert_eq!(moved.cardinality(), 1);
    }

    #[test]
    fn null_filters_match_nothing() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        // Row with "b" absent (Null in the fixed layout).
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        for col in ["a", "b"] {
            let r = db
                .execute(&schema.select_where("t", col, Value::Null, 10))
                .unwrap();
            assert_eq!(r.cardinality(), 0, "NULL filter on {col}");
        }
    }

    /// Runs `stmts` through a primary with `execute_capture`, mirroring
    /// each delta onto `replica`; returns the primary.
    fn mirror(stmts: &[Statement], replica: &mut Database) -> Database {
        let mut primary = db();
        for s in stmts {
            match primary.execute_capture(s) {
                Ok((_, delta)) => replica.apply_delta(&delta).unwrap(),
                Err(e) => {
                    // The replica re-derives the same error.
                    assert_eq!(replica.execute(s).unwrap_err(), e);
                }
            }
        }
        primary
    }

    #[test]
    fn delta_applied_replica_matches_reexecution() {
        let schema = schema();
        let stmts = vec![
            schema.create_table("t"),
            schema.insert("t", &[("a", Value::Int(1)), ("b", "x".into())]),
            schema.insert("t", &[("a", Value::Int(2))]),
            schema.update("t", 0, &[("a", Value::Int(2)), ("b", Value::Null)]),
            // No-op column set: the delta must not move index entries.
            schema.update("t", 1, &[("a", Value::Int(2))]),
            schema.delete("t", 0),
            // Missing-key update/delete capture as Noop.
            schema.update("t", 99, &[("a", Value::Int(5))]),
            schema.delete("t", 42),
            schema.insert("t", &[("a", Value::Int(3))]),
        ];
        let mut via_delta = db();
        let primary = mirror(&stmts, &mut via_delta);
        let mut reexecuted = db();
        for s in &stmts {
            let _ = reexecuted.execute(s);
        }
        assert_eq!(primary.digest(), reexecuted.digest());
        assert_eq!(via_delta.digest(), reexecuted.digest());
        assert_eq!(via_delta, reexecuted);
        // Index maintenance carried over: the indexed lookup agrees.
        let q = schema.select_where("t", "a", Value::Int(2), 10);
        assert_eq!(via_delta.execute(&q), reexecuted.execute(&q));
    }

    #[test]
    fn capture_shares_one_row_allocation_with_replicas() {
        let schema = schema();
        let mut primary = db();
        let mut r1 = db();
        let mut r2 = db();
        let (_, delta) = primary.execute_capture(&schema.create_table("t")).unwrap();
        r1.apply_delta(&delta).unwrap();
        r2.apply_delta(&delta).unwrap();
        let (_, delta) = primary
            .execute_capture(&schema.insert("t", &[("a", Value::Int(7))]))
            .unwrap();
        let row = match &delta {
            WriteDelta::Insert { row, .. } => Arc::clone(row),
            other => panic!("unexpected {other:?}"),
        };
        r1.apply_delta(&delta).unwrap();
        r2.apply_delta(&delta).unwrap();
        drop(delta);
        // primary + r1 + r2 + our probe hold the single allocation.
        assert_eq!(Arc::strong_count(&row), 4);
    }

    #[test]
    fn snapshot_restore_and_tail_converges() {
        let schema = schema();
        let mut primary = db();
        primary.execute(&schema.create_table("t")).unwrap();
        for i in 0..50i64 {
            primary
                .execute(&schema.insert("t", &[("a", Value::Int(i % 5))]))
                .unwrap();
        }
        let snap = primary.snapshot();
        // Writes after the checkpoint, captured as deltas.
        let mut tail = Vec::new();
        for i in 0..10i64 {
            let (_, d) = primary
                .execute_capture(&schema.insert("t", &[("a", Value::Int(100 + i))]))
                .unwrap();
            tail.push(d);
        }
        let (_, d) = primary.execute_capture(&schema.delete("t", 3)).unwrap();
        tail.push(d);
        // Joiner: restore + tail.
        let mut joiner = Database::from_snapshot(&snap);
        for d in &tail {
            joiner.apply_delta(d).unwrap();
        }
        assert_eq!(joiner.digest(), primary.digest());
        // The snapshot itself is unperturbed by both the primary's and
        // the joiner's post-checkpoint writes (copy-on-write).
        let frozen = Database::from_snapshot(&snap);
        assert_eq!(frozen.total_rows(), 50);
    }

    #[test]
    fn snapshot_is_cheap_and_isolated_from_later_writes() {
        let schema = schema();
        let mut a = db();
        a.execute(&schema.create_table("t")).unwrap();
        a.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        let snap = a.snapshot();
        let before = Database::from_snapshot(&snap).digest();
        a.execute(&schema.update("t", 0, &[("a", Value::Int(9))]))
            .unwrap();
        a.execute(&schema.insert("t", &[("a", Value::Int(2))]))
            .unwrap();
        assert_eq!(Database::from_snapshot(&snap).digest(), before);
        assert_ne!(a.digest(), before);
    }

    #[test]
    fn selects_share_rows_without_cloning_contents() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        let held = match db.execute(&schema.select_by_key("t", 0)).unwrap() {
            QueryResult::Rows(rows) => rows[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        // An update while a result holds the row copies-on-write: the
        // held row keeps its old contents.
        db.execute(&schema.update("t", 0, &[("a", Value::Int(2))]))
            .unwrap();
        assert_eq!(held[0], Value::Int(1));
        let now = match db.execute(&schema.select_by_key("t", 0)).unwrap() {
            QueryResult::Rows(rows) => rows[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(now[0], Value::Int(2));
    }
}
