//! The MySQL storage engine: tables of keyed rows, executing the mini-SQL
//! dialect of [`crate::sql`].
//!
//! Each database replica holds "a full copy of the whole database (full
//! mirroring)" (paper §4.1), so the engine exposes a content digest used
//! by the consistency tests to prove that a late-joining replica converges
//! to the same state after recovery-log replay.

use crate::sql::{QueryResult, Row, SqlError, Statement};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// One table: rows keyed by a monotonically assigned primary key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    rows: BTreeMap<u64, Row>,
    next_key: u64,
}

impl Table {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates `(key, row)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &Row)> {
        self.rows.iter()
    }
}

/// An in-memory relational database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes a statement.
    ///
    /// Key assignment is deterministic (per-table counter), so executing
    /// the same statement sequence on two replicas yields identical
    /// databases — the invariant C-JDBC's full-mirroring replication
    /// depends on.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult, SqlError> {
        match stmt {
            Statement::CreateTable { table } => {
                self.tables.entry(table.clone()).or_default();
                Ok(QueryResult::Ack {
                    inserted_key: None,
                    affected: 0,
                })
            }
            Statement::Insert { table, row } => {
                let t = self.table_mut(table)?;
                let key = t.next_key;
                t.next_key += 1;
                t.rows.insert(key, row.clone());
                Ok(QueryResult::Ack {
                    inserted_key: Some(key),
                    affected: 1,
                })
            }
            Statement::Update { table, key, set } => {
                let t = self.table_mut(table)?;
                let affected = match t.rows.get_mut(key) {
                    Some(r) => {
                        for (col, v) in set {
                            r.insert(col.clone(), v.clone());
                        }
                        1
                    }
                    None => 0,
                };
                Ok(QueryResult::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::Delete { table, key } => {
                let t = self.table_mut(table)?;
                let affected = u64::from(t.rows.remove(key).is_some());
                Ok(QueryResult::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::SelectByKey { table, key } => {
                let t = self.table(table)?;
                Ok(QueryResult::Rows(
                    t.rows
                        .get(key)
                        .map(|r| vec![(*key, r.clone())])
                        .unwrap_or_default(),
                ))
            }
            Statement::SelectWhere {
                table,
                column,
                value,
                limit,
            } => {
                let t = self.table(table)?;
                let rows: Vec<(u64, Row)> = t
                    .rows
                    .iter()
                    .filter(|(_, r)| r.get(column) == Some(value))
                    .take(*limit)
                    .map(|(k, r)| (*k, r.clone()))
                    .collect();
                Ok(QueryResult::Rows(rows))
            }
            Statement::Count { table } => {
                Ok(QueryResult::Count(self.table(table)?.rows.len() as u64))
            }
        }
    }

    fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(name)
            .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| SqlError::NoSuchTable(name.to_owned()))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Looks up a table by name.
    pub fn get_table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Content digest: equal digests ⇔ equal contents (up to hash
    /// collisions). Used to check replica convergence.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (name, table) in &self.tables {
            name.hash(&mut h);
            table.next_key.hash(&mut h);
            for (key, row) in &table.rows {
                key.hash(&mut h);
                for (col, v) in row {
                    col.hash(&mut h);
                    match v {
                        crate::sql::Value::Int(i) => i.hash(&mut h),
                        crate::sql::Value::Text(s) => s.hash(&mut h),
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::{row, Value};

    fn insert(table: &str, cols: &[(&str, Value)]) -> Statement {
        Statement::Insert {
            table: table.into(),
            row: row(cols),
        }
    }

    #[test]
    fn crud_roundtrip() {
        let mut db = Database::new();
        db.execute(&Statement::CreateTable {
            table: "users".into(),
        })
        .unwrap();
        let r = db
            .execute(&insert("users", &[("name", "alice".into())]))
            .unwrap();
        let key = match r {
            QueryResult::Ack {
                inserted_key: Some(k),
                ..
            } => k,
            other => panic!("unexpected {other:?}"),
        };
        // Read it back.
        let rows = db
            .execute(&Statement::SelectByKey {
                table: "users".into(),
                key,
            })
            .unwrap();
        assert_eq!(rows.cardinality(), 1);
        // Update and verify.
        db.execute(&Statement::Update {
            table: "users".into(),
            key,
            set: row(&[("name", "bob".into())]),
        })
        .unwrap();
        if let QueryResult::Rows(rows) = db
            .execute(&Statement::SelectWhere {
                table: "users".into(),
                column: "name".into(),
                value: "bob".into(),
                limit: 10,
            })
            .unwrap()
        {
            assert_eq!(rows.len(), 1);
        } else {
            panic!("expected rows");
        }
        // Delete.
        db.execute(&Statement::Delete {
            table: "users".into(),
            key,
        })
        .unwrap();
        assert_eq!(
            db.execute(&Statement::Count {
                table: "users".into()
            })
            .unwrap(),
            QueryResult::Count(0)
        );
    }

    #[test]
    fn missing_table_is_an_error() {
        let mut db = Database::new();
        assert_eq!(
            db.execute(&Statement::Count { table: "x".into() }),
            Err(SqlError::NoSuchTable("x".into()))
        );
    }

    #[test]
    fn create_table_is_idempotent() {
        let mut db = Database::new();
        db.execute(&Statement::CreateTable { table: "t".into() })
            .unwrap();
        db.execute(&insert("t", &[("a", Value::Int(1))])).unwrap();
        db.execute(&Statement::CreateTable { table: "t".into() })
            .unwrap();
        assert_eq!(db.total_rows(), 1, "re-create must not wipe the table");
    }

    #[test]
    fn update_missing_row_affects_zero() {
        let mut db = Database::new();
        db.execute(&Statement::CreateTable { table: "t".into() })
            .unwrap();
        let r = db
            .execute(&Statement::Update {
                table: "t".into(),
                key: 99,
                set: row(&[("a", Value::Int(1))]),
            })
            .unwrap();
        assert_eq!(
            r,
            QueryResult::Ack {
                inserted_key: None,
                affected: 0
            }
        );
    }

    #[test]
    fn identical_statement_sequences_yield_identical_digests() {
        let stmts = vec![
            Statement::CreateTable { table: "t".into() },
            insert("t", &[("a", Value::Int(1))]),
            insert("t", &[("a", Value::Int(2))]),
            Statement::Delete {
                table: "t".into(),
                key: 0,
            },
            insert("t", &[("a", Value::Int(3))]),
        ];
        let mut a = Database::new();
        let mut b = Database::new();
        for s in &stmts {
            a.execute(s).unwrap();
            b.execute(s).unwrap();
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        // Divergence is detected.
        b.execute(&insert("t", &[("a", Value::Int(9))])).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn keys_are_not_reused_after_delete() {
        let mut db = Database::new();
        db.execute(&Statement::CreateTable { table: "t".into() })
            .unwrap();
        db.execute(&insert("t", &[("a", Value::Int(1))])).unwrap();
        db.execute(&Statement::Delete {
            table: "t".into(),
            key: 0,
        })
        .unwrap();
        let r = db.execute(&insert("t", &[("a", Value::Int(2))])).unwrap();
        assert_eq!(
            r,
            QueryResult::Ack {
                inserted_key: Some(1),
                affected: 1
            }
        );
    }
}
