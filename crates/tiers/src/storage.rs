//! The MySQL storage engine: fixed-layout keyed rows executing the
//! interned mini-SQL dialect of [`crate::sql`].
//!
//! Each database replica holds "a full copy of the whole database (full
//! mirroring)" (paper §4.1), so the engine exposes a content digest used
//! by the consistency tests to prove that a late-joining replica converges
//! to the same state after recovery-log replay.
//!
//! Performance shape (the request hot path of every simulated RUBiS
//! interaction):
//!
//! * statements arrive pre-interned — no name hashing or lookup per
//!   request, table and column references are direct indices;
//! * rows are dense: keys are assigned monotonically and never reused, so
//!   a table is a `Vec<Option<SharedRow>>` indexed by key — `SelectByKey`
//!   is one bounds check;
//! * equality-filter columns declared in the [`crate::sql::Schema`] carry
//!   secondary hash indexes with key-sorted posting lists, making
//!   `SelectWhere` O(matches) while preserving the key-ordered,
//!   limit-truncated result the naive full scan produced;
//! * `Count` reads a maintained live-row counter;
//! * results share rows by `Arc` — no row contents are cloned; updates
//!   copy-on-write only when a result still holds the row.
//!
//! [`Database::digest`] reproduces the replaced name-keyed engine's digest
//! byte for byte (tables in name order, columns in name order, `Null`s
//! skipped), which is what lets `tests/storage_prop.rs` prove digest
//! parity against `jade_bench::NaiveDatabase`.

use crate::sql::{
    ColId, ExecSummary, QueryResult, Schema, SharedRow, SqlError, Statement, TableId, Value,
};
use jade_sim::{id_u16, DetHashMap};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One secondary index: filter value → keys of matching rows, kept
/// sorted ascending (keys are assigned monotonically, so insertion is an
/// O(1) push; only update/delete need a binary-searched removal). Uses
/// the workspace-wide deterministic fx hasher ([`jade_sim::det`]) — no
/// per-process random state, a few ns per value instead of SipHash's
/// tens.
type Index = DetHashMap<Value, Vec<u64>>;

/// One table: dense rows indexed directly by primary key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    created: bool,
    /// Slot `k` holds the row with key `k`; deleted rows leave a hole
    /// (keys are never reused, `rows.len()` is the next key).
    rows: Vec<Option<SharedRow>>,
    live: usize,
    /// Parallel to the schema's column list; `Some` for indexed columns.
    indexes: Vec<Option<Index>>,
}

impl Table {
    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates `(key, row)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &SharedRow)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(k, r)| r.as_ref().map(|r| (k as u64, r)))
    }

    fn next_key(&self) -> u64 {
        self.rows.len() as u64
    }

    fn index_insert(&mut self, col: ColId, value: &Value, key: u64) {
        if value.is_null() {
            return;
        }
        if let Some(Some(idx)) = self.indexes.get_mut(col.0 as usize) {
            let posting = idx.entry(value.clone()).or_default();
            debug_assert!(posting.last().is_none_or(|&last| last < key));
            posting.push(key);
        }
    }

    /// Inserts `key` into the posting list of `value`, preserving sort
    /// order (updates can introduce keys below the current maximum).
    fn index_insert_sorted(&mut self, col: ColId, value: &Value, key: u64) {
        if value.is_null() {
            return;
        }
        if let Some(Some(idx)) = self.indexes.get_mut(col.0 as usize) {
            let posting = idx.entry(value.clone()).or_default();
            if let Err(pos) = posting.binary_search(&key) {
                posting.insert(pos, key);
            }
        }
    }

    fn index_remove(&mut self, col: ColId, value: &Value, key: u64) {
        if value.is_null() {
            return;
        }
        if let Some(Some(idx)) = self.indexes.get_mut(col.0 as usize) {
            if let Some(posting) = idx.get_mut(value) {
                if let Ok(pos) = posting.binary_search(&key) {
                    posting.remove(pos);
                }
                if posting.is_empty() {
                    idx.remove(value);
                }
            }
        }
    }
}

/// An in-memory relational database over an interned [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Database {
    schema: Arc<Schema>,
    /// Parallel to `schema`'s table list.
    tables: Vec<Table>,
}

impl Database {
    /// Creates an empty database over `schema` (tables exist in the
    /// catalog but are not *created* until a `CREATE TABLE` executes).
    pub fn new(schema: Arc<Schema>) -> Self {
        let tables = (0..schema.len()).map(|_| Table::default()).collect();
        Database { schema, tables }
    }

    /// The schema this database executes against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn no_such_table(&self, table: TableId) -> SqlError {
        SqlError::NoSuchTable(self.schema.table_name(table).to_owned())
    }

    fn table_ref(&self, id: TableId) -> Result<&Table, SqlError> {
        match self.tables.get(id.0 as usize) {
            Some(t) if t.created => Ok(t),
            _ => Err(self.no_such_table(id)),
        }
    }

    /// Executes a statement, materializing a [`QueryResult`] (row contents
    /// stay `Arc`-shared with the table).
    ///
    /// Key assignment is deterministic (per-table counter), so executing
    /// the same statement sequence on two replicas yields identical
    /// databases — the invariant C-JDBC's full-mirroring replication
    /// depends on.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult, SqlError> {
        let mut rows = Vec::new();
        let summary = self.execute_into(stmt, &mut rows)?;
        Ok(match summary {
            ExecSummary::Ack {
                inserted_key,
                affected,
            } => QueryResult::Ack {
                inserted_key,
                affected,
            },
            ExecSummary::Rows(_) => QueryResult::Rows(rows),
            ExecSummary::Count(n) => QueryResult::Count(n),
        })
    }

    /// Executes a statement into a caller-owned row buffer (cleared
    /// first) — the allocation-free hot path each MySQL server drives
    /// with its reused scratch buffer.
    pub fn execute_into(
        &mut self,
        stmt: &Statement,
        out: &mut Vec<(u64, SharedRow)>,
    ) -> Result<ExecSummary, SqlError> {
        out.clear();
        match stmt {
            Statement::CreateTable { table } => {
                let t = self
                    .tables
                    .get_mut(table.0 as usize)
                    .ok_or(SqlError::NoSuchTable("?".to_owned()))?;
                if !t.created {
                    t.created = true;
                    let def = self.schema.table(*table).expect("table in catalog");
                    t.indexes = vec![None; def.width()];
                    for &col in def.indexed() {
                        t.indexes[col.0 as usize] = Some(Index::default());
                    }
                }
                Ok(ExecSummary::Ack {
                    inserted_key: None,
                    affected: 0,
                })
            }
            Statement::Insert { table, row } => {
                self.table_ref(*table)?;
                let t = &mut self.tables[table.0 as usize];
                debug_assert_eq!(
                    row.len(),
                    t.indexes.len(),
                    "insert row width must match the table layout"
                );
                let key = t.next_key();
                for (ci, v) in row.iter().enumerate() {
                    t.index_insert(ColId(id_u16(ci)), v, key);
                }
                t.rows.push(Some(Arc::new(row.clone())));
                t.live += 1;
                Ok(ExecSummary::Ack {
                    inserted_key: Some(key),
                    affected: 1,
                })
            }
            Statement::Update { table, key, set } => {
                self.table_ref(*table)?;
                let t = &mut self.tables[table.0 as usize];
                // Take the row out of its slot so the table's reference
                // doesn't count against copy-on-write: `make_mut` clones
                // contents only when a query result still shares the row.
                let affected = match t.rows.get_mut(*key as usize).and_then(Option::take) {
                    Some(mut shared) => {
                        for (col, v) in set {
                            let old = &shared[col.0 as usize];
                            if *old == *v {
                                continue;
                            }
                            let old = old.clone();
                            t.index_remove(*col, &old, *key);
                            t.index_insert_sorted(*col, v, *key);
                            Arc::make_mut(&mut shared)[col.0 as usize] = v.clone();
                        }
                        t.rows[*key as usize] = Some(shared);
                        1
                    }
                    None => 0,
                };
                Ok(ExecSummary::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::Delete { table, key } => {
                self.table_ref(*table)?;
                let t = &mut self.tables[table.0 as usize];
                let removed = t.rows.get_mut(*key as usize).and_then(Option::take);
                let affected = match removed {
                    Some(row) => {
                        t.live -= 1;
                        for (ci, v) in row.iter().enumerate() {
                            t.index_remove(ColId(id_u16(ci)), v, *key);
                        }
                        1
                    }
                    None => 0,
                };
                Ok(ExecSummary::Ack {
                    inserted_key: None,
                    affected,
                })
            }
            Statement::SelectByKey { table, key } => {
                let t = self.table_ref(*table)?;
                if let Some(Some(row)) = t.rows.get(*key as usize) {
                    out.push((*key, Arc::clone(row)));
                }
                Ok(ExecSummary::Rows(out.len()))
            }
            Statement::SelectWhere {
                table,
                column,
                value,
                limit,
            } => {
                let t = self.table_ref(*table)?;
                // A NULL filter matches nothing (absent columns are not
                // equal to an explicit NULL — the historical engine never
                // stored them at all).
                if value.is_null() {
                    return Ok(ExecSummary::Rows(0));
                }
                match t.indexes.get(column.0 as usize) {
                    Some(Some(idx)) => {
                        if let Some(posting) = idx.get(value) {
                            for &key in posting.iter().take(*limit) {
                                let row = t.rows[key as usize].as_ref().expect("indexed row");
                                out.push((key, Arc::clone(row)));
                            }
                        }
                    }
                    _ => {
                        // Unindexed column: key-ordered scan, identical
                        // result order to the index path.
                        for (key, row) in t.iter() {
                            if out.len() >= *limit {
                                break;
                            }
                            if row[column.0 as usize] == *value {
                                out.push((key, Arc::clone(row)));
                            }
                        }
                    }
                }
                Ok(ExecSummary::Rows(out.len()))
            }
            Statement::Count { table } => {
                Ok(ExecSummary::Count(self.table_ref(*table)?.live as u64))
            }
        }
    }

    /// Created-table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.schema
            .sorted_tables()
            .iter()
            .filter(|&&ti| self.tables[ti as usize].created)
            .map(|&ti| self.schema.table(TableId(ti)).expect("in catalog").name())
            .collect()
    }

    /// Looks up a created table by name.
    pub fn get_table(&self, name: &str) -> Option<&Table> {
        let id = self.schema.table_id(name)?;
        let t = &self.tables[id.0 as usize];
        t.created.then_some(t)
    }

    /// Total number of live rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Content digest: equal digests ⇔ equal contents (up to hash
    /// collisions). Used to check replica convergence. Iteration order is
    /// stable over interned ids (tables and columns in name order, `Null`
    /// columns skipped), reproducing the replaced name-keyed engine's
    /// digest byte for byte.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for &ti in self.schema.sorted_tables() {
            let table = &self.tables[ti as usize];
            if !table.created {
                continue;
            }
            let def = self.schema.table(TableId(ti)).expect("in catalog");
            def.name().hash(&mut h);
            table.next_key().hash(&mut h);
            for (key, row) in table.iter() {
                key.hash(&mut h);
                for &ci in def.sorted_cols() {
                    match &row[ci as usize] {
                        Value::Null => {}
                        Value::Int(i) => {
                            def.column(ColId(ci)).hash(&mut h);
                            i.hash(&mut h);
                        }
                        Value::Text(s) => {
                            def.column(ColId(ci)).hash(&mut h);
                            s.hash(&mut h);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Value;

    fn schema() -> Arc<Schema> {
        Schema::builder()
            .table("users", &["name"])
            .table("t", &["a", "b"])
            .table("x", &["v"])
            .index("t", "a")
            .build()
    }

    fn db() -> Database {
        Database::new(schema())
    }

    #[test]
    fn crud_roundtrip() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("users")).unwrap();
        let r = db
            .execute(&schema.insert("users", &[("name", "alice".into())]))
            .unwrap();
        let key = match r {
            QueryResult::Ack {
                inserted_key: Some(k),
                ..
            } => k,
            other => panic!("unexpected {other:?}"),
        };
        // Read it back.
        let rows = db.execute(&schema.select_by_key("users", key)).unwrap();
        assert_eq!(rows.cardinality(), 1);
        // Update and verify.
        db.execute(&schema.update("users", key, &[("name", "bob".into())]))
            .unwrap();
        if let QueryResult::Rows(rows) = db
            .execute(&schema.select_where("users", "name", "bob".into(), 10))
            .unwrap()
        {
            assert_eq!(rows.len(), 1);
        } else {
            panic!("expected rows");
        }
        // Delete.
        db.execute(&schema.delete("users", key)).unwrap();
        assert_eq!(
            db.execute(&schema.count("users")).unwrap(),
            QueryResult::Count(0)
        );
    }

    #[test]
    fn missing_table_is_an_error() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        // "x" is in the catalog but was never created.
        assert_eq!(
            db.execute(&schema.count("x")),
            Err(SqlError::NoSuchTable("x".into()))
        );
    }

    #[test]
    fn create_table_is_idempotent() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        db.execute(&schema.create_table("t")).unwrap();
        assert_eq!(db.total_rows(), 1, "re-create must not wipe the table");
    }

    #[test]
    fn update_missing_row_affects_zero() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        let r = db
            .execute(&schema.update("t", 99, &[("a", Value::Int(1))]))
            .unwrap();
        assert_eq!(
            r,
            QueryResult::Ack {
                inserted_key: None,
                affected: 0
            }
        );
    }

    #[test]
    fn identical_statement_sequences_yield_identical_digests() {
        let schema = schema();
        let ins = |v: i64| schema.insert("t", &[("a", Value::Int(v))]);
        let stmts = vec![
            schema.create_table("t"),
            ins(1),
            ins(2),
            schema.delete("t", 0),
            ins(3),
        ];
        let mut a = db();
        let mut b = db();
        for s in &stmts {
            a.execute(s).unwrap();
            b.execute(s).unwrap();
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        // Divergence is detected.
        b.execute(&ins(9)).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn keys_are_not_reused_after_delete() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        db.execute(&schema.delete("t", 0)).unwrap();
        let r = db
            .execute(&schema.insert("t", &[("a", Value::Int(2))]))
            .unwrap();
        assert_eq!(
            r,
            QueryResult::Ack {
                inserted_key: Some(1),
                affected: 1
            }
        );
    }

    #[test]
    fn indexed_and_scanned_selects_agree() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        for i in 0..20i64 {
            db.execute(&schema.insert("t", &[("a", Value::Int(i % 3)), ("b", Value::Int(i % 3))]))
                .unwrap();
        }
        // Column "a" is indexed, "b" is not; both hold i % 3, so the
        // index path and the scan path must return identical rows.
        let via_index = db
            .execute(&schema.select_where("t", "a", Value::Int(1), 4))
            .unwrap();
        let via_scan = db
            .execute(&schema.select_where("t", "b", Value::Int(1), 4))
            .unwrap();
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index.cardinality(), 4);
        if let QueryResult::Rows(rows) = &via_index {
            let keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, vec![1, 4, 7, 10], "key order with limit");
        }
    }

    #[test]
    fn index_tracks_updates_and_deletes() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        for _ in 0..3 {
            db.execute(&schema.insert("t", &[("a", Value::Int(7))]))
                .unwrap();
        }
        db.execute(&schema.update("t", 1, &[("a", Value::Int(8))]))
            .unwrap();
        db.execute(&schema.delete("t", 0)).unwrap();
        let hits = db
            .execute(&schema.select_where("t", "a", Value::Int(7), 10))
            .unwrap();
        assert_eq!(
            hits.cardinality(),
            1,
            "one row moved to 8, one deleted, one remains"
        );
        let moved = db
            .execute(&schema.select_where("t", "a", Value::Int(8), 10))
            .unwrap();
        assert_eq!(moved.cardinality(), 1);
    }

    #[test]
    fn null_filters_match_nothing() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        // Row with "b" absent (Null in the fixed layout).
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        for col in ["a", "b"] {
            let r = db
                .execute(&schema.select_where("t", col, Value::Null, 10))
                .unwrap();
            assert_eq!(r.cardinality(), 0, "NULL filter on {col}");
        }
    }

    #[test]
    fn selects_share_rows_without_cloning_contents() {
        let schema = schema();
        let mut db = Database::new(Arc::clone(&schema));
        db.execute(&schema.create_table("t")).unwrap();
        db.execute(&schema.insert("t", &[("a", Value::Int(1))]))
            .unwrap();
        let held = match db.execute(&schema.select_by_key("t", 0)).unwrap() {
            QueryResult::Rows(rows) => rows[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        // An update while a result holds the row copies-on-write: the
        // held row keeps its old contents.
        db.execute(&schema.update("t", 0, &[("a", Value::Int(2))]))
            .unwrap();
        assert_eq!(held[0], Value::Int(1));
        let now = match db.execute(&schema.select_by_key("t", 0)).unwrap() {
            QueryResult::Rows(rows) => rows[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(now[0], Value::Int(2));
    }
}
