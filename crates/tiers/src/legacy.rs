//! The legacy layer: every server process of the J2EE architecture plus
//! the cluster substrate, aggregated behind one value.
//!
//! This is the environment type `E` that the Fractal wrappers
//! ([`crate::wrappers`]) reflect control operations onto — the Rust
//! counterpart of the JVM processes, shell scripts and configuration files
//! Jade manipulated. The simulation application (jade-core) owns a
//! [`LegacyLayer`] and routes virtual-time events through it.
//!
//! Operations that take real time (server boot, recovery-log replay) do
//! not block: they push a delayed [`LegacyEvent`] into an outbox that the
//! enclosing simulation drains into its event queue.

use crate::apache::ApacheServer;
use crate::balancer::{BalancePolicy, HttpBalancer};
use crate::cjdbc::{BackendStatus, CjdbcController, CjdbcError, ReadPolicy};
use crate::mysql::MysqlServer;
use crate::recovery::SyncPlan;
use crate::server::{ServerId, ServerProcess, ServerState, Tier};
use crate::tomcat::TomcatServer;
use jade_cluster::{ClusterManager, Network, NodeId, SoftwareInstallationService};
use jade_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One legacy server process of any tier.
#[derive(Debug)]
pub enum LegacyServer {
    /// Apache httpd.
    Apache(ApacheServer),
    /// Tomcat servlet container.
    Tomcat(TomcatServer),
    /// MySQL replica.
    Mysql(MysqlServer),
    /// C-JDBC database load balancer + consistency manager.
    Cjdbc {
        /// Common process state.
        process: ServerProcess,
        /// JDBC listen port.
        port: u16,
        /// Controller state (membership, recovery log, scheduling).
        ctrl: CjdbcController,
        /// CPU demand on the C-JDBC node to route one query.
        routing_demand: SimDuration,
    },
    /// PLB HTTP load balancer.
    Plb {
        /// Common process state.
        process: ServerProcess,
        /// HTTP listen port.
        port: u16,
        /// Worker rotation.
        balancer: HttpBalancer,
    },
    /// L4 switch in front of replicated Apache servers.
    L4Switch {
        /// Common process state.
        process: ServerProcess,
        /// Worker rotation.
        balancer: HttpBalancer,
    },
}

impl LegacyServer {
    /// Common process record.
    pub fn process(&self) -> &ServerProcess {
        match self {
            LegacyServer::Apache(s) => &s.process,
            LegacyServer::Tomcat(s) => &s.process,
            LegacyServer::Mysql(s) => &s.process,
            LegacyServer::Cjdbc { process, .. } => process,
            LegacyServer::Plb { process, .. } => process,
            LegacyServer::L4Switch { process, .. } => process,
        }
    }

    /// Mutable process record.
    pub fn process_mut(&mut self) -> &mut ServerProcess {
        match self {
            LegacyServer::Apache(s) => &mut s.process,
            LegacyServer::Tomcat(s) => &mut s.process,
            LegacyServer::Mysql(s) => &mut s.process,
            LegacyServer::Cjdbc { process, .. } => process,
            LegacyServer::Plb { process, .. } => process,
            LegacyServer::L4Switch { process, .. } => process,
        }
    }

    /// Software package implementing this server.
    pub fn package(&self) -> &'static str {
        match self {
            LegacyServer::Apache(_) => "apache",
            LegacyServer::Tomcat(_) => "tomcat",
            LegacyServer::Mysql(_) => "mysql",
            LegacyServer::Cjdbc { .. } => "cjdbc",
            LegacyServer::Plb { .. } => "plb",
            LegacyServer::L4Switch { .. } => "plb", // same class of software
        }
    }

    /// Listen port, where meaningful.
    pub fn port(&self) -> u16 {
        match self {
            LegacyServer::Apache(s) => s.port,
            LegacyServer::Tomcat(s) => s.port,
            LegacyServer::Mysql(s) => s.port,
            LegacyServer::Cjdbc { port, .. } => *port,
            LegacyServer::Plb { port, .. } => *port,
            LegacyServer::L4Switch { .. } => 80,
        }
    }
}

/// Deferred consequences of legacy operations, delivered by the enclosing
/// simulation after the given delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegacyEvent {
    /// A starting server finished booting (caller must invoke
    /// [`LegacyLayer::finish_boot`]).
    ServerBooted(ServerId),
    /// A server stopped; in-flight requests on it are lost.
    ServerStopped(ServerId),
    /// A server failed (crash).
    ServerFailed(ServerId),
    /// A recovery-log replay batch finished transferring/executing; the
    /// caller must invoke [`LegacyLayer::cjdbc_replay_batch_done`].
    ReplayBatchDone {
        /// The C-JDBC controller server.
        cjdbc: ServerId,
        /// The backend being synchronized.
        backend: ServerId,
    },
    /// A backend finished state reconciliation and is now active.
    BackendActivated {
        /// The C-JDBC controller server.
        cjdbc: ServerId,
        /// The newly active backend.
        backend: ServerId,
    },
}

/// Errors from legacy-layer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LegacyError {
    /// Unknown server id.
    NoSuchServer(ServerId),
    /// The server is the wrong kind for the operation.
    WrongKind(ServerId),
    /// Life-cycle violation.
    BadState(ServerId, ServerState),
    /// Required software not installed on the node.
    NotInstalled(ServerId, &'static str),
    /// Node is down.
    NodeDown(NodeId),
    /// Forwarded C-JDBC error.
    Cjdbc(CjdbcError),
    /// Forwarded balancer error.
    Balancer(crate::balancer::BalancerError),
    /// Forwarded cluster error.
    Cluster(jade_cluster::ClusterError),
}

impl std::fmt::Display for LegacyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegacyError::NoSuchServer(id) => write!(f, "no such server {id:?}"),
            LegacyError::WrongKind(id) => write!(f, "server {id:?} has the wrong kind"),
            LegacyError::BadState(id, s) => write!(f, "server {id:?} is in state {s:?}"),
            LegacyError::NotInstalled(id, pkg) => {
                write!(f, "server {id:?}: package '{pkg}' is not installed")
            }
            LegacyError::NodeDown(n) => write!(f, "node {n:?} is down"),
            LegacyError::Cjdbc(e) => write!(f, "c-jdbc: {e}"),
            LegacyError::Balancer(e) => write!(f, "balancer: {e}"),
            LegacyError::Cluster(e) => write!(f, "cluster: {e}"),
        }
    }
}

impl std::error::Error for LegacyError {}

impl From<CjdbcError> for LegacyError {
    fn from(e: CjdbcError) -> Self {
        LegacyError::Cjdbc(e)
    }
}
impl From<crate::balancer::BalancerError> for LegacyError {
    fn from(e: crate::balancer::BalancerError) -> Self {
        LegacyError::Balancer(e)
    }
}
impl From<jade_cluster::ClusterError> for LegacyError {
    fn from(e: jade_cluster::ClusterError) -> Self {
        LegacyError::Cluster(e)
    }
}

/// The whole legacy world.
#[derive(Debug)]
pub struct LegacyLayer {
    /// Node pool (Cluster Manager substrate).
    pub cluster: ClusterManager,
    /// LAN model.
    pub net: Network,
    /// Software Installation Service.
    pub sis: SoftwareInstallationService,
    /// Per-node configuration artifacts.
    pub configs: crate::config::ConfigStore,
    servers: BTreeMap<ServerId, LegacyServer>,
    next_server: u32,
    outbox: Vec<(SimDuration, LegacyEvent)>,
    pending_replays: BTreeMap<(ServerId, ServerId), SyncPlan>,
    /// Base database image restored into every new MySQL replica before
    /// it joins the cluster. The cluster-wide invariant is
    /// `base image + recovery log = current state`: writes issued after
    /// the image was taken are covered by the log. Rebuilding the C-JDBC
    /// controller re-snapshots this image from a current replica (the
    /// lost log can no longer bridge from the original dataset dump).
    mysql_base: crate::storage::Database,
    /// The cluster-wide database schema (statements are prepared against
    /// it once; the C-JDBC recovery log renders through it).
    schema: Arc<crate::sql::Schema>,
    /// Time to transfer + execute one recovery-log entry during resync.
    pub replay_cost_per_entry: SimDuration,
    /// Fixed cost to set up a resync session.
    pub replay_setup_cost: SimDuration,
}

impl LegacyLayer {
    /// Creates a legacy layer over a cluster.
    pub fn new(cluster: ClusterManager, net: Network, sis: SoftwareInstallationService) -> Self {
        LegacyLayer {
            cluster,
            net,
            sis,
            configs: crate::config::ConfigStore::new(),
            servers: BTreeMap::new(),
            next_server: 0,
            outbox: Vec::new(),
            pending_replays: BTreeMap::new(),
            mysql_base: crate::storage::Database::new(crate::sql::Schema::empty()),
            schema: crate::sql::Schema::empty(),
            replay_cost_per_entry: SimDuration::from_micros(500),
            replay_setup_cost: SimDuration::from_secs(2),
        }
    }

    /// Sets the cluster schema and the base image restored into new MySQL
    /// replicas by executing a statement dump into a fresh database.
    pub fn set_mysql_dump(
        &mut self,
        schema: Arc<crate::sql::Schema>,
        dump: &[crate::sql::Statement],
    ) {
        let mut db = crate::storage::Database::new(Arc::clone(&schema));
        let mut scratch = Vec::new();
        for stmt in dump {
            let _ = db.execute_into(stmt, &mut scratch);
        }
        self.schema = schema;
        self.mysql_base = db;
    }

    /// Re-snapshots the base image from a live replica's current state
    /// (used when the recovery log was lost with its controller).
    pub fn set_mysql_base_from(&mut self, source: ServerId) -> Result<(), LegacyError> {
        self.mysql_base = self.mysql(source)?.db.clone();
        Ok(())
    }

    /// Assigns the next server id. Ids are sequential and never recycled,
    /// so `ServerId.0` doubles as a small dense index interned at
    /// create-server time: per-server side tables (e.g. the app layer's
    /// accept queues) can be flat `Vec`s indexed by it instead of maps.
    fn fresh_id(&mut self) -> ServerId {
        let id = ServerId(self.next_server);
        self.next_server += 1;
        id
    }

    /// One past the largest `ServerId.0` ever assigned — the length a
    /// dense `Vec` indexed by server id must have to cover every server.
    pub fn server_index_bound(&self) -> usize {
        self.next_server as usize
    }

    /// Drains deferred events; the simulation schedules them.
    pub fn drain_outbox(&mut self) -> Vec<(SimDuration, LegacyEvent)> {
        std::mem::take(&mut self.outbox)
    }

    // ------------------------------------------------------------------
    // Server creation / removal
    // ------------------------------------------------------------------

    /// Creates a stopped Apache process on `node`.
    pub fn create_apache(&mut self, name: &str, node: NodeId) -> ServerId {
        let id = self.fresh_id();
        self.servers
            .insert(id, LegacyServer::Apache(ApacheServer::new(id, name, node)));
        id
    }

    /// Creates a stopped Tomcat process on `node`.
    pub fn create_tomcat(&mut self, name: &str, node: NodeId) -> ServerId {
        let id = self.fresh_id();
        self.servers
            .insert(id, LegacyServer::Tomcat(TomcatServer::new(id, name, node)));
        id
    }

    /// Creates a stopped MySQL process on `node`, restoring the base
    /// image into its storage.
    pub fn create_mysql(&mut self, name: &str, node: NodeId) -> ServerId {
        let id = self.fresh_id();
        let mut server = MysqlServer::new(id, name, node);
        server.db = self.mysql_base.clone();
        self.servers.insert(id, LegacyServer::Mysql(server));
        id
    }

    /// Creates a stopped C-JDBC controller on `node`.
    pub fn create_cjdbc(&mut self, name: &str, node: NodeId, policy: ReadPolicy) -> ServerId {
        let id = self.fresh_id();
        self.servers.insert(
            id,
            LegacyServer::Cjdbc {
                process: ServerProcess::new(id, name, node, Tier::Balancer),
                port: 25322,
                ctrl: CjdbcController::new(policy, Arc::clone(&self.schema)),
                routing_demand: SimDuration::from_micros(200),
            },
        );
        id
    }

    /// Creates a stopped PLB load balancer on `node`.
    pub fn create_plb(&mut self, name: &str, node: NodeId, policy: BalancePolicy) -> ServerId {
        let id = self.fresh_id();
        self.servers.insert(
            id,
            LegacyServer::Plb {
                process: ServerProcess::new(id, name, node, Tier::Balancer),
                port: 8080,
                balancer: HttpBalancer::new(policy),
            },
        );
        id
    }

    /// Creates a stopped L4 switch on `node`.
    pub fn create_l4switch(&mut self, name: &str, node: NodeId, policy: BalancePolicy) -> ServerId {
        let id = self.fresh_id();
        self.servers.insert(
            id,
            LegacyServer::L4Switch {
                process: ServerProcess::new(id, name, node, Tier::Balancer),
                balancer: HttpBalancer::new(policy),
            },
        );
        id
    }

    /// Destroys a stopped server process.
    pub fn remove_server(&mut self, id: ServerId) -> Result<(), LegacyError> {
        let s = self.server(id)?;
        let state = s.process().state;
        if state != ServerState::Stopped && state != ServerState::Failed {
            return Err(LegacyError::BadState(id, state));
        }
        self.servers.remove(&id);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Shared access to a server.
    pub fn server(&self, id: ServerId) -> Result<&LegacyServer, LegacyError> {
        self.servers.get(&id).ok_or(LegacyError::NoSuchServer(id))
    }

    /// Mutable access to a server.
    pub fn server_mut(&mut self, id: ServerId) -> Result<&mut LegacyServer, LegacyError> {
        self.servers
            .get_mut(&id)
            .ok_or(LegacyError::NoSuchServer(id))
    }

    /// All server ids, in creation order.
    // jade-audit: allow(hot-alloc): snapshot taken once per detector
    // period (seconds of simulated time) so repairs can mutate the server
    // map while the detector iterates; length is the server count.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.servers.keys().copied().collect()
    }

    /// Running servers of a tier.
    pub fn running_servers_of(&self, tier: Tier) -> Vec<ServerId> {
        self.servers
            .iter()
            .filter(|(_, s)| s.process().tier == tier && s.process().state.is_running())
            .map(|(&id, _)| id)
            .collect()
    }

    /// Nodes hosting running servers of a tier (the node set a CPU sensor
    /// aggregates over).
    pub fn nodes_of_tier(&self, tier: Tier) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        self.nodes_of_tier_into(tier, &mut nodes);
        nodes
    }

    /// [`LegacyLayer::nodes_of_tier`] into a caller-owned buffer, so a
    /// periodic probe can reuse its scratch instead of allocating. The
    /// resulting order (sorted, deduped) is identical.
    pub fn nodes_of_tier_into(&self, tier: Tier, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.servers
                .values()
                .filter(|s| s.process().tier == tier && s.process().state.is_running())
                .map(|s| s.process().node),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Number of running servers of a tier, without materializing the id
    /// list.
    pub fn running_count_of(&self, tier: Tier) -> usize {
        self.servers
            .values()
            .filter(|s| s.process().tier == tier && s.process().state.is_running())
            .count()
    }

    /// Typed accessor: Tomcat.
    pub fn tomcat_mut(&mut self, id: ServerId) -> Result<&mut TomcatServer, LegacyError> {
        match self.server_mut(id)? {
            LegacyServer::Tomcat(t) => Ok(t),
            _ => Err(LegacyError::WrongKind(id)),
        }
    }

    /// Typed accessor: MySQL.
    pub fn mysql_mut(&mut self, id: ServerId) -> Result<&mut MysqlServer, LegacyError> {
        match self.server_mut(id)? {
            LegacyServer::Mysql(m) => Ok(m),
            _ => Err(LegacyError::WrongKind(id)),
        }
    }

    /// Typed accessor: MySQL (shared).
    pub fn mysql(&self, id: ServerId) -> Result<&MysqlServer, LegacyError> {
        match self.server(id)? {
            LegacyServer::Mysql(m) => Ok(m),
            _ => Err(LegacyError::WrongKind(id)),
        }
    }

    /// Typed accessor: the C-JDBC controller.
    pub fn cjdbc_mut(&mut self, id: ServerId) -> Result<&mut CjdbcController, LegacyError> {
        match self.server_mut(id)? {
            LegacyServer::Cjdbc { ctrl, .. } => Ok(ctrl),
            _ => Err(LegacyError::WrongKind(id)),
        }
    }

    /// Typed accessor: the C-JDBC controller (shared).
    pub fn cjdbc(&self, id: ServerId) -> Result<&CjdbcController, LegacyError> {
        match self.server(id)? {
            LegacyServer::Cjdbc { ctrl, .. } => Ok(ctrl),
            _ => Err(LegacyError::WrongKind(id)),
        }
    }

    /// Typed accessor: a balancer (PLB or L4 switch).
    pub fn balancer_mut(&mut self, id: ServerId) -> Result<&mut HttpBalancer, LegacyError> {
        match self.server_mut(id)? {
            LegacyServer::Plb { balancer, .. } | LegacyServer::L4Switch { balancer, .. } => {
                Ok(balancer)
            }
            _ => Err(LegacyError::WrongKind(id)),
        }
    }

    /// Host name of the node a server runs on.
    pub fn host_of(&self, id: ServerId) -> Result<String, LegacyError> {
        let node = self.server(id)?.process().node;
        Ok(self
            .cluster
            .node(node)
            .map(|n| n.name().to_owned())
            .unwrap_or_else(|_| format!("{node:?}")))
    }

    // ------------------------------------------------------------------
    // Life-cycle
    // ------------------------------------------------------------------

    /// Starts a server: requires its package installed and the node up.
    /// The server enters `Starting` and a [`LegacyEvent::ServerBooted`]
    /// fires after the package's boot latency.
    pub fn start_server(&mut self, id: ServerId) -> Result<(), LegacyError> {
        let (node, pkg, state) = {
            let s = self.server(id)?;
            (s.process().node, s.package(), s.process().state)
        };
        if state != ServerState::Stopped {
            return Err(LegacyError::BadState(id, state));
        }
        let n = self.cluster.node(node)?;
        if !n.is_up() {
            return Err(LegacyError::NodeDown(node));
        }
        if !n.has_package(pkg) {
            return Err(LegacyError::NotInstalled(id, pkg));
        }
        let boot = self.sis.startup_latency(pkg);
        self.server_mut(id)?.process_mut().state = ServerState::Starting;
        self.outbox.push((boot, LegacyEvent::ServerBooted(id)));
        Ok(())
    }

    /// Completes a boot (`Starting` → `Running`). Called when the
    /// `ServerBooted` event is delivered; a server stopped mid-boot stays
    /// stopped.
    pub fn finish_boot(&mut self, id: ServerId) -> Result<bool, LegacyError> {
        let p = self.server_mut(id)?.process_mut();
        if p.state == ServerState::Starting {
            p.state = ServerState::Running;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Stops a server (graceful shutdown script). Emits `ServerStopped`
    /// immediately; the simulation fails whatever was in flight.
    pub fn stop_server(&mut self, id: ServerId) -> Result<(), LegacyError> {
        let state = self.server(id)?.process().state;
        match state {
            ServerState::Stopped => Ok(()), // idempotent
            ServerState::Failed => {
                self.server_mut(id)?.process_mut().state = ServerState::Stopped;
                Ok(())
            }
            ServerState::Running | ServerState::Starting => {
                self.server_mut(id)?.process_mut().state = ServerState::Stopped;
                if let LegacyServer::Tomcat(t) = self.server_mut(id)? {
                    t.active = 0;
                }
                self.outbox
                    .push((SimDuration::ZERO, LegacyEvent::ServerStopped(id)));
                Ok(())
            }
        }
    }

    /// Marks a server failed (process crash), emitting `ServerFailed`.
    pub fn fail_server(&mut self, id: ServerId) -> Result<(), LegacyError> {
        self.server_mut(id)?.process_mut().state = ServerState::Failed;
        self.outbox
            .push((SimDuration::ZERO, LegacyEvent::ServerFailed(id)));
        Ok(())
    }

    /// Crashes a node: fails every server hosted on it and aborts all its
    /// CPU jobs, returning the aborted job ids.
    #[cold]
    pub fn crash_node(&mut self, node: NodeId, now: SimTime) -> Vec<jade_sim::JobId> {
        let victims: Vec<ServerId> = self
            .servers
            .iter()
            .filter(|(_, s)| s.process().node == node)
            .map(|(&id, _)| id)
            .collect();
        for id in victims {
            let _ = self.fail_server(id);
        }
        match self.cluster.node_mut(node) {
            Ok(n) => n.crash(now),
            Err(_) => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // C-JDBC operations (membership + routing + state reconciliation)
    // ------------------------------------------------------------------

    /// Registers a MySQL replica as a (disabled) backend.
    pub fn cjdbc_register_backend(
        &mut self,
        cjdbc: ServerId,
        backend: ServerId,
    ) -> Result<(), LegacyError> {
        self.mysql_mut(backend)?; // type check
        self.cjdbc_mut(cjdbc)?.register_backend(backend);
        Ok(())
    }

    /// Unregisters a backend.
    pub fn cjdbc_unregister_backend(
        &mut self,
        cjdbc: ServerId,
        backend: ServerId,
    ) -> Result<(), LegacyError> {
        self.cjdbc_mut(cjdbc)?.unregister_backend(backend);
        Ok(())
    }

    /// Begins enabling a backend: computes the recovery-log backlog and
    /// schedules the first replay batch. The backend must be `Running`.
    pub fn cjdbc_enable_backend(
        &mut self,
        cjdbc: ServerId,
        backend: ServerId,
    ) -> Result<(), LegacyError> {
        let state = self.server(backend)?.process().state;
        if !state.is_running() {
            return Err(LegacyError::BadState(backend, state));
        }
        let plan = self.cjdbc_mut(cjdbc)?.begin_enable(backend)?;
        // The simulated replay time follows the full statement backlog
        // even when the plan carries a checkpoint snapshot: the snapshot
        // path cuts host-side work, not modeled latency (digest-neutral).
        let delay =
            self.replay_setup_cost + self.replay_cost_per_entry.mul_f64(plan.backlog as f64);
        self.pending_replays.insert((cjdbc, backend), plan);
        self.outbox
            .push((delay, LegacyEvent::ReplayBatchDone { cjdbc, backend }));
        Ok(())
    }

    /// Completes one replay batch: applies the buffered statements to the
    /// backend's storage, then either schedules the next batch (writes
    /// arrived during replay) or activates the backend.
    pub fn cjdbc_replay_batch_done(
        &mut self,
        cjdbc: ServerId,
        backend: ServerId,
    ) -> Result<(), LegacyError> {
        // The sync session is only valid while this controller still
        // exists and still considers the backend Syncing. A batch from a
        // dead controller (repaired mid-sync) must be dropped, not
        // applied — the replacement controller restarted reconciliation
        // from a restored state.
        let still_syncing = self.cjdbc(cjdbc).ok().and_then(|c| c.status(backend).ok())
            == Some(BackendStatus::Syncing);
        if !still_syncing {
            self.pending_replays.remove(&(cjdbc, backend));
            return Ok(());
        }
        let plan = self
            .pending_replays
            .remove(&(cjdbc, backend))
            .unwrap_or_default();
        {
            let m = self.mysql_mut(backend)?;
            if let Some((_, snapshot)) = &plan.snapshot {
                // Checkpoint restore: replace the replica's state with
                // the snapshot (O(#tables) Arc clones) and apply only the
                // delta tail past it, instead of replaying the history.
                m.db = crate::storage::Database::from_snapshot(snapshot);
            }
            for entry in &plan.entries {
                match &entry.delta {
                    // Apply the physical effect the primary captured —
                    // no statement re-evaluation.
                    Some(delta) => {
                        let _ = m.db.apply_delta(delta);
                    }
                    // No captured delta (the statement errored on the
                    // primary): re-execute, tolerating individual errors
                    // the same way C-JDBC does.
                    None => {
                        let _ = m.execute(&entry.statement);
                    }
                }
            }
        }
        match self.cjdbc_mut(cjdbc)?.finish_replay(backend)? {
            Some(next) => {
                let delay = self.replay_cost_per_entry.mul_f64(next.backlog as f64);
                self.pending_replays.insert((cjdbc, backend), next);
                self.outbox
                    .push((delay, LegacyEvent::ReplayBatchDone { cjdbc, backend }));
            }
            None => {
                self.outbox.push((
                    SimDuration::ZERO,
                    LegacyEvent::BackendActivated { cjdbc, backend },
                ));
            }
        }
        Ok(())
    }

    /// Aborts an in-progress backend synchronization, discarding the
    /// pending replay batch (the backend returns to `Disabled` at its
    /// last applied index).
    pub fn cjdbc_abort_enable(
        &mut self,
        cjdbc: ServerId,
        backend: ServerId,
    ) -> Result<(), LegacyError> {
        self.cjdbc_mut(cjdbc)?.abort_enable(backend)?;
        self.pending_replays.remove(&(cjdbc, backend));
        Ok(())
    }

    /// Disables an active backend (checkpointing its log position).
    pub fn cjdbc_disable_backend(
        &mut self,
        cjdbc: ServerId,
        backend: ServerId,
    ) -> Result<(), LegacyError> {
        self.cjdbc_mut(cjdbc)?.disable_backend(backend)?;
        Ok(())
    }

    /// Routes a read to one active backend and executes it there,
    /// returning the backend and the CPU demand to charge. A compiled
    /// step executes opcode-directly — no `Statement` is materialized on
    /// the read path.
    pub fn cjdbc_execute_read(
        &mut self,
        cjdbc: ServerId,
        query: crate::request::DbQuery<'_>,
        rng: &mut SimRng,
    ) -> Result<(ServerId, SimDuration), LegacyError> {
        debug_assert!(!query.is_write());
        let state = self.server(cjdbc)?.process().state;
        if !state.is_running() {
            return Err(LegacyError::BadState(cjdbc, state));
        }
        let backend = self.cjdbc_mut(cjdbc)?.route_read(rng)?;
        let m = self.mysql_mut(backend)?;
        match query {
            crate::request::DbQuery::Stmt(op) => {
                let _ = m.execute(&op.statement);
            }
            crate::request::DbQuery::Step { step, params, .. } => {
                let _ = m.execute_step(step, params);
            }
        }
        Ok((backend, query.demand()))
    }

    /// Broadcasts a write to all active backends, appending it to the
    /// recovery log; returns the per-backend CPU demands to charge.
    pub fn cjdbc_execute_write(
        &mut self,
        cjdbc: ServerId,
        op: &crate::request::SqlOp,
    ) -> Result<Vec<(ServerId, SimDuration)>, LegacyError> {
        let mut targets = Vec::new();
        self.cjdbc_execute_write_into(cjdbc, crate::request::DbQuery::Stmt(op), &mut targets)?;
        Ok(targets.into_iter().map(|b| (b, op.demand)).collect())
    }

    /// Scratch-buffer variant of
    /// [`LegacyLayer::cjdbc_execute_write`]: fills `out` with the
    /// broadcast set (every backend is charged the query's demand) with
    /// zero steady-state allocation. The deterministic primary (`out[0]`)
    /// executes the write once and captures a physical
    /// [`crate::storage::WriteDelta`]; the remaining replicas apply the
    /// delta — sharing the primary's row allocations — instead of
    /// re-evaluating the statement. A compiled step executes
    /// opcode-directly on the primary and materializes its prepared
    /// statement only for the recovery log (whose entries are statements,
    /// paper §4.1) — the same one allocation the interpreted generator
    /// made up front.
    // jade-audit: allow(hot-alloc, hot-panic): the Arcs are the one
    // materialization of the write's statement and delta, shared by
    // reference across every replica and the recovery log; out[1..] is
    // safe because route_write_into guarantees a non-empty broadcast list
    // (primary first).
    pub fn cjdbc_execute_write_into(
        &mut self,
        cjdbc: ServerId,
        query: crate::request::DbQuery<'_>,
        out: &mut Vec<ServerId>,
    ) -> Result<(), LegacyError> {
        debug_assert!(query.is_write());
        let state = self.server(cjdbc)?.process().state;
        if !state.is_running() {
            return Err(LegacyError::BadState(cjdbc, state));
        }
        let primary = self
            .cjdbc(cjdbc)?
            .write_primary()
            .ok_or(CjdbcError::NoActiveBackend)?;
        // On capture failure the write is still logged and broadcast (the
        // cluster-wide outcome of a failed write is deterministic too) —
        // without a delta, so every replica re-executes it and fails
        // identically.
        let (stmt, delta) = match query {
            crate::request::DbQuery::Stmt(op) => {
                let delta = match self.mysql_mut(primary)?.execute_capture(&op.statement) {
                    Ok((_, delta)) => Some(Arc::new(delta)),
                    Err(_) => None,
                };
                (Arc::clone(&op.statement), delta)
            }
            crate::request::DbQuery::Step { step, params, .. } => {
                let delta = match self.mysql_mut(primary)?.execute_step_capture(step, params) {
                    Ok((_, delta)) => Some(Arc::new(delta)),
                    Err(_) => None,
                };
                (Arc::new(step.statement(params)), delta)
            }
        };
        self.cjdbc_mut(cjdbc)?
            .route_write_into(Arc::clone(&stmt), delta.clone(), out)?;
        debug_assert_eq!(out.first(), Some(&primary), "primary broadcasts first");
        for &b in &out[1..] {
            let m = self.mysql_mut(b)?;
            match &delta {
                Some(delta) => {
                    let _ = m.db.apply_delta(delta);
                }
                None => {
                    let _ = m.execute(&stmt);
                }
            }
        }
        // Checkpoint cadence: every `snapshot_interval` writes, store a
        // copy-on-write snapshot of the (identical) cluster state so late
        // joiners sync from it instead of replaying the history.
        if self.cjdbc(cjdbc)?.snapshot_due() {
            let snapshot = self.mysql(primary)?.db.snapshot();
            self.cjdbc_mut(cjdbc)?.install_snapshot(snapshot);
        }
        Ok(())
    }

    /// Restores `target`'s database from a dump of `source` (C-JDBC's
    /// backup/restore path, used when the recovery log cannot cover the
    /// gap — e.g. after losing the controller while `target` was
    /// synchronizing).
    pub fn mysql_restore_from(
        &mut self,
        source: ServerId,
        target: ServerId,
    ) -> Result<(), LegacyError> {
        let snapshot = self.mysql(source)?.db.clone();
        self.mysql_mut(target)?.db = snapshot;
        Ok(())
    }

    /// Marks a query complete on a backend (pending accounting).
    pub fn cjdbc_note_complete(&mut self, cjdbc: ServerId, backend: ServerId) {
        if let Ok(ctrl) = self.cjdbc_mut(cjdbc) {
            ctrl.note_complete(backend);
        }
    }

    /// Status of a backend as seen by the controller.
    pub fn cjdbc_backend_status(
        &self,
        cjdbc: ServerId,
        backend: ServerId,
    ) -> Result<BackendStatus, LegacyError> {
        Ok(self.cjdbc(cjdbc)?.status(backend)?)
    }

    // ------------------------------------------------------------------
    // HTTP balancer routing
    // ------------------------------------------------------------------

    /// Routes an HTTP request through a balancer to a *running* worker,
    /// skipping workers that are down (PLB health checking). Fails when
    /// the balancer process itself is not running.
    pub fn balancer_route_running(
        &mut self,
        balancer_id: ServerId,
        rng: &mut SimRng,
    ) -> Result<ServerId, LegacyError> {
        self.balancer_route_running_with_nodes(balancer_id, rng)
            .map(|(worker, _, _)| worker)
    }

    /// [`balancer_route_running`], additionally returning the balancer's
    /// and the chosen worker's nodes `(worker, balancer_node,
    /// worker_node)` — resolved from the probes routing already performs,
    /// so callers that need the network path don't re-look both servers
    /// up.
    ///
    /// [`balancer_route_running`]: LegacyLayer::balancer_route_running
    pub fn balancer_route_running_with_nodes(
        &mut self,
        balancer_id: ServerId,
        rng: &mut SimRng,
    ) -> Result<(ServerId, NodeId, NodeId), LegacyError> {
        let (state, balancer_node) = {
            let p = self.server(balancer_id)?.process();
            (p.state, p.node)
        };
        if !state.is_running() {
            return Err(LegacyError::BadState(balancer_id, state));
        }
        let attempts = self.balancer_mut(balancer_id)?.len().max(1);
        for _ in 0..attempts {
            let worker = self.balancer_mut(balancer_id)?.route(rng)?;
            let wp = self.server(worker)?.process();
            if wp.state.is_running() {
                return Ok((worker, balancer_node, wp.node));
            }
        }
        Err(LegacyError::Balancer(
            crate::balancer::BalancerError::NoWorker,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SqlOp;
    use crate::sql::{Schema, Value};
    use jade_cluster::{NodeSpec, SoftwareRepository};

    fn test_schema() -> Arc<Schema> {
        Schema::builder().table("t", &["a"]).build()
    }

    fn layer(nodes: usize) -> LegacyLayer {
        let cluster = ClusterManager::homogeneous(nodes, NodeSpec::default(), 128);
        let sis = SoftwareInstallationService::new(SoftwareRepository::j2ee_catalogue());
        LegacyLayer::new(cluster, Network::lan_100mbps(), sis)
    }

    fn install(l: &mut LegacyLayer, node: NodeId, pkg: &str) {
        l.sis
            .install(&mut l.cluster, node, pkg)
            .map(|_| ())
            .unwrap_or_else(|e| panic!("install {pkg}: {e}"));
    }

    #[test]
    fn start_requires_installed_package() {
        let mut l = layer(2);
        let t = l.create_tomcat("Tomcat1", NodeId(0));
        assert!(matches!(
            l.start_server(t),
            Err(LegacyError::NotInstalled(_, "tomcat"))
        ));
        install(&mut l, NodeId(0), "tomcat");
        l.start_server(t).unwrap();
        assert_eq!(l.server(t).unwrap().process().state, ServerState::Starting);
        let events = l.drain_outbox();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].1, LegacyEvent::ServerBooted(t));
        assert!(l.finish_boot(t).unwrap());
        assert!(l.server(t).unwrap().process().state.is_running());
    }

    #[test]
    fn stop_mid_boot_cancels_running_transition() {
        let mut l = layer(1);
        let t = l.create_tomcat("Tomcat1", NodeId(0));
        install(&mut l, NodeId(0), "tomcat");
        l.start_server(t).unwrap();
        l.stop_server(t).unwrap();
        // The booted event fires later but must not resurrect the server.
        assert!(!l.finish_boot(t).unwrap());
        assert_eq!(l.server(t).unwrap().process().state, ServerState::Stopped);
    }

    #[test]
    fn tier_queries_see_only_running_servers() {
        let mut l = layer(3);
        let t1 = l.create_tomcat("Tomcat1", NodeId(0));
        let _t2 = l.create_tomcat("Tomcat2", NodeId(1));
        install(&mut l, NodeId(0), "tomcat");
        l.start_server(t1).unwrap();
        l.finish_boot(t1).unwrap();
        assert_eq!(l.running_servers_of(Tier::Application), vec![t1]);
        assert_eq!(l.nodes_of_tier(Tier::Application), vec![NodeId(0)]);
    }

    #[test]
    fn crash_node_fails_hosted_servers() {
        let mut l = layer(1);
        let t = l.create_tomcat("Tomcat1", NodeId(0));
        install(&mut l, NodeId(0), "tomcat");
        l.start_server(t).unwrap();
        l.finish_boot(t).unwrap();
        l.drain_outbox();
        l.crash_node(NodeId(0), SimTime::from_secs(1));
        assert_eq!(l.server(t).unwrap().process().state, ServerState::Failed);
        let events = l.drain_outbox();
        assert!(events
            .iter()
            .any(|(_, e)| *e == LegacyEvent::ServerFailed(t)));
    }

    fn write_op(i: i64) -> SqlOp {
        SqlOp::new(
            test_schema().insert("t", &[("a", Value::Int(i))]),
            SimDuration::from_millis(5),
        )
    }

    fn read_op() -> SqlOp {
        SqlOp::new(test_schema().count("t"), SimDuration::from_millis(2))
    }

    /// Deploys a C-JDBC with `n` active MySQL backends (synchronously
    /// draining boot/replay events).
    fn db_cluster(l: &mut LegacyLayer, n: usize) -> (ServerId, Vec<ServerId>) {
        l.set_mysql_dump(test_schema(), &[]);
        let cj_node = l.cluster.allocate().unwrap();
        install(l, cj_node, "cjdbc");
        let cj = l.create_cjdbc("C-JDBC", cj_node, ReadPolicy::LeastPending);
        l.start_server(cj).unwrap();
        l.finish_boot(cj).unwrap();
        let mut backends = Vec::new();
        for i in 0..n {
            let node = l.cluster.allocate().unwrap();
            install(l, node, "mysql");
            let m = l.create_mysql(&format!("MySQL{}", i + 1), node);
            l.start_server(m).unwrap();
            l.finish_boot(m).unwrap();
            l.cjdbc_register_backend(cj, m).unwrap();
            l.cjdbc_enable_backend(cj, m).unwrap();
            // Synchronously process replay events.
            loop {
                let events = l.drain_outbox();
                if events.is_empty() {
                    break;
                }
                let mut done = false;
                for (_, e) in events {
                    match e {
                        LegacyEvent::ReplayBatchDone { cjdbc, backend } => {
                            l.cjdbc_replay_batch_done(cjdbc, backend).unwrap();
                        }
                        LegacyEvent::BackendActivated { .. } => done = true,
                        _ => {}
                    }
                }
                if done {
                    break;
                }
            }
            backends.push(m);
        }
        // Create the schema cluster-wide.
        l.cjdbc_execute_write(
            cj,
            &SqlOp::new(test_schema().create_table("t"), SimDuration::ZERO),
        )
        .unwrap();
        (cj, backends)
    }

    #[test]
    fn writes_keep_replicas_identical() {
        let mut l = layer(6);
        let (cj, backends) = db_cluster(&mut l, 3);
        for i in 0..10 {
            l.cjdbc_execute_write(cj, &write_op(i)).unwrap();
        }
        let digests: Vec<u64> = backends
            .iter()
            .map(|&b| l.mysql(b).unwrap().digest())
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn late_backend_converges_via_recovery_log() {
        let mut l = layer(6);
        let (cj, backends) = db_cluster(&mut l, 1);
        for i in 0..20 {
            l.cjdbc_execute_write(cj, &write_op(i)).unwrap();
        }
        // New replica joins late.
        let node = l.cluster.allocate().unwrap();
        install(&mut l, node, "mysql");
        let m2 = l.create_mysql("MySQL2", node);
        l.start_server(m2).unwrap();
        l.finish_boot(m2).unwrap();
        l.drain_outbox();
        l.cjdbc_register_backend(cj, m2).unwrap();
        l.cjdbc_enable_backend(cj, m2).unwrap();
        // More writes land during the replay window.
        for i in 100..105 {
            l.cjdbc_execute_write(cj, &write_op(i)).unwrap();
        }
        // Process replay batches until activation.
        let mut activated = false;
        for _ in 0..10 {
            let events = l.drain_outbox();
            if events.is_empty() {
                break;
            }
            for (_, e) in events {
                match e {
                    LegacyEvent::ReplayBatchDone { cjdbc, backend } => {
                        l.cjdbc_replay_batch_done(cjdbc, backend).unwrap();
                    }
                    LegacyEvent::BackendActivated { backend, .. } => {
                        assert_eq!(backend, m2);
                        activated = true;
                    }
                    _ => {}
                }
            }
            if activated {
                break;
            }
        }
        assert!(activated, "backend must activate");
        assert_eq!(
            l.mysql(backends[0]).unwrap().digest(),
            l.mysql(m2).unwrap().digest(),
            "late joiner must converge to the cluster state"
        );
    }

    #[test]
    fn reads_are_distributed_and_execute() {
        let mut l = layer(6);
        let (cj, _) = db_cluster(&mut l, 2);
        l.cjdbc_execute_write(cj, &write_op(1)).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let read = read_op();
        let (b1, d) = l
            .cjdbc_execute_read(cj, crate::request::DbQuery::Stmt(&read), &mut rng)
            .unwrap();
        assert_eq!(d, SimDuration::from_millis(2));
        let (b2, _) = l
            .cjdbc_execute_read(cj, crate::request::DbQuery::Stmt(&read), &mut rng)
            .unwrap();
        // Least-pending: two successive reads go to different backends.
        assert_ne!(b1, b2);
    }

    #[test]
    fn balancer_routing_skips_stopped_workers() {
        let mut l = layer(4);
        let plb_node = l.cluster.allocate().unwrap();
        install(&mut l, plb_node, "plb");
        let plb = l.create_plb("PLB", plb_node, BalancePolicy::RoundRobin);
        l.start_server(plb).unwrap();
        l.finish_boot(plb).unwrap();
        let mut tomcats = Vec::new();
        for i in 0..2 {
            let n = l.cluster.allocate().unwrap();
            install(&mut l, n, "tomcat");
            let t = l.create_tomcat(&format!("Tomcat{}", i + 1), n);
            l.start_server(t).unwrap();
            l.finish_boot(t).unwrap();
            l.balancer_mut(plb).unwrap().add_worker(t).unwrap();
            tomcats.push(t);
        }
        l.stop_server(tomcats[0]).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..5 {
            assert_eq!(l.balancer_route_running(plb, &mut rng).unwrap(), tomcats[1]);
        }
    }

    #[test]
    fn remove_server_requires_stopped() {
        let mut l = layer(1);
        let t = l.create_tomcat("Tomcat1", NodeId(0));
        install(&mut l, NodeId(0), "tomcat");
        l.start_server(t).unwrap();
        l.finish_boot(t).unwrap();
        assert!(matches!(l.remove_server(t), Err(LegacyError::BadState(..))));
        l.stop_server(t).unwrap();
        l.remove_server(t).unwrap();
        assert!(l.server(t).is_err());
    }
}
