//! The MySQL database server (database tier).

use crate::plan::PlanStep;
use crate::server::{ServerId, ServerProcess, Tier};
use crate::sql::{ExecSummary, Schema, SharedRow, SqlError, Statement, Value};
use crate::storage::{Database, WriteDelta};
use jade_cluster::NodeId;

/// A MySQL process: process state plus an actual storage engine holding a
/// full copy of the database (full mirroring, paper §4.1).
#[derive(Debug)]
pub struct MysqlServer {
    /// Common process state.
    pub process: ServerProcess,
    /// SQL listen port (`port` attribute, reflected in `my.cnf`).
    pub port: u16,
    /// The replica's database contents.
    pub db: Database,
    /// Copy-out scratch reused across queries: selects land their
    /// `Arc`-shared rows here instead of allocating a result per request.
    scratch: Vec<(u64, SharedRow)>,
}

impl MysqlServer {
    /// Creates a stopped MySQL replica with an empty database on `node`
    /// (the legacy layer restores the base image into `db` on creation).
    pub fn new(id: ServerId, name: &str, node: NodeId) -> Self {
        MysqlServer {
            process: ServerProcess::new(id, name, node, Tier::Database),
            port: 3306,
            db: Database::new(Schema::empty()),
            scratch: Vec::new(),
        }
    }

    /// Executes one statement against this replica through the reused
    /// scratch buffer (no per-query result allocation).
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecSummary, SqlError> {
        self.db.execute_into(stmt, &mut self.scratch)
    }

    /// Executes one write against this replica, capturing the physical
    /// delta for the other mirrors to apply (the execute-once broadcast
    /// path).
    pub fn execute_capture(
        &mut self,
        stmt: &Statement,
    ) -> Result<(ExecSummary, WriteDelta), SqlError> {
        self.db.execute_capture(stmt)
    }

    /// Executes one compiled-plan step against this replica: reads run as
    /// count-only probes (the compiled program proves row bodies are
    /// dead), writes go through the opcode write path with the reused
    /// scratch buffer — no per-query statement or result allocation
    /// either way.
    pub fn execute_step(
        &mut self,
        step: &PlanStep,
        params: &[Value],
    ) -> Result<ExecSummary, SqlError> {
        if step.is_write() {
            self.db.execute_step_into(step, params, &mut self.scratch)
        } else {
            self.db.read_step_summary(step, params)
        }
    }

    /// Executes one compiled write step, capturing the physical delta for
    /// the other mirrors to apply.
    pub fn execute_step_capture(
        &mut self,
        step: &PlanStep,
        params: &[Value],
    ) -> Result<(ExecSummary, WriteDelta), SqlError> {
        self.db.execute_step_capture(step, params)
    }

    /// Rows produced by the last `execute` (valid until the next call).
    pub fn last_rows(&self) -> &[(u64, SharedRow)] {
        &self.scratch
    }

    /// Content digest (replica-convergence checks).
    pub fn digest(&self) -> u64 {
        self.db.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Value;

    #[test]
    fn executes_against_local_storage() {
        let schema = Schema::builder().table("users", &["name"]).build();
        let mut m = MysqlServer::new(ServerId(2), "MySQL1", NodeId(3));
        m.db = Database::new(schema.clone());
        m.execute(&schema.create_table("users")).unwrap();
        m.execute(&schema.insert("users", &[("name", Value::from("eve"))]))
            .unwrap();
        assert_eq!(m.db.total_rows(), 1);
        assert_eq!(m.process.tier, Tier::Database);
        let r = m.execute(&schema.select_by_key("users", 0)).unwrap();
        assert_eq!(r, ExecSummary::Rows(1));
        assert_eq!(m.last_rows()[0].0, 0);
    }
}
