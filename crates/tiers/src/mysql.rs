//! The MySQL database server (database tier).

use crate::server::{ServerId, ServerProcess, Tier};
use crate::sql::{QueryResult, SqlError, Statement};
use crate::storage::Database;
use jade_cluster::NodeId;

/// A MySQL process: process state plus an actual storage engine holding a
/// full copy of the database (full mirroring, paper §4.1).
#[derive(Debug)]
pub struct MysqlServer {
    /// Common process state.
    pub process: ServerProcess,
    /// SQL listen port (`port` attribute, reflected in `my.cnf`).
    pub port: u16,
    /// The replica's database contents.
    pub db: Database,
}

impl MysqlServer {
    /// Creates a stopped MySQL replica with an empty database on `node`.
    pub fn new(id: ServerId, name: &str, node: NodeId) -> Self {
        MysqlServer {
            process: ServerProcess::new(id, name, node, Tier::Database),
            port: 3306,
            db: Database::new(),
        }
    }

    /// Executes one statement against this replica.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QueryResult, SqlError> {
        self.db.execute(stmt)
    }

    /// Content digest (replica-convergence checks).
    pub fn digest(&self) -> u64 {
        self.db.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::{row, Value};

    #[test]
    fn executes_against_local_storage() {
        let mut m = MysqlServer::new(ServerId(2), "MySQL1", NodeId(3));
        m.execute(&Statement::CreateTable {
            table: "users".into(),
        })
        .unwrap();
        m.execute(&Statement::Insert {
            table: "users".into(),
            row: row(&[("name", Value::from("eve"))]),
        })
        .unwrap();
        assert_eq!(m.db.total_rows(), 1);
        assert_eq!(m.process.tier, Tier::Database);
    }
}
