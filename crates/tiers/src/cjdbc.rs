//! C-JDBC: the database clustering middleware (paper §2, §4.1).
//!
//! C-JDBC "plays the role of load balancer and replication consistency
//! manager, each server containing a full copy of the whole database (full
//! mirroring)" — RAIDb-1. This module implements:
//!
//! * backend membership with the Active / Syncing / Disabled life-cycle,
//! * read distribution over active backends (Round-Robin, Random or
//!   Least-Pending scheduling),
//! * write broadcast to all active backends, every write appended to the
//!   [`crate::recovery::RecoveryLog`]. The first active backend in id
//!   order is the deterministic *primary*: it executes the statement once
//!   and captures a [`WriteDelta`](crate::storage::WriteDelta) that the
//!   remaining replicas apply without re-evaluating,
//! * state reconciliation: a joining backend receives a
//!   [`SyncPlan`](crate::recovery::SyncPlan) — the nearest checkpoint
//!   snapshot plus the delta tail past it, or the exact log suffix it is
//!   missing (possibly in several batches if writes keep arriving) — and
//!   a leaving backend records its checkpoint index.

use crate::recovery::{RecoveryLog, SyncPlan};
use crate::server::ServerId;
use crate::sql::{Schema, Statement};
use crate::storage::{Snapshot, WriteDelta};
use jade_sim::SimRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Read-scheduling policy across active backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Cycle through active backends.
    RoundRobin,
    /// Uniform random choice.
    Random,
    /// Backend with the fewest in-flight queries (C-JDBC's default
    /// `LeastPendingRequestsFirst`).
    LeastPending,
}

/// Membership state of one backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendStatus {
    /// Receiving reads and writes.
    Active,
    /// Replaying the recovery log to catch up; receives no traffic.
    Syncing,
    /// Out of the cluster; its checkpoint index is retained.
    Disabled,
}

#[derive(Debug, Clone)]
struct Backend {
    status: BackendStatus,
    /// Index of the next log entry this backend has NOT applied.
    checkpoint: u64,
    /// Highest log index known to be *applied* on the backend (trails
    /// `checkpoint` during a sync; equal to it otherwise). An aborted
    /// sync falls back to this.
    applied: u64,
    pending: usize,
}

/// Errors from cluster membership operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CjdbcError {
    /// The server is not a registered backend.
    UnknownBackend(ServerId),
    /// Operation invalid for the backend's current status.
    WrongStatus(ServerId, BackendStatus),
    /// No active backend can serve the request.
    NoActiveBackend,
}

impl std::fmt::Display for CjdbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CjdbcError::UnknownBackend(id) => write!(f, "unknown backend {id:?}"),
            CjdbcError::WrongStatus(id, s) => {
                write!(f, "backend {id:?} is in status {s:?}")
            }
            CjdbcError::NoActiveBackend => write!(f, "no active database backend"),
        }
    }
}

impl std::error::Error for CjdbcError {}

/// The C-JDBC controller state.
#[derive(Debug)]
pub struct CjdbcController {
    backends: BTreeMap<ServerId, Backend>,
    log: RecoveryLog,
    policy: ReadPolicy,
    rr_cursor: usize,
}

impl CjdbcController {
    /// Creates a controller with the given read policy over the cluster's
    /// database schema (used to render logged writes).
    pub fn new(policy: ReadPolicy, schema: Arc<Schema>) -> Self {
        CjdbcController {
            backends: BTreeMap::new(),
            log: RecoveryLog::new(schema),
            policy,
            rr_cursor: 0,
        }
    }

    /// The configured read policy.
    pub fn policy(&self) -> ReadPolicy {
        self.policy
    }

    /// Changes the read policy at run time.
    pub fn set_policy(&mut self, policy: ReadPolicy) {
        self.policy = policy;
    }

    /// Read access to the recovery log.
    pub fn recovery_log(&self) -> &RecoveryLog {
        &self.log
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Registers a backend in `Disabled` state with checkpoint 0 (a fresh
    /// replica knows nothing).
    pub fn register_backend(&mut self, server: ServerId) {
        self.backends.entry(server).or_insert(Backend {
            status: BackendStatus::Disabled,
            checkpoint: 0,
            applied: 0,
            pending: 0,
        });
    }

    /// Removes a backend entirely (node released).
    pub fn unregister_backend(&mut self, server: ServerId) {
        self.backends.remove(&server);
    }

    /// Starts enabling a disabled backend: moves it to `Syncing` and
    /// returns the [`SyncPlan`] it must apply — the nearest checkpoint
    /// snapshot plus delta tail when one skips work, the plain log suffix
    /// otherwise. An empty plan means it can be activated immediately (the
    /// caller should still call [`CjdbcController::finish_replay`]).
    pub fn begin_enable(&mut self, server: ServerId) -> Result<SyncPlan, CjdbcError> {
        let head = self.log.head();
        let b = self
            .backends
            .get_mut(&server)
            .ok_or(CjdbcError::UnknownBackend(server))?;
        if b.status != BackendStatus::Disabled {
            return Err(CjdbcError::WrongStatus(server, b.status));
        }
        b.status = BackendStatus::Syncing;
        let from = b.checkpoint;
        b.applied = from;
        b.checkpoint = head; // will have applied up to head once replay ends
        Ok(self.log.sync_plan(from))
    }

    /// Aborts an in-progress enable: the backend returns to `Disabled`
    /// at its last *applied* index. Batches handed out but not yet
    /// acknowledged through [`CjdbcController::finish_replay`] do not
    /// count — the caller must discard them.
    pub fn abort_enable(&mut self, server: ServerId) -> Result<(), CjdbcError> {
        let b = self
            .backends
            .get_mut(&server)
            .ok_or(CjdbcError::UnknownBackend(server))?;
        if b.status != BackendStatus::Syncing {
            return Err(CjdbcError::WrongStatus(server, b.status));
        }
        b.status = BackendStatus::Disabled;
        b.checkpoint = b.applied;
        b.pending = 0;
        Ok(())
    }

    /// Completes one replay batch. If more writes arrived since the batch
    /// was taken, returns the next batch (a plain delta tail — the backend
    /// already caught up to its previous checkpoint, so no snapshot can
    /// help); otherwise the backend becomes `Active` and `None` is
    /// returned.
    pub fn finish_replay(&mut self, server: ServerId) -> Result<Option<SyncPlan>, CjdbcError> {
        let head = self.log.head();
        let b = self
            .backends
            .get_mut(&server)
            .ok_or(CjdbcError::UnknownBackend(server))?;
        if b.status != BackendStatus::Syncing {
            return Err(CjdbcError::WrongStatus(server, b.status));
        }
        // Everything up to the current checkpoint has now been applied.
        b.applied = b.checkpoint;
        if b.checkpoint < head {
            let from = b.checkpoint;
            b.checkpoint = head;
            Ok(Some(SyncPlan {
                snapshot: None,
                entries: self.log.entries_from(from).to_vec(),
                backlog: head - from,
            }))
        } else {
            b.status = BackendStatus::Active;
            Ok(None)
        }
    }

    /// Disables an active backend, recording its checkpoint ("the index
    /// value in the recovery log corresponding to the last write request
    /// that it has executed before being disabled", §4.1).
    pub fn disable_backend(&mut self, server: ServerId) -> Result<(), CjdbcError> {
        let head = self.log.head();
        let b = self
            .backends
            .get_mut(&server)
            .ok_or(CjdbcError::UnknownBackend(server))?;
        if b.status != BackendStatus::Active {
            return Err(CjdbcError::WrongStatus(server, b.status));
        }
        b.status = BackendStatus::Disabled;
        b.checkpoint = head;
        b.applied = head;
        b.pending = 0;
        Ok(())
    }

    /// Marks a backend failed: drops it to `Disabled` with its checkpoint
    /// *reset to zero* — a crashed replica's disk state is not trusted, it
    /// must perform a full resync (conservative model).
    pub fn fail_backend(&mut self, server: ServerId) -> Result<(), CjdbcError> {
        let b = self
            .backends
            .get_mut(&server)
            .ok_or(CjdbcError::UnknownBackend(server))?;
        b.status = BackendStatus::Disabled;
        b.checkpoint = 0;
        b.applied = 0;
        b.pending = 0;
        Ok(())
    }

    /// Status of one backend.
    pub fn status(&self, server: ServerId) -> Result<BackendStatus, CjdbcError> {
        self.backends
            .get(&server)
            .map(|b| b.status)
            .ok_or(CjdbcError::UnknownBackend(server))
    }

    /// Checkpoint (next-unapplied log index) of one backend.
    pub fn checkpoint(&self, server: ServerId) -> Result<u64, CjdbcError> {
        self.backends
            .get(&server)
            .map(|b| b.checkpoint)
            .ok_or(CjdbcError::UnknownBackend(server))
    }

    /// Active backends in id order.
    // jade-audit: allow(hot-alloc): a read routes over the snapshot so a
    // backend disabled mid-iteration cannot shift the rotation; its length
    // is the replica count (single digits), not the request count.
    pub fn active_backends(&self) -> Vec<ServerId> {
        self.backends
            .iter()
            .filter(|(_, b)| b.status == BackendStatus::Active)
            .map(|(&id, _)| id)
            .collect()
    }

    /// All registered backends in id order.
    pub fn backends(&self) -> Vec<ServerId> {
        self.backends.keys().copied().collect()
    }

    /// Number of active backends.
    pub fn active_count(&self) -> usize {
        self.backends
            .values()
            .filter(|b| b.status == BackendStatus::Active)
            .count()
    }

    // ------------------------------------------------------------------
    // Request routing
    // ------------------------------------------------------------------

    /// Routes a read to one active backend according to the policy.
    // jade-audit: allow(hot-panic): all three arms index modulo/below
    // active.len(), which the emptiness guard above ensures is nonzero,
    // and chosen was just drawn from that same backend map.
    pub fn route_read(&mut self, rng: &mut SimRng) -> Result<ServerId, CjdbcError> {
        let active = self.active_backends();
        if active.is_empty() {
            return Err(CjdbcError::NoActiveBackend);
        }
        let chosen = match self.policy {
            ReadPolicy::RoundRobin => {
                let id = active[self.rr_cursor % active.len()];
                self.rr_cursor = (self.rr_cursor + 1) % active.len().max(1);
                id
            }
            ReadPolicy::Random => active[rng.below(active.len())],
            ReadPolicy::LeastPending => active
                .iter()
                .copied()
                .min_by_key(|id| self.backends[id].pending)
                .expect("active is non-empty"),
        };
        self.backends
            .get_mut(&chosen)
            .expect("chosen is known")
            .pending += 1;
        Ok(chosen)
    }

    /// The deterministic write primary: the first active backend in id
    /// order. It executes each broadcast write once (capturing the delta
    /// the other replicas apply); `BTreeMap` iteration makes the choice
    /// stable across runs regardless of membership history.
    pub fn write_primary(&self) -> Option<ServerId> {
        self.backends
            .iter()
            .find(|(_, b)| b.status == BackendStatus::Active)
            .map(|(&id, _)| id)
    }

    /// Routes a write: appends it to the recovery log and returns the set
    /// of active backends that must execute it (write broadcast). The
    /// statement is `Arc`-shared — broadcasting to N mirrored backends and
    /// logging it performs zero statement clones. All active backends'
    /// checkpoints advance — in this deterministic model the broadcast is
    /// applied atomically with respect to membership changes.
    pub fn route_write(
        &mut self,
        stmt: Arc<Statement>,
    ) -> Result<(u64, Vec<ServerId>), CjdbcError> {
        let mut targets = Vec::new();
        let index = self.route_write_into(stmt, None, &mut targets)?;
        Ok((index, targets))
    }

    /// Scratch-buffer variant of [`CjdbcController::route_write`]: fills
    /// `out` with the broadcast set (id order, so `out[0]` is the write
    /// primary) instead of allocating, and logs the write together with
    /// the delta its primary captured, if any. The steady-state write path
    /// performs zero allocations here.
    // jade-audit: allow(hot-panic): the ids in `out` were collected from
    // the backend map a few lines above; the expect restates that.
    pub fn route_write_into(
        &mut self,
        stmt: Arc<Statement>,
        delta: Option<Arc<WriteDelta>>,
        out: &mut Vec<ServerId>,
    ) -> Result<u64, CjdbcError> {
        out.clear();
        out.extend(
            self.backends
                .iter()
                .filter(|(_, b)| b.status == BackendStatus::Active)
                .map(|(&id, _)| id),
        );
        if out.is_empty() {
            return Err(CjdbcError::NoActiveBackend);
        }
        let index = match delta {
            Some(delta) => self.log.append_captured(stmt, delta),
            None => self.log.append(stmt),
        };
        for id in out.iter() {
            let b = self.backends.get_mut(id).expect("active is known");
            b.checkpoint = index + 1;
            b.applied = index + 1;
            b.pending += 1;
        }
        Ok(index)
    }

    // ------------------------------------------------------------------
    // Checkpoint snapshots (delegated to the recovery log)
    // ------------------------------------------------------------------

    /// True when the log wants a fresh checkpoint snapshot installed.
    pub fn snapshot_due(&self) -> bool {
        self.log.snapshot_due()
    }

    /// Installs a checkpoint snapshot of the cluster state at the current
    /// log head (taken from any up-to-date backend — all active replicas
    /// are identical under full mirroring).
    pub fn install_snapshot(&mut self, snapshot: Snapshot) {
        self.log.install_snapshot(snapshot);
    }

    /// Reconfigures the checkpoint snapshot cadence.
    pub fn set_snapshot_interval(&mut self, every: u64) {
        self.log.set_snapshot_interval(every);
    }

    /// Records completion of a query on a backend (pending accounting for
    /// the Least-Pending policy).
    pub fn note_complete(&mut self, server: ServerId) {
        if let Some(b) = self.backends.get_mut(&server) {
            b.pending = b.pending.saturating_sub(1);
        }
    }

    /// In-flight queries on a backend.
    pub fn pending(&self, server: ServerId) -> usize {
        self.backends.get(&server).map(|b| b.pending).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::Value;

    fn schema() -> Arc<Schema> {
        Schema::builder().table("t", &["a"]).build()
    }

    fn write(i: i64) -> Arc<Statement> {
        Arc::new(schema().insert("t", &[("a", Value::Int(i))]))
    }

    fn controller_with_active(n: u32) -> CjdbcController {
        let mut c = CjdbcController::new(ReadPolicy::RoundRobin, schema());
        for i in 0..n {
            let id = ServerId(i);
            c.register_backend(id);
            let plan = c.begin_enable(id).unwrap();
            assert!(plan.is_empty());
            assert!(c.finish_replay(id).unwrap().is_none());
        }
        c
    }

    #[test]
    fn fresh_backends_activate_without_replay() {
        let c = controller_with_active(2);
        assert_eq!(c.active_count(), 2);
    }

    #[test]
    fn writes_broadcast_to_all_active() {
        let mut c = controller_with_active(3);
        let (idx, targets) = c.route_write(write(1)).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(targets.len(), 3);
        assert_eq!(c.recovery_log().head(), 1);
    }

    #[test]
    fn round_robin_cycles() {
        let mut c = controller_with_active(3);
        let mut rng = SimRng::seed_from_u64(1);
        let picks: Vec<ServerId> = (0..6).map(|_| c.route_read(&mut rng).unwrap()).collect();
        assert_eq!(picks[0], picks[3]);
        assert_eq!(picks[1], picks[4]);
        assert_ne!(picks[0], picks[1]);
    }

    #[test]
    fn least_pending_prefers_idle_backend() {
        let mut c = controller_with_active(2);
        c.set_policy(ReadPolicy::LeastPending);
        let mut rng = SimRng::seed_from_u64(1);
        let first = c.route_read(&mut rng).unwrap();
        // Backend `first` now has 1 pending; next read goes elsewhere.
        let second = c.route_read(&mut rng).unwrap();
        assert_ne!(first, second);
        c.note_complete(first);
        c.note_complete(second);
        assert_eq!(c.pending(first), 0);
    }

    #[test]
    fn read_with_no_active_backend_fails() {
        let mut c = CjdbcController::new(ReadPolicy::Random, schema());
        c.register_backend(ServerId(0));
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(c.route_read(&mut rng), Err(CjdbcError::NoActiveBackend));
    }

    #[test]
    fn late_joiner_gets_exact_backlog() {
        let mut c = controller_with_active(1);
        for i in 0..5 {
            c.route_write(write(i)).unwrap();
        }
        let id = ServerId(9);
        c.register_backend(id);
        let plan = c.begin_enable(id).unwrap();
        assert_eq!(plan.entries.len(), 5);
        assert_eq!(plan.backlog, 5);
        assert_eq!(plan.entries[0].index, 0);
        assert_eq!(plan.entries[4].index, 4);
        assert!(c.finish_replay(id).unwrap().is_none());
        assert_eq!(c.status(id).unwrap(), BackendStatus::Active);
    }

    #[test]
    fn writes_during_sync_produce_second_batch() {
        let mut c = controller_with_active(1);
        c.route_write(write(0)).unwrap();
        let id = ServerId(9);
        c.register_backend(id);
        let batch1 = c.begin_enable(id).unwrap();
        assert_eq!(batch1.entries.len(), 1);
        // A write lands while the new backend replays batch 1. It goes to
        // the active backend only (the syncing one is not in the broadcast
        // set).
        let (_, targets) = c.route_write(write(1)).unwrap();
        assert!(!targets.contains(&id));
        let batch2 = c.finish_replay(id).unwrap().expect("second batch");
        assert!(
            batch2.snapshot.is_none(),
            "second tails never need snapshots"
        );
        assert_eq!(batch2.entries.len(), 1);
        assert_eq!(batch2.entries[0].index, 1);
        assert!(c.finish_replay(id).unwrap().is_none());
        assert_eq!(c.status(id).unwrap(), BackendStatus::Active);
    }

    #[test]
    fn disable_records_checkpoint_and_reenable_replays_only_missing() {
        let mut c = controller_with_active(2);
        c.route_write(write(0)).unwrap();
        c.disable_backend(ServerId(1)).unwrap();
        assert_eq!(c.checkpoint(ServerId(1)).unwrap(), 1);
        // Two writes happen while disabled.
        c.route_write(write(1)).unwrap();
        c.route_write(write(2)).unwrap();
        let plan = c.begin_enable(ServerId(1)).unwrap();
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.entries[0].index, 1);
    }

    #[test]
    fn failed_backend_resyncs_from_scratch() {
        let mut c = controller_with_active(2);
        c.route_write(write(0)).unwrap();
        c.fail_backend(ServerId(1)).unwrap();
        assert_eq!(c.checkpoint(ServerId(1)).unwrap(), 0);
        let plan = c.begin_enable(ServerId(1)).unwrap();
        assert_eq!(plan.entries.len(), 1, "full log replayed after failure");
    }

    #[test]
    fn abort_enable_restores_the_applied_checkpoint() {
        let mut c = controller_with_active(1);
        for i in 0..4 {
            c.route_write(write(i)).unwrap();
        }
        let id = ServerId(9);
        c.register_backend(id);
        // Begin: batch covers entries 0..4; abort before acknowledging.
        let batch = c.begin_enable(id).unwrap();
        assert_eq!(batch.entries.len(), 4);
        c.abort_enable(id).unwrap();
        assert_eq!(c.status(id).unwrap(), BackendStatus::Disabled);
        assert_eq!(c.checkpoint(id).unwrap(), 0, "nothing acknowledged");
        // Re-enable replays the same suffix — no entry lost or doubled.
        let batch = c.begin_enable(id).unwrap();
        assert_eq!(batch.entries.len(), 4);
        // Acknowledge the first batch, then writes arrive, then abort:
        // the checkpoint keeps the acknowledged prefix.
        let (_, _) = c.route_write(write(100)).unwrap();
        let next = c.finish_replay(id).unwrap().expect("second batch");
        assert_eq!(next.entries.len(), 1);
        c.abort_enable(id).unwrap();
        assert_eq!(c.checkpoint(id).unwrap(), 4, "first batch acknowledged");
        // Final enable replays only the unacknowledged suffix.
        let batch = c.begin_enable(id).unwrap();
        assert_eq!(batch.entries.len(), 1);
        assert_eq!(batch.entries[0].index, 4);
    }

    #[test]
    fn disable_then_reenable_replays_only_the_gap() {
        // The paper's §4.1 symmetric removal: disable keeps the trace.
        let mut c = controller_with_active(2);
        c.route_write(write(0)).unwrap();
        c.disable_backend(ServerId(1)).unwrap();
        for i in 1..4 {
            c.route_write(write(i)).unwrap();
        }
        let plan = c.begin_enable(ServerId(1)).unwrap();
        let indices: Vec<u64> = plan.entries.iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![1, 2, 3], "exactly the missed suffix");
    }

    #[test]
    fn primary_is_first_active_in_id_order() {
        let mut c = controller_with_active(3);
        assert_eq!(c.write_primary(), Some(ServerId(0)));
        // Disabling the primary promotes the next id deterministically.
        c.disable_backend(ServerId(0)).unwrap();
        assert_eq!(c.write_primary(), Some(ServerId(1)));
        c.disable_backend(ServerId(1)).unwrap();
        c.disable_backend(ServerId(2)).unwrap();
        assert_eq!(c.write_primary(), None);
    }

    #[test]
    fn route_write_into_reuses_scratch_and_orders_primary_first() {
        let mut c = controller_with_active(3);
        let mut scratch = vec![ServerId(99)]; // stale content must be cleared
        let idx = c.route_write_into(write(1), None, &mut scratch).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(scratch, vec![ServerId(0), ServerId(1), ServerId(2)]);
        assert_eq!(scratch[0], c.write_primary().unwrap());
        let idx = c.route_write_into(write(2), None, &mut scratch).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(scratch.len(), 3);
    }

    #[test]
    fn late_joiner_plan_uses_nearest_snapshot_with_full_backlog() {
        use crate::storage::Database;
        let mut c = controller_with_active(1);
        c.set_snapshot_interval(4);
        let mut db = Database::new(schema());
        db.execute(&schema().create_table("t")).unwrap();
        // The create-table broadcast is also a logged write.
        let (_, targets) = c.route_write(Arc::new(schema().create_table("t"))).unwrap();
        assert_eq!(targets.len(), 1);
        for i in 0..9 {
            let stmt = write(i);
            c.route_write(Arc::clone(&stmt)).unwrap();
            db.execute(&stmt).unwrap();
            if c.snapshot_due() {
                c.install_snapshot(db.snapshot());
            }
        }
        // 10 writes, snapshots at 4 and 8: a fresh joiner restores the
        // snapshot at 8 and applies a 2-entry tail, yet the latency model
        // still sees the full 10-entry backlog.
        let id = ServerId(9);
        c.register_backend(id);
        let plan = c.begin_enable(id).unwrap();
        assert_eq!(plan.snapshot.as_ref().map(|(p, _)| *p), Some(8));
        assert_eq!(plan.entries.len(), 2);
        assert_eq!(plan.backlog, 10);
        // Restoring + applying the tail converges to the live state.
        let (pos, snap) = plan.snapshot.unwrap();
        let mut joiner = Database::from_snapshot(&snap);
        for entry in &plan.entries {
            assert!(entry.index >= pos);
            joiner.execute(&entry.statement).unwrap();
        }
        assert_eq!(joiner.digest(), db.digest());
    }

    // Satellite: membership edge cases the delta path must preserve.

    #[test]
    fn fail_during_syncing_discards_session_and_resets_checkpoint() {
        let mut c = controller_with_active(1);
        for i in 0..3 {
            c.route_write(write(i)).unwrap();
        }
        let id = ServerId(9);
        c.register_backend(id);
        let plan = c.begin_enable(id).unwrap();
        assert_eq!(plan.entries.len(), 3);
        assert_eq!(c.checkpoint(id).unwrap(), 3, "optimistic during sync");
        // The node dies mid-replay: nothing it applied is trusted.
        c.fail_backend(id).unwrap();
        assert_eq!(c.status(id).unwrap(), BackendStatus::Disabled);
        assert_eq!(c.checkpoint(id).unwrap(), 0);
        let plan = c.begin_enable(id).unwrap();
        assert_eq!(plan.entries.len(), 3, "full resync after failure");
    }

    #[test]
    fn abort_during_syncing_falls_back_to_applied() {
        // The graceful counterpart: an aborted enable keeps exactly the
        // acknowledged prefix (checkpoint falls back to `applied`).
        let mut c = controller_with_active(1);
        for i in 0..3 {
            c.route_write(write(i)).unwrap();
        }
        let id = ServerId(9);
        c.register_backend(id);
        c.begin_enable(id).unwrap();
        c.route_write(write(3)).unwrap();
        // First batch (3 entries) acknowledged; second (1 entry) handed
        // out but never acknowledged before the abort.
        assert!(c.finish_replay(id).unwrap().is_some());
        c.abort_enable(id).unwrap();
        assert_eq!(c.checkpoint(id).unwrap(), 3);
        let plan = c.begin_enable(id).unwrap();
        assert_eq!(plan.entries.len(), 1, "only the unacknowledged suffix");
        assert_eq!(plan.entries[0].index, 3);
    }

    #[test]
    fn fail_then_reregister_starts_from_scratch() {
        let mut c = controller_with_active(2);
        for i in 0..4 {
            c.route_write(write(i)).unwrap();
        }
        c.fail_backend(ServerId(1)).unwrap();
        // The node is released, then a replacement registers under the
        // same id: checkpoint must be 0, not inherited.
        c.unregister_backend(ServerId(1));
        c.register_backend(ServerId(1));
        assert_eq!(c.checkpoint(ServerId(1)).unwrap(), 0);
        let plan = c.begin_enable(ServerId(1)).unwrap();
        assert_eq!(plan.backlog, 4, "replays the whole history");
    }

    #[test]
    fn membership_errors() {
        let mut c = controller_with_active(1);
        assert!(matches!(
            c.begin_enable(ServerId(42)),
            Err(CjdbcError::UnknownBackend(_))
        ));
        assert!(matches!(
            c.begin_enable(ServerId(0)),
            Err(CjdbcError::WrongStatus(_, BackendStatus::Active))
        ));
        assert!(matches!(
            c.finish_replay(ServerId(0)),
            Err(CjdbcError::WrongStatus(_, BackendStatus::Active))
        ));
        c.disable_backend(ServerId(0)).unwrap();
        assert!(matches!(
            c.disable_backend(ServerId(0)),
            Err(CjdbcError::WrongStatus(_, BackendStatus::Disabled))
        ));
    }
}
