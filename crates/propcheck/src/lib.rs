//! # jade-propcheck — minimal property-based testing
//!
//! A small, dependency-free stand-in for the parts of `proptest` this
//! workspace uses: run a closure over many generated cases, with
//! deterministic seeding and a printed reproduction recipe on failure.
//!
//! ```
//! use jade_propcheck::run;
//!
//! run("addition_commutes", 64, |g| {
//!     let a = g.u64(0..1_000);
//!     let b = g.u64(0..1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Unlike proptest there is no shrinking: a failing case prints its case
//! index and seed, and `PROPCHECK_SEED`/`PROPCHECK_CASES` re-run exactly
//! that input. Determinism of the system under test (the whole point of
//! the simulator) makes minimal counterexamples less critical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-case random input generator.
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed (normally done by [`run`]).
    pub fn from_seed(seed: u64) -> Self {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    pub fn u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next() % span
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    pub fn usize(&mut self, range: Range<usize>) -> usize {
        self.u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in `[range.start, range.end)`.
    pub fn u32(&mut self, range: Range<u32>) -> u32 {
        self.u64(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `u8` over the full range.
    pub fn u8(&mut self) -> u8 {
        self.next() as u8
    }

    /// Uniform `i64` over the full range.
    pub fn i64(&mut self) -> i64 {
        self.next() as i64
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    pub fn f64(&mut self, range: Range<f64>) -> f64 {
        let unit = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(0..items.len())]
    }

    /// Picks an index from integer weights (proptest's `prop_oneof!` with
    /// weights). Panics if all weights are zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted() needs a positive total");
        let mut x = self.u64(0..total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w as u64 {
                return i;
            }
            x -= w as u64;
        }
        unreachable!("weights exhausted")
    }

    /// A vector with a length drawn from `len` and elements from `f`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// Lowercase identifier: `[a-z][a-z0-9-]{0, max_tail}`.
    pub fn ident(&mut self, max_tail: usize) -> String {
        const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
        let mut s = String::new();
        s.push(*self.choose(HEAD) as char);
        for _ in 0..self.usize(0..max_tail + 1) {
            s.push(*self.choose(TAIL) as char);
        }
        s
    }

    /// A string of up to `max_len` chars drawn from `alphabet`.
    pub fn string_of(&mut self, alphabet: &[char], max_len: usize) -> String {
        let n = self.usize(0..max_len + 1);
        (0..n).map(|_| *self.choose(alphabet)).collect()
    }
}

/// Default number of cases when neither the caller nor the environment
/// says otherwise.
pub const DEFAULT_CASES: u32 = 256;

/// Runs `property` over `cases` generated inputs. Deterministic: the same
/// binary runs the same cases. Override with `PROPCHECK_CASES` (count) and
/// `PROPCHECK_SEED` (base seed) to reproduce or broaden a run.
pub fn run(name: &str, cases: u32, property: impl Fn(&mut Gen)) {
    // jade-audit: allow(nondet-env): documented repro knob of the test harness itself; it never runs inside a simulation
    let cases = std::env::var("PROPCHECK_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(cases);
    // jade-audit: allow(nondet-env): documented repro knob of the test harness itself; it never runs inside a simulation
    let base: u64 = std::env::var("PROPCHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4A41_4445_0001); // "JADE"
    for case in 0..cases {
        let mut sm = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut sm);
        let mut g = Gen::from_seed(seed);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = result {
            eprintln!(
                "propcheck: property '{name}' failed at case {case}/{cases} \
                 (reproduce with PROPCHECK_SEED={base} PROPCHECK_CASES={})",
                case + 1
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = Gen::from_seed(1);
        let mut b = Gen::from_seed(1);
        for _ in 0..64 {
            assert_eq!(a.u64(0..1_000), b.u64(0..1_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::from_seed(7);
        for _ in 0..10_000 {
            assert!((10..20).contains(&g.u64(10..20)));
            let f = g.f64(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn weighted_skips_zero_weights() {
        let mut g = Gen::from_seed(3);
        for _ in 0..1_000 {
            assert_ne!(g.weighted(&[3, 0, 5]), 1);
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut g = Gen::from_seed(9);
        for _ in 0..100 {
            let v = g.vec(1..8, |g| g.bool());
            assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    fn run_executes_all_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = AtomicU32::new(0);
        run("counter", 17, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert!(counter.load(Ordering::Relaxed) >= 17);
    }

    #[test]
    #[should_panic]
    fn failures_propagate() {
        run("always_fails", 4, |_| panic!("nope"));
    }
}
