//! Attribute values exposed by the attribute controller.
//!
//! "An attribute is a configurable property of a component" (paper §3.1).
//! The wrapper reflects attribute writes onto the legacy configuration
//! artifact (e.g. the `port` attribute of an Apache component is reflected
//! into `httpd.conf`, §3.2).

use std::fmt;

/// A dynamically typed attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// UTF-8 string.
    Str(String),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl AttrValue {
    /// String view, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view; `Int` only (no silent coercion).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view; accepts `Int` too (widening is lossless in practice for
    /// configuration-scale numbers).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(x) => Some(*x),
            AttrValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value the way a configuration file would show it.
    pub fn render(&self) -> String {
        match self {
            AttrValue::Str(s) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(x) => format!("{x}"),
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}
impl From<u16> for AttrValue {
    fn from(i: u16) -> Self {
        AttrValue::Int(i as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Float(x)
    }
}
impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_views() {
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(7i64).as_int(), Some(7));
        assert_eq!(AttrValue::from(7i64).as_float(), Some(7.0));
        assert_eq!(AttrValue::from(2.5).as_float(), Some(2.5));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(AttrValue::from("x").as_int(), None);
        assert_eq!(AttrValue::from(1i64).as_str(), None);
    }

    #[test]
    fn render_matches_config_file_syntax() {
        assert_eq!(AttrValue::from(8098i64).render(), "8098");
        assert_eq!(AttrValue::from("node3").render(), "node3");
        assert_eq!(AttrValue::from(false).render(), "false");
        assert_eq!(format!("{}", AttrValue::from(1.5)), "1.5");
    }
}
