//! Component records and life-cycle states (paper §3.1).

use crate::attr::AttrValue;
use crate::interface::InterfaceDecl;
use crate::wrapper::Wrapper;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Opaque component identity ("a run-time entity … that has a distinct
/// identity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

/// Life-cycle controller states.
///
/// The paper's life-cycle controller exposes start/stop and a running /
/// stopped state; we add `Failed` so the self-recovery manager (paper §3.4,
/// reference \[4\]) can observe and repair broken components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifecycleState {
    /// Not running; attributes and bindings may be changed freely.
    Stopped,
    /// Running.
    Started,
    /// Crashed or declared failed by a failure detector.
    Failed,
}

/// Primitive components encapsulate a wrapper; composites contain
/// sub-components (content controller).
pub(crate) enum Kind<E> {
    Primitive(Option<Box<dyn Wrapper<E> + Send + Sync>>),
    Composite(Vec<ComponentId>),
}

/// One endpoint of a binding: `(component, interface-name)`.
///
/// The interface name is an interned `Arc<str>` (see
/// `Registry::intern`), so cloning an endpoint — which the binding
/// controller and journal do on every bind/unbind — is two pointer-sized
/// copies, not a string allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Component holding the interface.
    pub component: ComponentId,
    /// Interface name on that component.
    pub interface: Arc<str>,
}

/// Internal component record; accessed through the registry's controllers.
/// Names and map keys are interned `Arc<str>`s shared with the journal.
pub(crate) struct Component<E> {
    pub(crate) name: Arc<str>,
    pub(crate) parent: Option<ComponentId>,
    pub(crate) kind: Kind<E>,
    pub(crate) interfaces: Vec<InterfaceDecl>,
    /// client interface name -> bound server endpoints (len <= 1 unless the
    /// interface has collection cardinality).
    pub(crate) bindings: BTreeMap<Arc<str>, Vec<Endpoint>>,
    pub(crate) attrs: BTreeMap<Arc<str>, AttrValue>,
    pub(crate) state: LifecycleState,
}

impl<E> Component<E> {
    pub(crate) fn interface(&self, name: &str) -> Option<&InterfaceDecl> {
        self.interfaces.iter().find(|i| i.name == name)
    }
}

/// Public, introspectable snapshot of one component (introspection
/// interface, paper §3.2: "an administration program can inspect an Apache
/// web server component … to discover that this server runs on node1:port
/// 80 and is bound to a Tomcat server running on node2:port 66").
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentInfo {
    /// Component identity.
    pub id: ComponentId,
    /// Name unique among siblings.
    pub name: String,
    /// Enclosing composite, if any.
    pub parent: Option<ComponentId>,
    /// True for composites.
    pub composite: bool,
    /// Sub-components (composites only).
    pub children: Vec<ComponentId>,
    /// Declared interfaces.
    pub interfaces: Vec<InterfaceDecl>,
    /// Current bindings: client interface -> endpoints.
    pub bindings: Vec<(String, Vec<Endpoint>)>,
    /// Current attributes.
    pub attributes: Vec<(String, AttrValue)>,
    /// Life-cycle state.
    pub state: LifecycleState,
}
