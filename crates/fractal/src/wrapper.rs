//! Wrappers: the component-specific implementation behind the uniform
//! management interface (paper §3.2).
//!
//! "In the management layer, all components provide the same (uniform)
//! management interface for the encapsulated software, and the
//! corresponding implementation (the wrapper) is specific to each software."
//!
//! A wrapper receives an *environment* `E` — in the J2EE reproduction this
//! is the simulated legacy layer (nodes, server processes, configuration
//! files) — and reflects control operations onto it, exactly as Jade's
//! wrappers edited `httpd.conf` / `worker.properties` and invoked the
//! legacy start/stop scripts.

use crate::attr::AttrValue;
use crate::component::{ComponentId, Endpoint};
use crate::error::Result;
use std::sync::Arc;

/// Read-only view of the rest of the management layer handed to a wrapper
/// during a control operation (so e.g. Apache's `bind` can look up the
/// target Tomcat's `host`/`port` attributes to render `worker.properties`).
pub trait ArchView {
    /// Attribute of another component, if set.
    fn attr_of(&self, id: ComponentId, name: &str) -> Option<AttrValue>;
    /// Name of another component. Returns the interned name — a shared
    /// `Arc<str>`, not a fresh allocation.
    fn name_of(&self, id: ComponentId) -> Option<Arc<str>>;
    /// Current endpoints bound to `(id, client_itf)`.
    fn bound_to(&self, id: ComponentId, client_itf: &str) -> Vec<Endpoint>;
}

/// The behaviour a primitive component delegates to.
///
/// Every method has a default no-op success implementation so trivial
/// management components (sensors, reactors with no legacy counterpart)
/// only implement what they need.
#[allow(unused_variables)]
pub trait Wrapper<E> {
    /// Reflects an attribute write onto the legacy layer. The registry has
    /// already stored the value; wrappers only need side effects.
    fn on_set_attr(
        &mut self,
        env: &mut E,
        view: &dyn ArchView,
        me: ComponentId,
        name: &str,
        value: &AttrValue,
    ) -> Result<()> {
        Ok(())
    }

    /// Validates an attribute name/value before it is stored. Returning an
    /// error rejects the write.
    fn validate_attr(&self, name: &str, value: &AttrValue) -> Result<()> {
        Ok(())
    }

    /// Reflects a new binding onto the legacy layer (e.g. add a worker
    /// entry to `worker.properties`).
    fn on_bind(
        &mut self,
        env: &mut E,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        target: &Endpoint,
    ) -> Result<()> {
        Ok(())
    }

    /// Reflects a binding removal onto the legacy layer.
    fn on_unbind(
        &mut self,
        env: &mut E,
        view: &dyn ArchView,
        me: ComponentId,
        client_itf: &str,
        target: &Endpoint,
    ) -> Result<()> {
        Ok(())
    }

    /// Starts the legacy entity (e.g. run the `httpd` script).
    fn on_start(&mut self, env: &mut E, view: &dyn ArchView, me: ComponentId) -> Result<()> {
        Ok(())
    }

    /// Stops the legacy entity (e.g. run the shutdown script).
    fn on_stop(&mut self, env: &mut E, view: &dyn ArchView, me: ComponentId) -> Result<()> {
        Ok(())
    }
}

/// A wrapper with no legacy counterpart; used for pure management
/// components and in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullWrapper;

impl<E> Wrapper<E> for NullWrapper {}
