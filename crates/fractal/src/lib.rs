//! # jade-fractal — a Fractal-style reflective component model
//!
//! Rust reimplementation of the component model Jade builds on (paper
//! §3.1, Bruneton et al.'s Fractal): components are run-time entities with
//! distinct identities, primitive components encapsulate a program (here: a
//! [`wrapper::Wrapper`] that reflects control operations onto a legacy
//! environment), composite components assemble sub-components, and
//! communication paths are explicit *bindings* between client and server
//! interfaces.
//!
//! The model's controllers give the management layer its uniform
//! interface:
//!
//! * attribute controller — configurable properties,
//! * binding controller — (un)bind client interfaces,
//! * content controller — list/add/remove sub-components,
//! * life-cycle controller — start/stop/state.
//!
//! All of it is mediated by [`registry::Registry`], which validates every
//! operation against the architecture before delegating to the wrapper,
//! and journals it for auditing (and for the paper's §5.1 qualitative
//! comparison of reconfiguration effort).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod component;
pub mod error;
pub mod interface;
pub mod registry;
pub mod snapshot;
pub mod wrapper;

pub use attr::AttrValue;
pub use component::{ComponentId, ComponentInfo, Endpoint, LifecycleState};
pub use error::{FractalError, Result};
pub use interface::{Cardinality, Contingency, InterfaceDecl, Role};
pub use registry::{JournalOp, Registry};
pub use snapshot::{Change, ComponentSnapshot, Snapshot};
pub use wrapper::{ArchView, NullWrapper, Wrapper};
