//! Error type for component-model operations.

use crate::component::{ComponentId, LifecycleState};
use std::fmt;

/// Errors raised by the management layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FractalError {
    /// The component id does not exist (or was removed).
    NoSuchComponent(ComponentId),
    /// No component with this name exists under the given parent.
    NoSuchName(String),
    /// The named interface is not declared on the component.
    NoSuchInterface {
        /// Component carrying the declaration.
        component: ComponentId,
        /// Interface name looked up.
        interface: String,
    },
    /// Binding endpoints have incompatible roles or signatures.
    IncompatibleBinding {
        /// Why the binding was rejected.
        reason: String,
    },
    /// Interface already bound (single cardinality) or not bound on unbind.
    BindingState {
        /// Description of the conflict.
        reason: String,
    },
    /// Operation illegal in the component's current life-cycle state.
    InvalidLifecycle {
        /// Component involved.
        component: ComponentId,
        /// State the component was in.
        state: LifecycleState,
        /// Operation attempted.
        operation: &'static str,
    },
    /// A mandatory client interface is unbound at start time.
    UnboundMandatory {
        /// Component being started.
        component: ComponentId,
        /// The unbound interface.
        interface: String,
    },
    /// The attribute is not supported by the component.
    NoSuchAttribute {
        /// Component involved.
        component: ComponentId,
        /// Attribute looked up.
        attribute: String,
    },
    /// Attribute value has the wrong type or an illegal value.
    InvalidAttribute {
        /// Attribute involved.
        attribute: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// Content-controller operation applied to a primitive component.
    NotComposite(ComponentId),
    /// Wrapper-specific failure surfaced through the uniform interface.
    Wrapper {
        /// Human-readable wrapper diagnostic.
        reason: String,
    },
    /// The component's wrapper is momentarily unavailable (re-entrant call).
    Reentrant(ComponentId),
}

impl fmt::Display for FractalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FractalError::NoSuchComponent(id) => write!(f, "no such component: {id:?}"),
            FractalError::NoSuchName(name) => write!(f, "no component named '{name}'"),
            FractalError::NoSuchInterface {
                component,
                interface,
            } => write!(f, "component {component:?} has no interface '{interface}'"),
            FractalError::IncompatibleBinding { reason } => {
                write!(f, "incompatible binding: {reason}")
            }
            FractalError::BindingState { reason } => write!(f, "binding state error: {reason}"),
            FractalError::InvalidLifecycle {
                component,
                state,
                operation,
            } => write!(
                f,
                "cannot {operation} component {component:?} in state {state:?}"
            ),
            FractalError::UnboundMandatory {
                component,
                interface,
            } => write!(
                f,
                "component {component:?}: mandatory interface '{interface}' is unbound"
            ),
            FractalError::NoSuchAttribute {
                component,
                attribute,
            } => write!(f, "component {component:?} has no attribute '{attribute}'"),
            FractalError::InvalidAttribute { attribute, reason } => {
                write!(f, "invalid value for attribute '{attribute}': {reason}")
            }
            FractalError::NotComposite(id) => {
                write!(f, "component {id:?} is primitive, not composite")
            }
            FractalError::Wrapper { reason } => write!(f, "wrapper error: {reason}"),
            FractalError::Reentrant(id) => {
                write!(f, "re-entrant control operation on component {id:?}")
            }
        }
    }
}

impl std::error::Error for FractalError {}

/// Convenience alias.
pub type Result<T, E = FractalError> = std::result::Result<T, E>;
