//! Component interfaces (paper §3.1).
//!
//! "An interface is an access point to a component … server interfaces
//! correspond to access points accepting incoming method calls, client
//! interfaces to access points supporting outgoing calls. The signatures of
//! both kinds can be described by a standard Java interface declaration,
//! with an additional role indication."
//!
//! We keep the *signature* as an opaque name (e.g. `"ajp"`, `"jdbc"`):
//! two interfaces are bindable when one is a client and the other a server
//! of the same signature.

/// Whether the interface accepts or emits calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Accepts incoming method calls.
    Server,
    /// Emits outgoing method calls; bound to a server interface.
    Client,
}

/// Whether a client interface must be bound before the component starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Contingency {
    /// Must be bound at start time (Fractal "mandatory").
    Mandatory,
    /// May remain unbound.
    Optional,
}

/// Whether the interface supports one or many simultaneous bindings.
///
/// Collection interfaces are how a load balancer points at a dynamic set
/// of replicas: `plb.bind("workers", tomcat_i)` for each replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Exactly zero or one binding.
    Single,
    /// Any number of bindings.
    Collection,
}

/// Declaration of one interface on a component.
#[derive(Debug, Clone, PartialEq)]
pub struct InterfaceDecl {
    /// Interface name, unique per component (e.g. `"ajp-itf"`).
    pub name: String,
    /// Server or client role.
    pub role: Role,
    /// Signature both endpoints must share (e.g. `"ajp"`).
    pub signature: String,
    /// Start-time binding requirement (clients only; ignored for servers).
    pub contingency: Contingency,
    /// Single or collection binding.
    pub cardinality: Cardinality,
}

impl InterfaceDecl {
    /// Declares a server interface.
    pub fn server(name: &str, signature: &str) -> Self {
        InterfaceDecl {
            name: name.to_owned(),
            role: Role::Server,
            signature: signature.to_owned(),
            contingency: Contingency::Optional,
            cardinality: Cardinality::Single,
        }
    }

    /// Declares a mandatory, single-binding client interface.
    pub fn client(name: &str, signature: &str) -> Self {
        InterfaceDecl {
            name: name.to_owned(),
            role: Role::Client,
            signature: signature.to_owned(),
            contingency: Contingency::Mandatory,
            cardinality: Cardinality::Single,
        }
    }

    /// Declares an optional client interface.
    pub fn optional_client(name: &str, signature: &str) -> Self {
        InterfaceDecl {
            contingency: Contingency::Optional,
            ..InterfaceDecl::client(name, signature)
        }
    }

    /// Declares a collection client interface (load-balancer worker set).
    pub fn collection_client(name: &str, signature: &str) -> Self {
        InterfaceDecl {
            cardinality: Cardinality::Collection,
            contingency: Contingency::Optional,
            ..InterfaceDecl::client(name, signature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_roles() {
        let s = InterfaceDecl::server("http", "http");
        assert_eq!(s.role, Role::Server);
        let c = InterfaceDecl::client("ajp-itf", "ajp");
        assert_eq!(c.role, Role::Client);
        assert_eq!(c.contingency, Contingency::Mandatory);
        assert_eq!(c.cardinality, Cardinality::Single);
        let oc = InterfaceDecl::optional_client("jmx", "jmx");
        assert_eq!(oc.contingency, Contingency::Optional);
        let cc = InterfaceDecl::collection_client("workers", "ajp");
        assert_eq!(cc.cardinality, Cardinality::Collection);
        assert_eq!(cc.contingency, Contingency::Optional);
    }
}
