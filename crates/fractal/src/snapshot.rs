//! Architecture snapshots and diffs.
//!
//! The introspection interface (paper §3.2) lets an administration
//! program observe the managed architecture. A [`Snapshot`] captures the
//! whole registry at one instant; [`Snapshot::diff`] reports what changed
//! between two instants — precisely the reconfiguration that happened,
//! expressed in management-layer terms (the qualitative §5.1 scenario
//! diffs as one unbind, one bind and a stop/start pair).

use crate::attr::AttrValue;
use crate::component::{ComponentId, LifecycleState};
use crate::registry::Registry;
use std::collections::BTreeMap;
use std::fmt;

/// Captured state of one component.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSnapshot {
    /// Component name.
    pub name: String,
    /// Life-cycle state at capture time.
    pub state: LifecycleState,
    /// Attributes at capture time.
    pub attributes: BTreeMap<String, AttrValue>,
    /// Bindings: client interface -> target component names (stable
    /// names, not ids, so snapshots survive component replacement).
    pub bindings: BTreeMap<String, Vec<String>>,
    /// Children names (composites).
    pub children: Vec<String>,
}

/// Captured state of a whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Components by name.
    pub components: BTreeMap<String, ComponentSnapshot>,
}

/// One observed difference between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// Component present only in the newer snapshot.
    Added(String),
    /// Component present only in the older snapshot.
    Removed(String),
    /// Life-cycle state changed.
    StateChanged {
        /// Component name.
        name: String,
        /// State in the older snapshot.
        from: LifecycleState,
        /// State in the newer snapshot.
        to: LifecycleState,
    },
    /// An attribute changed (or appeared/disappeared).
    AttributeChanged {
        /// Component name.
        name: String,
        /// Attribute key.
        attribute: String,
        /// Old value, if any.
        from: Option<AttrValue>,
        /// New value, if any.
        to: Option<AttrValue>,
    },
    /// A binding was established.
    Bound {
        /// Component name.
        name: String,
        /// Client interface.
        interface: String,
        /// Target component name.
        target: String,
    },
    /// A binding was removed.
    Unbound {
        /// Component name.
        name: String,
        /// Client interface.
        interface: String,
        /// Target component name.
        target: String,
    },
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Change::Added(n) => write!(f, "+ component {n}"),
            Change::Removed(n) => write!(f, "- component {n}"),
            Change::StateChanged { name, from, to } => {
                write!(f, "~ {name}: {from:?} -> {to:?}")
            }
            Change::AttributeChanged {
                name,
                attribute,
                from,
                to,
            } => write!(f, "~ {name}.{attribute}: {from:?} -> {to:?}"),
            Change::Bound {
                name,
                interface,
                target,
            } => write!(f, "+ {name}.{interface} -> {target}"),
            Change::Unbound {
                name,
                interface,
                target,
            } => write!(f, "- {name}.{interface} -> {target}"),
        }
    }
}

impl Snapshot {
    /// Captures the current architecture of a registry.
    pub fn capture<E>(reg: &Registry<E>) -> Self {
        let mut components = BTreeMap::new();
        for id in reg.ids() {
            let Ok(info) = reg.info(id) else { continue };
            let name_of = |cid: ComponentId| -> String {
                reg.name(cid)
                    .map(|n| n.to_string())
                    .unwrap_or_else(|_| format!("{cid:?}"))
            };
            let bindings = info
                .bindings
                .iter()
                .map(|(itf, eps)| {
                    let mut targets: Vec<String> =
                        eps.iter().map(|e| name_of(e.component)).collect();
                    targets.sort_unstable();
                    (itf.clone(), targets)
                })
                .collect();
            components.insert(
                info.name.clone(),
                ComponentSnapshot {
                    name: info.name.clone(),
                    state: info.state,
                    attributes: info.attributes.iter().cloned().collect(),
                    bindings,
                    children: info.children.iter().map(|&c| name_of(c)).collect(),
                },
            );
        }
        Snapshot { components }
    }

    /// Differences from `self` (older) to `newer`, in a stable order.
    pub fn diff(&self, newer: &Snapshot) -> Vec<Change> {
        let mut changes = Vec::new();
        for name in self.components.keys() {
            if !newer.components.contains_key(name) {
                changes.push(Change::Removed(name.clone()));
            }
        }
        for (name, new_c) in &newer.components {
            let Some(old_c) = self.components.get(name) else {
                changes.push(Change::Added(name.clone()));
                continue;
            };
            if old_c.state != new_c.state {
                changes.push(Change::StateChanged {
                    name: name.clone(),
                    from: old_c.state,
                    to: new_c.state,
                });
            }
            // Attributes.
            for (k, old_v) in &old_c.attributes {
                match new_c.attributes.get(k) {
                    Some(v) if v == old_v => {}
                    other => changes.push(Change::AttributeChanged {
                        name: name.clone(),
                        attribute: k.clone(),
                        from: Some(old_v.clone()),
                        to: other.cloned(),
                    }),
                }
            }
            for (k, new_v) in &new_c.attributes {
                if !old_c.attributes.contains_key(k) {
                    changes.push(Change::AttributeChanged {
                        name: name.clone(),
                        attribute: k.clone(),
                        from: None,
                        to: Some(new_v.clone()),
                    });
                }
            }
            // Bindings (set difference per interface).
            let empty: Vec<String> = Vec::new();
            let interfaces: std::collections::BTreeSet<&String> =
                old_c.bindings.keys().chain(new_c.bindings.keys()).collect();
            for itf in interfaces {
                let old_t = old_c.bindings.get(itf).unwrap_or(&empty);
                let new_t = new_c.bindings.get(itf).unwrap_or(&empty);
                for t in old_t {
                    if !new_t.contains(t) {
                        changes.push(Change::Unbound {
                            name: name.clone(),
                            interface: itf.clone(),
                            target: t.clone(),
                        });
                    }
                }
                for t in new_t {
                    if !old_t.contains(t) {
                        changes.push(Change::Bound {
                            name: name.clone(),
                            interface: itf.clone(),
                            target: t.clone(),
                        });
                    }
                }
            }
        }
        changes
    }

    /// Number of captured components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::InterfaceDecl;
    use crate::wrapper::NullWrapper;

    fn build() -> (Registry<()>, ComponentId, ComponentId, ComponentId) {
        let mut reg: Registry<()> = Registry::new();
        let apache = reg.new_primitive(
            "Apache1",
            vec![
                InterfaceDecl::server("http", "http"),
                InterfaceDecl::optional_client("ajp-itf", "ajp"),
            ],
            Box::new(NullWrapper),
        );
        let t1 = reg.new_primitive(
            "Tomcat1",
            vec![InterfaceDecl::server("ajp", "ajp")],
            Box::new(NullWrapper),
        );
        let t2 = reg.new_primitive(
            "Tomcat2",
            vec![InterfaceDecl::server("ajp", "ajp")],
            Box::new(NullWrapper),
        );
        (reg, apache, t1, t2)
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let (reg, ..) = build();
        let a = Snapshot::capture(&reg);
        let b = Snapshot::capture(&reg);
        assert_eq!(a.diff(&b), vec![]);
        assert_eq!(a.len(), 3);
    }

    /// The §5.1 reconfiguration reads as exactly its four effects.
    #[test]
    fn qualitative_scenario_diffs_as_the_four_operations() {
        let (mut reg, apache, t1, t2) = build();
        let mut env = ();
        reg.bind(&mut env, apache, "ajp-itf", t1, "ajp").unwrap();
        reg.start(&mut env, apache).unwrap();
        let before = Snapshot::capture(&reg);

        reg.stop(&mut env, apache).unwrap();
        reg.unbind(&mut env, apache, "ajp-itf", None).unwrap();
        reg.bind(&mut env, apache, "ajp-itf", t2, "ajp").unwrap();
        reg.start(&mut env, apache).unwrap();
        let after = Snapshot::capture(&reg);

        let changes = before.diff(&after);
        // Net effect: the rebind (stop+start cancel out in the end state).
        assert_eq!(
            changes,
            vec![
                Change::Unbound {
                    name: "Apache1".into(),
                    interface: "ajp-itf".into(),
                    target: "Tomcat1".into()
                },
                Change::Bound {
                    name: "Apache1".into(),
                    interface: "ajp-itf".into(),
                    target: "Tomcat2".into()
                },
            ]
        );
        // Mid-operation snapshot also sees the state change.
        reg.stop(&mut env, apache).unwrap();
        let stopped = Snapshot::capture(&reg);
        let changes = after.diff(&stopped);
        assert!(changes.iter().any(|c| matches!(
            c,
            Change::StateChanged { name, to: LifecycleState::Stopped, .. } if name == "Apache1"
        )));
    }

    #[test]
    fn additions_removals_and_attributes() {
        let (mut reg, apache, ..) = build();
        let mut env = ();
        let before = Snapshot::capture(&reg);
        reg.set_attr(&mut env, apache, "port", 8081i64).unwrap();
        let extra = reg.new_primitive("MySQL1", vec![], Box::new(NullWrapper));
        let mid = Snapshot::capture(&reg);
        let changes = before.diff(&mid);
        assert!(changes.contains(&Change::Added("MySQL1".into())));
        assert!(changes.iter().any(|c| matches!(
            c,
            Change::AttributeChanged { name, attribute, from: None, .. }
                if name == "Apache1" && attribute == "port"
        )));
        reg.remove(extra).unwrap();
        let after = Snapshot::capture(&reg);
        assert!(mid.diff(&after).contains(&Change::Removed("MySQL1".into())));
    }

    #[test]
    fn changes_render_readably() {
        let c = Change::Bound {
            name: "Apache1".into(),
            interface: "ajp-itf".into(),
            target: "Tomcat2".into(),
        };
        assert_eq!(c.to_string(), "+ Apache1.ajp-itf -> Tomcat2");
    }
}
