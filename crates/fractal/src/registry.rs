//! The component registry: holds the management layer's architecture and
//! implements the four Fractal controllers through a uniform interface
//! (paper §3.1–§3.2):
//!
//! * **attribute controller** — [`Registry::set_attr`] / [`Registry::get_attr`],
//! * **binding controller** — [`Registry::bind`] / [`Registry::unbind`],
//! * **content controller** — [`Registry::add_child`] / [`Registry::remove_child`],
//! * **life-cycle controller** — [`Registry::start`] / [`Registry::stop`] /
//!   [`Registry::state`].
//!
//! Every control operation is validated against the architecture (roles,
//! signatures, cardinalities, life-cycle legality) *before* being delegated
//! to the component's wrapper, which reflects it onto the legacy layer.
//! All operations are journaled; the journal is what the qualitative
//! evaluation (paper §5.1) counts when comparing Jade reconfiguration
//! scripts against manual procedures.

use crate::attr::AttrValue;
use crate::component::{Component, ComponentId, ComponentInfo, Endpoint, Kind, LifecycleState};
use crate::error::{FractalError, Result};
use crate::interface::{Cardinality, Contingency, InterfaceDecl, Role};
use crate::wrapper::{ArchView, Wrapper};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Checked narrowing of a component slot index into the `u32` id space.
/// `jade-fractal` sits below `jade-sim` in the dependency order, so it
/// carries its own helper instead of `jade_sim::pack::id_u32`; the
/// behaviour is identical (panic instead of silent wrap-around).
#[inline]
#[track_caller]
fn comp_idx(i: usize) -> u32 {
    u32::try_from(i).expect("component count exceeds the u32 id space")
}

/// One journaled management operation.
///
/// Names are interned `Arc<str>`s shared with the component records, so
/// journaling an operation never allocates a string.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// Component created.
    Create(ComponentId, Arc<str>),
    /// Child added to a composite.
    AddChild(ComponentId, ComponentId),
    /// Child removed from a composite.
    RemoveChild(ComponentId, ComponentId),
    /// Attribute written.
    SetAttr(ComponentId, Arc<str>, AttrValue),
    /// Binding established.
    Bind(ComponentId, Arc<str>, Endpoint),
    /// Binding removed.
    Unbind(ComponentId, Arc<str>, Endpoint),
    /// Component started.
    Start(ComponentId),
    /// Component stopped.
    Stop(ComponentId),
    /// Component marked failed.
    Fail(ComponentId),
    /// Failed component repaired back to Stopped.
    Repair(ComponentId),
    /// Component destroyed.
    Remove(ComponentId),
}

/// The management-layer architecture, generic over the legacy environment
/// `E` that wrappers act upon.
pub struct Registry<E> {
    components: Vec<Option<Component<E>>>,
    journal: Vec<JournalOp>,
    /// Interned names (components, interfaces, attributes). Management
    /// vocabularies are tiny and highly repetitive ("port", "host",
    /// "workers", …), so the hot control operations reuse one allocation
    /// per distinct name for the lifetime of the registry.
    interner: BTreeSet<Arc<str>>,
}

impl<E> Default for Registry<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ArchView for Registry<E> {
    fn attr_of(&self, id: ComponentId, name: &str) -> Option<AttrValue> {
        self.comp(id).ok()?.attrs.get(name).cloned()
    }
    fn name_of(&self, id: ComponentId) -> Option<Arc<str>> {
        Some(self.comp(id).ok()?.name.clone())
    }
    fn bound_to(&self, id: ComponentId, client_itf: &str) -> Vec<Endpoint> {
        self.comp(id)
            .ok()
            .and_then(|c| c.bindings.get(client_itf).cloned())
            .unwrap_or_default()
    }
}

impl<E> Registry<E> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            components: Vec::new(),
            journal: Vec::new(),
            interner: BTreeSet::new(),
        }
    }

    /// Returns the shared `Arc<str>` for `s`, allocating only on first
    /// sight of a name.
    fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(existing) = self.interner.get(s) {
            return existing.clone();
        }
        let arc: Arc<str> = Arc::from(s);
        self.interner.insert(arc.clone());
        arc
    }

    fn comp(&self, id: ComponentId) -> Result<&Component<E>> {
        self.components
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(FractalError::NoSuchComponent(id))
    }

    fn comp_mut(&mut self, id: ComponentId) -> Result<&mut Component<E>> {
        self.components
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(FractalError::NoSuchComponent(id))
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn insert(&mut self, c: Component<E>) -> ComponentId {
        let id = ComponentId(comp_idx(self.components.len()));
        self.journal.push(JournalOp::Create(id, c.name.clone()));
        self.components.push(Some(c));
        id
    }

    /// Creates a primitive component around `wrapper`.
    #[cold]
    pub fn new_primitive(
        &mut self,
        name: &str,
        interfaces: Vec<InterfaceDecl>,
        wrapper: Box<dyn Wrapper<E> + Send + Sync>,
    ) -> ComponentId {
        let name = self.intern(name);
        self.insert(Component {
            name,
            parent: None,
            kind: Kind::Primitive(Some(wrapper)),
            interfaces,
            bindings: BTreeMap::new(),
            attrs: BTreeMap::new(),
            state: LifecycleState::Stopped,
        })
    }

    /// Creates a composite component.
    #[cold]
    pub fn new_composite(&mut self, name: &str, interfaces: Vec<InterfaceDecl>) -> ComponentId {
        let name = self.intern(name);
        self.insert(Component {
            name,
            parent: None,
            kind: Kind::Composite(Vec::new()),
            interfaces,
            bindings: BTreeMap::new(),
            attrs: BTreeMap::new(),
            state: LifecycleState::Stopped,
        })
    }

    /// Destroys a stopped, fully unbound component. Fails when other
    /// components still hold bindings toward it.
    #[cold]
    pub fn remove(&mut self, id: ComponentId) -> Result<()> {
        let c = self.comp(id)?;
        if c.state == LifecycleState::Started {
            return Err(FractalError::InvalidLifecycle {
                component: id,
                state: c.state,
                operation: "remove",
            });
        }
        if let Some(parent) = c.parent {
            return Err(FractalError::BindingState {
                reason: format!("component is still contained in composite {parent:?}"),
            });
        }
        let inbound = self.incoming_bindings(id);
        if !inbound.is_empty() {
            return Err(FractalError::BindingState {
                reason: format!(
                    "{} inbound binding(s) still target the component",
                    inbound.len()
                ),
            });
        }
        self.components[id.0 as usize] = None;
        self.journal.push(JournalOp::Remove(id));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Content controller
    // ------------------------------------------------------------------

    /// Adds `child` to composite `parent`.
    #[cold]
    pub fn add_child(&mut self, parent: ComponentId, child: ComponentId) -> Result<()> {
        // Validate both ends first.
        self.comp(child)?;
        let pc = self.comp(parent)?;
        match &pc.kind {
            Kind::Composite(kids) => {
                if kids.contains(&child) {
                    return Err(FractalError::BindingState {
                        reason: "child already contained".into(),
                    });
                }
            }
            Kind::Primitive(_) => return Err(FractalError::NotComposite(parent)),
        }
        if self.comp(child)?.parent.is_some() {
            return Err(FractalError::BindingState {
                reason: "child already has a parent".into(),
            });
        }
        if let Kind::Composite(kids) = &mut self.comp_mut(parent)?.kind {
            kids.push(child);
        }
        self.comp_mut(child)?.parent = Some(parent);
        self.journal.push(JournalOp::AddChild(parent, child));
        Ok(())
    }

    /// Removes `child` from composite `parent`.
    #[cold]
    pub fn remove_child(&mut self, parent: ComponentId, child: ComponentId) -> Result<()> {
        match &mut self.comp_mut(parent)?.kind {
            Kind::Composite(kids) => {
                let before = kids.len();
                kids.retain(|&k| k != child);
                if kids.len() == before {
                    return Err(FractalError::BindingState {
                        reason: "child not contained in composite".into(),
                    });
                }
            }
            Kind::Primitive(_) => return Err(FractalError::NotComposite(parent)),
        }
        self.comp_mut(child)?.parent = None;
        self.journal.push(JournalOp::RemoveChild(parent, child));
        Ok(())
    }

    /// Children of a composite (empty for primitives).
    pub fn children(&self, id: ComponentId) -> Vec<ComponentId> {
        match self.comp(id) {
            Ok(c) => match &c.kind {
                Kind::Composite(kids) => kids.clone(),
                Kind::Primitive(_) => Vec::new(),
            },
            Err(_) => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Attribute controller
    // ------------------------------------------------------------------

    /// Writes an attribute, then reflects it through the wrapper.
    #[cold]
    pub fn set_attr(
        &mut self,
        env: &mut E,
        id: ComponentId,
        name: &str,
        value: impl Into<AttrValue>,
    ) -> Result<()> {
        let value = value.into();
        // Validation hook first (primitive components only).
        if let Kind::Primitive(slot) = &self.comp(id)?.kind {
            let w = slot.as_ref().ok_or(FractalError::Reentrant(id))?;
            w.validate_attr(name, &value)?;
        }
        let name_arc = self.intern(name);
        self.comp_mut(id)?
            .attrs
            .insert(name_arc.clone(), value.clone());
        self.journal
            .push(JournalOp::SetAttr(id, name_arc, value.clone()));
        self.with_wrapper(id, |w, env, view| {
            w.on_set_attr(env, view, id, name, &value)
        })(env)
    }

    /// Reads an attribute.
    pub fn get_attr(&self, id: ComponentId, name: &str) -> Result<AttrValue> {
        self.comp(id)?
            .attrs
            .get(name)
            .cloned()
            .ok_or_else(|| FractalError::NoSuchAttribute {
                component: id,
                attribute: name.to_owned(),
            })
    }

    /// Reads an attribute, or a default when unset.
    pub fn attr_or(&self, id: ComponentId, name: &str, default: AttrValue) -> AttrValue {
        self.get_attr(id, name).unwrap_or(default)
    }

    // ------------------------------------------------------------------
    // Binding controller
    // ------------------------------------------------------------------

    /// Binds `(id, client_itf)` to `(target, server_itf)`.
    ///
    /// Validates: both interfaces exist, roles are client/server, the
    /// signatures match, and single-cardinality interfaces are not already
    /// bound.
    #[cold]
    pub fn bind(
        &mut self,
        env: &mut E,
        id: ComponentId,
        client_itf: &str,
        target: ComponentId,
        server_itf: &str,
    ) -> Result<()> {
        let (signature, cardinality) = {
            let c = self.comp(id)?;
            let decl = c
                .interface(client_itf)
                .ok_or_else(|| FractalError::NoSuchInterface {
                    component: id,
                    interface: client_itf.to_owned(),
                })?;
            if decl.role != Role::Client {
                return Err(FractalError::IncompatibleBinding {
                    reason: format!("'{client_itf}' is not a client interface"),
                });
            }
            (decl.signature.clone(), decl.cardinality)
        };
        {
            let t = self.comp(target)?;
            let sdecl = t
                .interface(server_itf)
                .ok_or_else(|| FractalError::NoSuchInterface {
                    component: target,
                    interface: server_itf.to_owned(),
                })?;
            if sdecl.role != Role::Server {
                return Err(FractalError::IncompatibleBinding {
                    reason: format!("'{server_itf}' is not a server interface"),
                });
            }
            if sdecl.signature != signature {
                return Err(FractalError::IncompatibleBinding {
                    reason: format!(
                        "signature mismatch: client '{signature}' vs server '{}'",
                        sdecl.signature
                    ),
                });
            }
        }
        let endpoint = Endpoint {
            component: target,
            interface: self.intern(server_itf),
        };
        let client_arc = self.intern(client_itf);
        {
            let c = self.comp_mut(id)?;
            let slot = c.bindings.entry(client_arc.clone()).or_default();
            if cardinality == Cardinality::Single && !slot.is_empty() {
                return Err(FractalError::BindingState {
                    reason: format!("interface '{client_itf}' is already bound"),
                });
            }
            if slot.contains(&endpoint) {
                return Err(FractalError::BindingState {
                    reason: "endpoint already bound".into(),
                });
            }
            slot.push(endpoint.clone());
        }
        self.journal
            .push(JournalOp::Bind(id, client_arc, endpoint.clone()));
        self.with_wrapper(id, |w, env, view| {
            w.on_bind(env, view, id, client_itf, &endpoint)
        })(env)
    }

    /// Removes the binding from `(id, client_itf)` to `target`; with a
    /// `None` target, removes the single existing binding (convenience for
    /// single-cardinality interfaces, as in the paper's
    /// `Apache1.unbind("ajp-itf")`).
    #[cold]
    pub fn unbind(
        &mut self,
        env: &mut E,
        id: ComponentId,
        client_itf: &str,
        target: Option<ComponentId>,
    ) -> Result<()> {
        let endpoint = {
            let c = self.comp_mut(id)?;
            let slot = c
                .bindings
                .get_mut(client_itf)
                .filter(|v| !v.is_empty())
                .ok_or_else(|| FractalError::BindingState {
                    reason: format!("interface '{client_itf}' is not bound"),
                })?;
            let idx = match target {
                None => {
                    if slot.len() > 1 {
                        return Err(FractalError::BindingState {
                            reason: format!(
                                "interface '{client_itf}' has {} bindings; name the target",
                                slot.len()
                            ),
                        });
                    }
                    0
                }
                Some(t) => slot.iter().position(|e| e.component == t).ok_or_else(|| {
                    FractalError::BindingState {
                        reason: format!("interface '{client_itf}' is not bound to {t:?}"),
                    }
                })?,
            };
            slot.remove(idx)
        };
        let client_arc = self.intern(client_itf);
        self.journal
            .push(JournalOp::Unbind(id, client_arc, endpoint.clone()));
        self.with_wrapper(id, |w, env, view| {
            w.on_unbind(env, view, id, client_itf, &endpoint)
        })(env)
    }

    /// Endpoints currently bound to `(id, client_itf)`.
    pub fn bindings_of(&self, id: ComponentId, client_itf: &str) -> Vec<Endpoint> {
        self.comp(id)
            .ok()
            .and_then(|c| c.bindings.get(client_itf).cloned())
            .unwrap_or_default()
    }

    /// All `(component, client_itf)` pairs bound *to* `target`. Interface
    /// names are the interned `Arc<str>`s — no per-call allocations beyond
    /// the result vector.
    pub fn incoming_bindings(&self, target: ComponentId) -> Vec<(ComponentId, Arc<str>)> {
        let mut result = Vec::new();
        for (idx, slot) in self.components.iter().enumerate() {
            let Some(c) = slot else { continue };
            for (itf, eps) in &c.bindings {
                if eps.iter().any(|e| e.component == target) {
                    result.push((ComponentId(comp_idx(idx)), itf.clone()));
                }
            }
        }
        result
    }

    // ------------------------------------------------------------------
    // Life-cycle controller
    // ------------------------------------------------------------------

    /// Starts a component. For composites, starts all children first (in
    /// containment order). Mandatory client interfaces must be bound.
    #[cold]
    pub fn start(&mut self, env: &mut E, id: ComponentId) -> Result<()> {
        let state = self.comp(id)?.state;
        match state {
            LifecycleState::Started => return Ok(()), // idempotent
            LifecycleState::Failed => {
                return Err(FractalError::InvalidLifecycle {
                    component: id,
                    state,
                    operation: "start",
                })
            }
            LifecycleState::Stopped => {}
        }
        // Check mandatory client interfaces.
        {
            let c = self.comp(id)?;
            for decl in &c.interfaces {
                if decl.role == Role::Client && decl.contingency == Contingency::Mandatory {
                    let bound = c.bindings.get(decl.name.as_str()).map_or(0, Vec::len);
                    if bound == 0 {
                        return Err(FractalError::UnboundMandatory {
                            component: id,
                            interface: decl.name.clone(),
                        });
                    }
                }
            }
        }
        for child in self.children(id) {
            self.start(env, child)?;
        }
        self.with_wrapper(id, |w, env, view| w.on_start(env, view, id))(env)?;
        self.comp_mut(id)?.state = LifecycleState::Started;
        self.journal.push(JournalOp::Start(id));
        Ok(())
    }

    /// Stops a component. For composites, stops children afterwards in
    /// reverse containment order. Stopping a `Failed` component is allowed
    /// (cleanup path used by the repair manager).
    #[cold]
    pub fn stop(&mut self, env: &mut E, id: ComponentId) -> Result<()> {
        let state = self.comp(id)?.state;
        if state == LifecycleState::Stopped {
            return Ok(()); // idempotent
        }
        self.with_wrapper(id, |w, env, view| w.on_stop(env, view, id))(env)?;
        self.comp_mut(id)?.state = LifecycleState::Stopped;
        self.journal.push(JournalOp::Stop(id));
        for child in self.children(id).into_iter().rev() {
            self.stop(env, child)?;
        }
        Ok(())
    }

    /// Current life-cycle state.
    pub fn state(&self, id: ComponentId) -> Result<LifecycleState> {
        Ok(self.comp(id)?.state)
    }

    /// Marks a component failed (called by failure detectors).
    #[cold]
    pub fn mark_failed(&mut self, id: ComponentId) -> Result<()> {
        self.comp_mut(id)?.state = LifecycleState::Failed;
        self.journal.push(JournalOp::Fail(id));
        Ok(())
    }

    /// Returns a failed component to `Stopped` so it can be restarted
    /// (repair path of the self-recovery manager).
    #[cold]
    pub fn repair(&mut self, id: ComponentId) -> Result<()> {
        let state = self.comp(id)?.state;
        if state != LifecycleState::Failed {
            return Err(FractalError::InvalidLifecycle {
                component: id,
                state,
                operation: "repair",
            });
        }
        self.comp_mut(id)?.state = LifecycleState::Stopped;
        self.journal.push(JournalOp::Repair(id));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Full snapshot of one component.
    pub fn info(&self, id: ComponentId) -> Result<ComponentInfo> {
        let c = self.comp(id)?;
        Ok(ComponentInfo {
            id,
            name: c.name.to_string(),
            parent: c.parent,
            composite: matches!(c.kind, Kind::Composite(_)),
            children: self.children(id),
            interfaces: c.interfaces.clone(),
            bindings: c
                .bindings
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            attributes: c
                .attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            state: c.state,
        })
    }

    /// Component name (the interned `Arc<str>`; cloning it is free).
    pub fn name(&self, id: ComponentId) -> Result<Arc<str>> {
        Ok(self.comp(id)?.name.clone())
    }

    /// Ids of all live components.
    pub fn ids(&self) -> Vec<ComponentId> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| ComponentId(comp_idx(i))))
            .collect()
    }

    /// Number of live components.
    pub fn len(&self) -> usize {
        self.components.iter().filter(|c| c.is_some()).count()
    }

    /// True when the registry holds no component.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds a direct child of `parent` by name.
    pub fn child_by_name(&self, parent: ComponentId, name: &str) -> Result<ComponentId> {
        self.children(parent)
            .into_iter()
            .find(|&c| self.comp(c).map(|cc| &*cc.name == name).unwrap_or(false))
            .ok_or_else(|| FractalError::NoSuchName(name.to_owned()))
    }

    /// Resolves a `/`-separated path of names starting at `root`.
    pub fn resolve_path(&self, root: ComponentId, path: &str) -> Result<ComponentId> {
        let mut cur = root;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            cur = self.child_by_name(cur, seg)?;
        }
        Ok(cur)
    }

    /// Renders the architecture below `root` as an indented tree, the way
    /// an administrator would inspect "the overall J2EE infrastructure,
    /// considered as a single composite component" (paper §3.2).
    pub fn render_tree(&self, root: ComponentId) -> String {
        let mut out = String::new();
        self.render_into(root, 0, &mut out);
        out
    }

    fn render_into(&self, id: ComponentId, depth: usize, out: &mut String) {
        let Ok(c) = self.comp(id) else { return };
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&c.name);
        out.push_str(match c.state {
            LifecycleState::Started => " [started]",
            LifecycleState::Stopped => " [stopped]",
            LifecycleState::Failed => " [FAILED]",
        });
        for (itf, eps) in &c.bindings {
            for ep in eps {
                let target = self
                    .comp(ep.component)
                    .map(|t| t.name.to_string())
                    .unwrap_or_else(|_| format!("{:?}", ep.component));
                out.push_str(&format!(" ({itf} -> {target})"));
            }
        }
        out.push('\n');
        for child in self.children(id) {
            self.render_into(child, depth + 1, out);
        }
    }

    /// The journal of all management operations so far.
    pub fn journal(&self) -> &[JournalOp] {
        &self.journal
    }

    /// Number of journaled operations (reconfiguration cost metric for the
    /// qualitative evaluation).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    // ------------------------------------------------------------------
    // Wrapper delegation plumbing
    // ------------------------------------------------------------------

    /// Temporarily removes the wrapper so it can be invoked with a view of
    /// the (rest of the) registry, then restores it. Composites have no
    /// wrapper: the operation is a validated no-op for them.
    fn with_wrapper<'a, F>(
        &'a mut self,
        id: ComponentId,
        f: F,
    ) -> impl FnOnce(&mut E) -> Result<()> + 'a
    where
        F: FnOnce(&mut (dyn Wrapper<E> + Send + Sync), &mut E, &dyn ArchView) -> Result<()> + 'a,
    {
        move |env: &mut E| {
            let taken = match self.comp_mut(id) {
                Ok(c) => match &mut c.kind {
                    Kind::Primitive(slot) => match slot.take() {
                        Some(w) => Some(w),
                        None => return Err(FractalError::Reentrant(id)),
                    },
                    Kind::Composite(_) => None,
                },
                Err(e) => return Err(e),
            };
            let Some(mut w) = taken else {
                return Ok(());
            };
            let result = f(w.as_mut(), env, &*self);
            if let Ok(c) = self.comp_mut(id) {
                if let Kind::Primitive(slot) = &mut c.kind {
                    *slot = Some(w);
                }
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::NullWrapper;

    type Reg = Registry<()>;

    fn server_decl() -> Vec<InterfaceDecl> {
        vec![InterfaceDecl::server("http", "http")]
    }

    fn client_decl() -> Vec<InterfaceDecl> {
        vec![
            InterfaceDecl::server("http", "http"),
            InterfaceDecl::client("backend", "http"),
        ]
    }

    #[test]
    fn create_and_introspect() {
        let mut reg = Reg::new();
        let a = reg.new_primitive("apache", server_decl(), Box::new(NullWrapper));
        let info = reg.info(a).unwrap();
        assert_eq!(info.name, "apache");
        assert!(!info.composite);
        assert_eq!(info.state, LifecycleState::Stopped);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn bind_validates_roles_and_signatures() {
        let mut reg = Reg::new();
        let front = reg.new_primitive("front", client_decl(), Box::new(NullWrapper));
        let back = reg.new_primitive("back", server_decl(), Box::new(NullWrapper));
        let mut env = ();
        reg.bind(&mut env, front, "backend", back, "http").unwrap();
        assert_eq!(reg.bindings_of(front, "backend").len(), 1);

        // Binding a server interface as client fails.
        let err = reg.bind(&mut env, front, "http", back, "http").unwrap_err();
        assert!(matches!(err, FractalError::IncompatibleBinding { .. }));

        // Signature mismatch fails.
        let odd = reg.new_primitive(
            "odd",
            vec![InterfaceDecl::server("sql", "jdbc")],
            Box::new(NullWrapper),
        );
        let err = reg
            .bind(&mut env, front, "backend", odd, "sql")
            .unwrap_err();
        assert!(matches!(err, FractalError::IncompatibleBinding { .. }));
    }

    #[test]
    fn single_cardinality_rejects_second_binding() {
        let mut reg = Reg::new();
        let front = reg.new_primitive("front", client_decl(), Box::new(NullWrapper));
        let b1 = reg.new_primitive("b1", server_decl(), Box::new(NullWrapper));
        let b2 = reg.new_primitive("b2", server_decl(), Box::new(NullWrapper));
        let mut env = ();
        reg.bind(&mut env, front, "backend", b1, "http").unwrap();
        let err = reg
            .bind(&mut env, front, "backend", b2, "http")
            .unwrap_err();
        assert!(matches!(err, FractalError::BindingState { .. }));
    }

    #[test]
    fn collection_cardinality_accepts_many() {
        let mut reg = Reg::new();
        let lb = reg.new_primitive(
            "lb",
            vec![InterfaceDecl::collection_client("workers", "http")],
            Box::new(NullWrapper),
        );
        let mut env = ();
        for i in 0..3 {
            let b = reg.new_primitive(&format!("b{i}"), server_decl(), Box::new(NullWrapper));
            reg.bind(&mut env, lb, "workers", b, "http").unwrap();
        }
        assert_eq!(reg.bindings_of(lb, "workers").len(), 3);
        // Unbind by target.
        let victim = reg.bindings_of(lb, "workers")[1].component;
        reg.unbind(&mut env, lb, "workers", Some(victim)).unwrap();
        assert_eq!(reg.bindings_of(lb, "workers").len(), 2);
        // Ambiguous unbind without target fails.
        let err = reg.unbind(&mut env, lb, "workers", None).unwrap_err();
        assert!(matches!(err, FractalError::BindingState { .. }));
    }

    #[test]
    fn duplicate_endpoint_rejected() {
        let mut reg = Reg::new();
        let lb = reg.new_primitive(
            "lb",
            vec![InterfaceDecl::collection_client("workers", "http")],
            Box::new(NullWrapper),
        );
        let b = reg.new_primitive("b", server_decl(), Box::new(NullWrapper));
        let mut env = ();
        reg.bind(&mut env, lb, "workers", b, "http").unwrap();
        assert!(reg.bind(&mut env, lb, "workers", b, "http").is_err());
    }

    #[test]
    fn start_requires_mandatory_bindings() {
        let mut reg = Reg::new();
        let front = reg.new_primitive("front", client_decl(), Box::new(NullWrapper));
        let mut env = ();
        let err = reg.start(&mut env, front).unwrap_err();
        assert!(matches!(err, FractalError::UnboundMandatory { .. }));
        let back = reg.new_primitive("back", server_decl(), Box::new(NullWrapper));
        reg.bind(&mut env, front, "backend", back, "http").unwrap();
        reg.start(&mut env, front).unwrap();
        assert_eq!(reg.state(front).unwrap(), LifecycleState::Started);
        // Idempotent start.
        reg.start(&mut env, front).unwrap();
    }

    #[test]
    fn composite_lifecycle_cascades() {
        let mut reg = Reg::new();
        let top = reg.new_composite("j2ee", vec![]);
        let a = reg.new_primitive("apache", server_decl(), Box::new(NullWrapper));
        let b = reg.new_primitive("tomcat", server_decl(), Box::new(NullWrapper));
        reg.add_child(top, a).unwrap();
        reg.add_child(top, b).unwrap();
        let mut env = ();
        reg.start(&mut env, top).unwrap();
        assert_eq!(reg.state(a).unwrap(), LifecycleState::Started);
        assert_eq!(reg.state(b).unwrap(), LifecycleState::Started);
        reg.stop(&mut env, top).unwrap();
        assert_eq!(reg.state(a).unwrap(), LifecycleState::Stopped);
        assert_eq!(reg.state(b).unwrap(), LifecycleState::Stopped);
    }

    #[test]
    fn content_controller_validates() {
        let mut reg = Reg::new();
        let top = reg.new_composite("top", vec![]);
        let other = reg.new_composite("other", vec![]);
        let p = reg.new_primitive("p", vec![], Box::new(NullWrapper));
        reg.add_child(top, p).unwrap();
        // Double containment rejected.
        assert!(reg.add_child(other, p).is_err());
        assert!(reg.add_child(top, p).is_err());
        // Children list queries.
        assert_eq!(reg.children(top), vec![p]);
        // add_child on a primitive fails.
        assert!(matches!(
            reg.add_child(p, other).unwrap_err(),
            FractalError::NotComposite(_)
        ));
        reg.remove_child(top, p).unwrap();
        assert!(reg.children(top).is_empty());
        assert!(reg.remove_child(top, p).is_err());
    }

    #[test]
    fn failed_components_must_be_repaired_before_start() {
        let mut reg = Reg::new();
        let a = reg.new_primitive("a", vec![], Box::new(NullWrapper));
        let mut env = ();
        reg.start(&mut env, a).unwrap();
        reg.mark_failed(a).unwrap();
        assert!(reg.start(&mut env, a).is_err());
        // Stop from Failed is allowed (cleanup), then repair.
        reg.stop(&mut env, a).unwrap();
        assert!(reg.repair(a).is_err()); // already stopped
        reg.mark_failed(a).unwrap();
        reg.repair(a).unwrap();
        reg.start(&mut env, a).unwrap();
        assert_eq!(reg.state(a).unwrap(), LifecycleState::Started);
    }

    #[test]
    fn remove_guards_against_dangling_references() {
        let mut reg = Reg::new();
        let front = reg.new_primitive("front", client_decl(), Box::new(NullWrapper));
        let back = reg.new_primitive("back", server_decl(), Box::new(NullWrapper));
        let mut env = ();
        reg.bind(&mut env, front, "backend", back, "http").unwrap();
        // back is referenced: removal fails.
        assert!(reg.remove(back).is_err());
        reg.unbind(&mut env, front, "backend", None).unwrap();
        reg.remove(back).unwrap();
        assert!(reg.info(back).is_err());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn attributes_roundtrip_and_journal() {
        let mut reg = Reg::new();
        let a = reg.new_primitive("apache", vec![], Box::new(NullWrapper));
        let mut env = ();
        reg.set_attr(&mut env, a, "port", 80i64).unwrap();
        assert_eq!(reg.get_attr(a, "port").unwrap(), AttrValue::Int(80));
        assert!(reg.get_attr(a, "absent").is_err());
        assert_eq!(
            reg.attr_or(a, "absent", AttrValue::Int(1)),
            AttrValue::Int(1)
        );
        let ops: Vec<_> = reg.journal().iter().collect();
        assert!(ops
            .iter()
            .any(|op| matches!(op, JournalOp::SetAttr(id, n, _) if *id == a && &**n == "port")));
    }

    #[test]
    fn path_resolution() {
        let mut reg = Reg::new();
        let root = reg.new_composite("j2ee", vec![]);
        let web = reg.new_composite("web", vec![]);
        let apache = reg.new_primitive("apache-0", vec![], Box::new(NullWrapper));
        reg.add_child(root, web).unwrap();
        reg.add_child(web, apache).unwrap();
        assert_eq!(reg.resolve_path(root, "web/apache-0").unwrap(), apache);
        assert_eq!(reg.resolve_path(root, "").unwrap(), root);
        assert!(reg.resolve_path(root, "web/nope").is_err());
    }

    #[test]
    fn render_tree_shows_bindings_and_states() {
        let mut reg = Reg::new();
        let root = reg.new_composite("j2ee", vec![]);
        let front = reg.new_primitive("apache", client_decl(), Box::new(NullWrapper));
        let back = reg.new_primitive("tomcat", server_decl(), Box::new(NullWrapper));
        reg.add_child(root, front).unwrap();
        reg.add_child(root, back).unwrap();
        let mut env = ();
        reg.bind(&mut env, front, "backend", back, "http").unwrap();
        let tree = reg.render_tree(root);
        assert!(tree.contains("j2ee [stopped]"));
        assert!(tree.contains("apache [stopped] (backend -> tomcat)"));
        assert!(tree.contains("  tomcat"));
    }

    /// Wrapper that records control operations, verifying delegation order.
    #[derive(Default)]
    struct Recording;
    impl Wrapper<Vec<String>> for Recording {
        fn on_set_attr(
            &mut self,
            env: &mut Vec<String>,
            _view: &dyn ArchView,
            _me: ComponentId,
            name: &str,
            value: &AttrValue,
        ) -> Result<()> {
            env.push(format!("set {name}={value}"));
            Ok(())
        }
        fn on_bind(
            &mut self,
            env: &mut Vec<String>,
            view: &dyn ArchView,
            _me: ComponentId,
            itf: &str,
            target: &Endpoint,
        ) -> Result<()> {
            let tname = view.name_of(target.component).unwrap();
            env.push(format!("bind {itf} -> {tname}"));
            Ok(())
        }
        fn on_start(
            &mut self,
            env: &mut Vec<String>,
            _view: &dyn ArchView,
            _me: ComponentId,
        ) -> Result<()> {
            env.push("start".into());
            Ok(())
        }
        fn on_stop(
            &mut self,
            env: &mut Vec<String>,
            _view: &dyn ArchView,
            _me: ComponentId,
        ) -> Result<()> {
            env.push("stop".into());
            Ok(())
        }
    }

    #[test]
    fn wrapper_sees_operations_and_can_introspect_targets() {
        let mut reg: Registry<Vec<String>> = Registry::new();
        let front = reg.new_primitive(
            "apache",
            vec![InterfaceDecl::optional_client("ajp-itf", "ajp")],
            Box::new(Recording),
        );
        let back = reg.new_primitive(
            "tomcat2",
            vec![InterfaceDecl::server("ajp", "ajp")],
            Box::new(NullWrapper),
        );
        let mut env: Vec<String> = Vec::new();
        reg.set_attr(&mut env, front, "port", 80i64).unwrap();
        reg.bind(&mut env, front, "ajp-itf", back, "ajp").unwrap();
        reg.start(&mut env, front).unwrap();
        reg.stop(&mut env, front).unwrap();
        assert_eq!(
            env,
            vec!["set port=80", "bind ajp-itf -> tomcat2", "start", "stop"]
        );
    }

    /// Wrapper whose validation rejects negative ports.
    struct Picky;
    impl Wrapper<()> for Picky {
        fn validate_attr(&self, name: &str, value: &AttrValue) -> Result<()> {
            if name == "port" && value.as_int().is_none_or(|p| p <= 0) {
                return Err(FractalError::InvalidAttribute {
                    attribute: name.to_owned(),
                    reason: "port must be a positive integer".into(),
                });
            }
            Ok(())
        }
    }

    #[test]
    fn attribute_validation_rejects_bad_values() {
        let mut reg = Reg::new();
        let a = reg.new_primitive("a", vec![], Box::new(Picky));
        let mut env = ();
        assert!(reg.set_attr(&mut env, a, "port", -1i64).is_err());
        assert!(
            reg.get_attr(a, "port").is_err(),
            "rejected write must not persist"
        );
        reg.set_attr(&mut env, a, "port", 8080i64).unwrap();
    }
}
