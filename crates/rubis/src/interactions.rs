//! The 26 RUBiS web interactions (paper §5.2: "It defines 26 web
//! interactions, such as registering new users, browsing, buying or
//! selling items").
//!
//! Each interaction carries a weight (its share of the default bidding
//! mix, ~15% read-write), servlet CPU demands, and a generator that emits
//! concrete SQL against the RUBiS schema. CPU demands are calibrated so
//! the tier saturation points land where the paper's Figure 5 puts them
//! (first database replica added around 180 clients, the second around
//! 320, the application tier scaling at around 420 clients).

use crate::schema::{rubis_ids, KeySpace};
use jade_sim::{SimDuration, SimRng};
use jade_tiers::plan::{CompiledPlan, Operand, PlanStep, StepOp};
use jade_tiers::request::{CompiledRun, InteractionPlan, SqlOp, SqlProgram};
use jade_tiers::sql::{ColId, Statement, TableId, Value};
use std::sync::{Arc, OnceLock};

/// How an interaction touches the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionKind {
    /// No database access (static or form page).
    Static,
    /// Read-only queries.
    ReadOnly,
    /// At least one write.
    ReadWrite,
}

/// Descriptor of one interaction type.
#[derive(Debug, Clone, Copy)]
pub struct InteractionType {
    /// Interaction name (RUBiS servlet name).
    pub name: &'static str,
    /// Relative frequency in the workload mix.
    pub weight: f64,
    /// Servlet CPU before the first query, ms.
    pub pre_ms: f64,
    /// Servlet CPU after the last query (page generation), ms.
    pub post_ms: f64,
    /// Database access class.
    pub kind: InteractionKind,
    /// Response document size, bytes.
    pub response_bytes: u64,
}

macro_rules! itx {
    ($name:literal, $w:expr, $pre:expr, $post:expr, $kind:ident, $bytes:expr) => {
        InteractionType {
            name: $name,
            weight: $w,
            pre_ms: $pre,
            post_ms: $post,
            kind: InteractionKind::$kind,
            response_bytes: $bytes,
        }
    };
}

/// The full RUBiS interaction table (26 entries).
pub const INTERACTIONS: &[InteractionType] = &[
    itx!("Home", 4.0, 1.0, 1.0, Static, 3_000),
    itx!("Register", 1.0, 0.5, 0.5, Static, 2_500),
    itx!("RegisterUser", 1.0, 3.0, 3.0, ReadWrite, 2_000),
    itx!("Browse", 6.0, 1.0, 1.0, Static, 2_800),
    itx!("BrowseCategories", 8.0, 2.0, 2.0, ReadOnly, 4_000),
    itx!("SearchItemsInCategory", 18.0, 10.0, 14.0, ReadOnly, 12_000),
    itx!("BrowseRegions", 4.0, 2.0, 2.0, ReadOnly, 3_500),
    itx!("BrowseCategoriesInRegion", 4.0, 2.0, 2.0, ReadOnly, 4_000),
    itx!("SearchItemsInRegion", 10.0, 9.0, 13.0, ReadOnly, 11_000),
    itx!("ViewItem", 14.0, 6.0, 8.0, ReadOnly, 7_500),
    itx!("ViewUserInfo", 4.0, 4.0, 4.0, ReadOnly, 5_000),
    itx!("ViewBidHistory", 4.0, 5.0, 5.0, ReadOnly, 6_000),
    itx!("BuyNowAuth", 1.0, 1.0, 1.0, Static, 2_200),
    itx!("BuyNow", 1.5, 4.0, 4.0, ReadOnly, 4_500),
    itx!("StoreBuyNow", 1.0, 4.0, 4.0, ReadWrite, 2_400),
    itx!("PutBidAuth", 2.0, 1.0, 1.0, Static, 2_200),
    itx!("PutBid", 3.0, 5.0, 5.0, ReadOnly, 5_500),
    itx!("StoreBid", 3.0, 4.0, 4.0, ReadWrite, 2_600),
    itx!("PutCommentAuth", 1.0, 1.0, 1.0, Static, 2_200),
    itx!("PutComment", 1.0, 3.0, 3.0, ReadOnly, 4_000),
    itx!("StoreComment", 1.0, 4.0, 4.0, ReadWrite, 2_400),
    itx!("Sell", 1.0, 1.0, 1.0, Static, 2_300),
    itx!("SelectCategoryToSellItem", 1.0, 2.0, 2.0, ReadOnly, 3_200),
    itx!("SellItemForm", 1.0, 1.0, 1.0, Static, 2_600),
    itx!("RegisterItem", 1.5, 5.0, 5.0, ReadWrite, 2_800),
    itx!("AboutMe", 3.0, 7.0, 7.0, ReadOnly, 9_000),
];

fn ms(x: f64) -> SimDuration {
    SimDuration::from_secs_f64(x / 1e3)
}

// Statement constructors over pre-resolved ids: preparing a plan performs
// zero string hashing or name allocation.

fn read_key(table: TableId, key: u64, demand_ms: f64) -> SqlOp {
    SqlOp::new(Statement::SelectByKey { table, key }, ms(demand_ms))
}

fn scan(table: TableId, column: ColId, value: Value, limit: usize, demand_ms: f64) -> SqlOp {
    SqlOp::new(
        Statement::SelectWhere {
            table,
            column,
            value,
            limit,
        },
        ms(demand_ms),
    )
}

/// The constant `SELECT COUNT(*)` statements the browse pages reissue
/// verbatim — prepared once per process and `Arc`-shared across plans.
fn count_categories(demand_ms: f64) -> SqlOp {
    static STMT: OnceLock<Arc<Statement>> = OnceLock::new();
    let stmt = STMT.get_or_init(|| {
        Arc::new(Statement::Count {
            table: rubis_ids().categories,
        })
    });
    SqlOp::shared(Arc::clone(stmt), ms(demand_ms))
}

fn count_regions(demand_ms: f64) -> SqlOp {
    static STMT: OnceLock<Arc<Statement>> = OnceLock::new();
    let stmt = STMT.get_or_init(|| {
        Arc::new(Statement::Count {
            table: rubis_ids().regions,
        })
    });
    SqlOp::shared(Arc::clone(stmt), ms(demand_ms))
}

/// Row/set vectors salvaged from a completed request's insert and update
/// statements, recycled into the next request's constructors — the
/// statement-path counterpart of the compiled path's recycled parameter
/// buffers, so steady-state generation allocates no per-call `Vec`s.
#[derive(Debug, Default)]
struct RowScratch {
    rows: Vec<Vec<Value>>,
    sets: Vec<Vec<(ColId, Value)>>,
}

impl RowScratch {
    /// Reclaims the row/set allocation of `op`'s statement, when this was
    /// its last reference (shared statements — the prepared `COUNT(*)`s —
    /// just drop their handle).
    fn salvage(&mut self, op: SqlOp) {
        if let Ok(stmt) = Arc::try_unwrap(op.statement) {
            match stmt {
                Statement::Insert { mut row, .. } => {
                    row.clear();
                    self.rows.push(row);
                }
                Statement::Update { mut set, .. } => {
                    set.clear();
                    self.sets.push(set);
                }
                _ => {}
            }
        }
    }

    fn row(&mut self) -> Vec<Value> {
        self.rows.pop().unwrap_or_default()
    }

    fn set(&mut self) -> Vec<(ColId, Value)> {
        self.sets.pop().unwrap_or_default()
    }
}

fn insert<const N: usize>(
    scratch: &mut RowScratch,
    table: TableId,
    row: [Value; N],
    demand_ms: f64,
) -> SqlOp {
    let mut buf = scratch.row();
    buf.extend(row);
    SqlOp::new(Statement::Insert { table, row: buf }, ms(demand_ms))
}

fn update<const N: usize>(
    scratch: &mut RowScratch,
    table: TableId,
    key: u64,
    set: [(ColId, Value); N],
    demand_ms: f64,
) -> SqlOp {
    let mut buf = scratch.set();
    buf.extend(set);
    SqlOp::new(
        Statement::Update {
            table,
            key,
            set: buf,
        },
        ms(demand_ms),
    )
}

/// Instantiates the SQL work of an interaction against the current key
/// space, appending the ops to `out` (a recycled buffer on the request
/// hot path) and drawing insert/update row vectors from `scratch`.
/// Mutates the key space when the interaction inserts rows.
fn sql_for_into(
    t: &InteractionType,
    ks: &mut KeySpace,
    rng: &mut SimRng,
    out: &mut Vec<SqlOp>,
    scratch: &mut RowScratch,
) {
    let ids = rubis_ids();
    match t.name {
        "RegisterUser" => {
            let region = ks.region(rng);
            ks.users += 1;
            // Layout: [nickname, region, rating].
            out.push(insert(
                scratch,
                ids.users,
                [
                    Value::Text(format!("newuser{}", ks.users)),
                    Value::Int(region as i64),
                    Value::Int(0),
                ],
                8.0,
            ))
        }
        "BrowseCategories" => out.push(count_categories(8.0)),
        "SearchItemsInCategory" => {
            let cat = ks.category(rng);
            out.push(scan(
                ids.items,
                ids.item_category,
                Value::Int(cat as i64),
                25,
                58.0,
            ))
        }
        "BrowseRegions" => out.push(count_regions(6.0)),
        "BrowseCategoriesInRegion" => out.push(count_categories(8.0)),
        "SearchItemsInRegion" => {
            let region = ks.region(rng);
            out.push(scan(
                ids.users,
                ids.user_region,
                Value::Int(region as i64),
                25,
                52.0,
            ))
        }
        "ViewItem" => {
            let item = ks.item(rng);
            out.extend([
                read_key(ids.items, item, 10.0),
                scan(ids.bids, ids.bid_item, Value::Int(item as i64), 20, 22.0),
            ])
        }
        "ViewUserInfo" => {
            let user = ks.user(rng);
            out.extend([
                read_key(ids.users, user, 8.0),
                scan(
                    ids.comments,
                    ids.comment_author,
                    Value::Int(user as i64),
                    20,
                    14.0,
                ),
            ])
        }
        "ViewBidHistory" => {
            let item = ks.item(rng);
            out.extend([
                read_key(ids.items, item, 8.0),
                scan(ids.bids, ids.bid_item, Value::Int(item as i64), 30, 20.0),
            ])
        }
        "BuyNow" => out.push(read_key(ids.items, ks.item(rng), 10.0)),
        "StoreBuyNow" => {
            let item = ks.item(rng);
            let buyer = ks.user(rng);
            // Layout: [item, buyer].
            let buy = insert(
                scratch,
                ids.buy_now,
                [Value::Int(item as i64), Value::Int(buyer as i64)],
                10.0,
            );
            let sold = update(
                scratch,
                ids.items,
                item,
                [(ids.item_quantity, Value::Int(0))],
                8.0,
            );
            out.extend([buy, sold])
        }
        "PutBid" => {
            let item = ks.item(rng);
            out.extend([
                read_key(ids.items, item, 10.0),
                scan(ids.bids, ids.bid_item, Value::Int(item as i64), 10, 14.0),
            ])
        }
        "StoreBid" => {
            let item = ks.item(rng);
            let bidder = ks.user(rng);
            ks.bids += 1;
            // Layout: [item, bidder, amount].
            let bid = insert(
                scratch,
                ids.bids,
                [
                    Value::Int(item as i64),
                    Value::Int(bidder as i64),
                    Value::Int(rng.range_u64(1, 2000) as i64),
                ],
                10.0,
            );
            out.extend([bid, read_key(ids.items, item, 6.0)])
        }
        "PutComment" => out.extend([
            read_key(ids.users, ks.user(rng), 6.0),
            read_key(ids.items, ks.item(rng), 6.0),
        ]),
        "StoreComment" => {
            let author = ks.user(rng);
            ks.comments += 1;
            // Layout: [item, author, text].
            let comment = insert(
                scratch,
                ids.comments,
                [
                    Value::Int(ks.item(rng) as i64),
                    Value::Int(author as i64),
                    Value::Text("great seller".into()),
                ],
                10.0,
            );
            let rating = update(
                scratch,
                ids.users,
                author,
                [(ids.user_rating, Value::Int(1))],
                6.0,
            );
            out.extend([comment, rating])
        }
        "SelectCategoryToSellItem" => out.push(count_categories(8.0)),
        "RegisterItem" => {
            let seller = ks.user(rng);
            let cat = ks.category(rng);
            ks.items += 1;
            // Layout: [name, seller, category, price, quantity].
            out.push(insert(
                scratch,
                ids.items,
                [
                    Value::Text(format!("newitem{}", ks.items)),
                    Value::Int(seller as i64),
                    Value::Int(cat as i64),
                    Value::Int(rng.range_u64(1, 1000) as i64),
                    Value::Int(1),
                ],
                12.0,
            ))
        }
        "AboutMe" => {
            let user = ks.user(rng);
            out.extend([
                read_key(ids.users, user, 8.0),
                scan(ids.bids, ids.bid_bidder, Value::Int(user as i64), 20, 16.0),
                scan(
                    ids.items,
                    ids.item_seller,
                    Value::Int(user as i64),
                    20,
                    16.0,
                ),
                scan(
                    ids.comments,
                    ids.comment_author,
                    Value::Int(user as i64),
                    10,
                    10.0,
                ),
            ])
        }
        // Static / form pages.
        _ => {}
    }
}

/// Instantiates the SQL work of an interaction into a fresh `Vec` (see
/// [`sql_for_into`] for the allocation-reusing variant).
fn sql_for(t: &InteractionType, ks: &mut KeySpace, rng: &mut SimRng) -> Vec<SqlOp> {
    let mut out = Vec::new();
    sql_for_into(t, ks, rng, &mut out, &mut RowScratch::default());
    out
}

/// Samples an interaction type from the default bidding mix.
pub fn sample_interaction<'a>(rng: &mut SimRng) -> &'a InteractionType {
    let weights: Vec<f64> = INTERACTIONS.iter().map(|t| t.weight).collect();
    &INTERACTIONS[rng.weighted(&weights)]
}

/// A weighted interaction mix. RUBiS ships two: the *bidding* mix
/// (default, ~15 % read-write) and the *browsing* mix (read-only).
#[derive(Debug, Clone)]
pub struct InteractionMix {
    name: &'static str,
    weights: Vec<f64>,
}

impl InteractionMix {
    /// The default bidding mix (the table's weights).
    pub fn bidding() -> Self {
        InteractionMix {
            name: "bidding",
            weights: INTERACTIONS.iter().map(|t| t.weight).collect(),
        }
    }

    /// The browsing mix: read-write interactions excluded, remaining
    /// weights unchanged (RUBiS's browsing-only workload).
    pub fn browsing() -> Self {
        InteractionMix {
            name: "browsing",
            weights: INTERACTIONS
                .iter()
                .map(|t| {
                    if t.kind == InteractionKind::ReadWrite {
                        0.0
                    } else {
                        t.weight
                    }
                })
                .collect(),
        }
    }

    /// Mix name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Samples an interaction type.
    pub fn sample(&self, rng: &mut SimRng) -> &'static InteractionType {
        &INTERACTIONS[self.sample_index(rng)]
    }

    /// Samples an interaction's index into [`INTERACTIONS`] — same single
    /// draw as [`InteractionMix::sample`]. The aggregate client pool uses
    /// the index form because it defers plan generation to dispatch time
    /// and carries the choice through a message.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        rng.weighted(&self.weights)
    }
}

/// Builds the concrete work plan of one client request.
pub fn generate_plan(t: &InteractionType, ks: &mut KeySpace, rng: &mut SimRng) -> InteractionPlan {
    generate_plan_into(t, ks, rng, Vec::new())
}

/// Like [`generate_plan`], but builds the plan's SQL into `sql_buf` — a
/// recycled buffer, typically salvaged from a completed request's plan —
/// so steady-state request generation reuses one allocation per client
/// slot instead of allocating a fresh `Vec<SqlOp>` per request.
pub fn generate_plan_into(
    t: &InteractionType,
    ks: &mut KeySpace,
    rng: &mut SimRng,
    mut sql_buf: Vec<SqlOp>,
) -> InteractionPlan {
    // CPU demands jitter ±20% around the calibrated mean, modelling data-
    // dependent servlet work.
    let jitter = |mean_ms: f64, rng: &mut SimRng| ms(mean_ms * (0.8 + 0.4 * rng.f64()));
    // Salvage the previous request's insert/update row vectors out of the
    // recycled buffer instead of dropping them with `clear()`.
    let mut scratch = RowScratch::default();
    for op in sql_buf.drain(..) {
        scratch.salvage(op);
    }
    sql_for_into(t, ks, rng, &mut sql_buf, &mut scratch);
    for op in &mut sql_buf {
        let d = op.demand.as_secs_f64() * 1e3;
        op.demand = jitter(d, rng);
    }
    InteractionPlan {
        name: t.name,
        pre_demand: jitter(t.pre_ms, rng),
        sql: SqlProgram::Ops(sql_buf),
        post_demand: jitter(t.post_ms, rng),
        response_bytes: t.response_bytes,
    }
}

// --- Compiled plans -----------------------------------------------------
//
// Each interaction's statement template above is compiled once into a
// flat [`CompiledPlan`]; the per-request path then fills a small typed
// parameter buffer (one slot per RNG draw, in draw order) instead of
// constructing `Statement` trees. `fill_params_into` mirrors
// `sql_for_into`'s draws and key-space mutations *exactly* — same RNG
// calls in the same order — so switching a workload between the two
// representations leaves every downstream draw, and therefore every
// committed outcome digest, byte-identical. `tests/plan_prop.rs` holds
// the differential proof.

fn step(op: StepOp, demand_ms: f64) -> PlanStep {
    PlanStep {
        op,
        demand: ms(demand_ms),
    }
}

fn p(slot: u16) -> Operand {
    Operand::Param(slot)
}

fn compile_interaction(t: &InteractionType) -> CompiledPlan {
    let ids = rubis_ids();
    let (steps, params) = match t.name {
        // Slots: 0 = region, 1 = nickname. Layout: [nickname, region, rating].
        "RegisterUser" => (
            vec![step(
                StepOp::Insert {
                    table: ids.users,
                    row: vec![p(1), p(0), Operand::Const(Value::Int(0))],
                },
                8.0,
            )],
            2,
        ),
        "BrowseCategories" | "BrowseCategoriesInRegion" | "SelectCategoryToSellItem" => (
            vec![step(
                StepOp::Count {
                    table: ids.categories,
                },
                8.0,
            )],
            0,
        ),
        "SearchItemsInCategory" => (
            vec![step(
                StepOp::Scan {
                    table: ids.items,
                    column: ids.item_category,
                    value: p(0),
                    limit: 25,
                },
                58.0,
            )],
            1,
        ),
        "BrowseRegions" => (vec![step(StepOp::Count { table: ids.regions }, 6.0)], 0),
        "SearchItemsInRegion" => (
            vec![step(
                StepOp::Scan {
                    table: ids.users,
                    column: ids.user_region,
                    value: p(0),
                    limit: 25,
                },
                52.0,
            )],
            1,
        ),
        "ViewItem" => (
            vec![
                step(
                    StepOp::ReadKey {
                        table: ids.items,
                        key: p(0),
                    },
                    10.0,
                ),
                step(
                    StepOp::Scan {
                        table: ids.bids,
                        column: ids.bid_item,
                        value: p(0),
                        limit: 20,
                    },
                    22.0,
                ),
            ],
            1,
        ),
        "ViewUserInfo" => (
            vec![
                step(
                    StepOp::ReadKey {
                        table: ids.users,
                        key: p(0),
                    },
                    8.0,
                ),
                step(
                    StepOp::Scan {
                        table: ids.comments,
                        column: ids.comment_author,
                        value: p(0),
                        limit: 20,
                    },
                    14.0,
                ),
            ],
            1,
        ),
        "ViewBidHistory" => (
            vec![
                step(
                    StepOp::ReadKey {
                        table: ids.items,
                        key: p(0),
                    },
                    8.0,
                ),
                step(
                    StepOp::Scan {
                        table: ids.bids,
                        column: ids.bid_item,
                        value: p(0),
                        limit: 30,
                    },
                    20.0,
                ),
            ],
            1,
        ),
        "BuyNow" => (
            vec![step(
                StepOp::ReadKey {
                    table: ids.items,
                    key: p(0),
                },
                10.0,
            )],
            1,
        ),
        // Slots: 0 = item, 1 = buyer. Layout: [item, buyer].
        "StoreBuyNow" => (
            vec![
                step(
                    StepOp::Insert {
                        table: ids.buy_now,
                        row: vec![p(0), p(1)],
                    },
                    10.0,
                ),
                step(
                    StepOp::Update {
                        table: ids.items,
                        key: p(0),
                        set: vec![(ids.item_quantity, Operand::Const(Value::Int(0)))],
                    },
                    8.0,
                ),
            ],
            2,
        ),
        "PutBid" => (
            vec![
                step(
                    StepOp::ReadKey {
                        table: ids.items,
                        key: p(0),
                    },
                    10.0,
                ),
                step(
                    StepOp::Scan {
                        table: ids.bids,
                        column: ids.bid_item,
                        value: p(0),
                        limit: 10,
                    },
                    14.0,
                ),
            ],
            1,
        ),
        // Slots: 0 = item, 1 = bidder, 2 = amount. Layout: [item, bidder, amount].
        "StoreBid" => (
            vec![
                step(
                    StepOp::Insert {
                        table: ids.bids,
                        row: vec![p(0), p(1), p(2)],
                    },
                    10.0,
                ),
                step(
                    StepOp::ReadKey {
                        table: ids.items,
                        key: p(0),
                    },
                    6.0,
                ),
            ],
            3,
        ),
        // Slots: 0 = user, 1 = item.
        "PutComment" => (
            vec![
                step(
                    StepOp::ReadKey {
                        table: ids.users,
                        key: p(0),
                    },
                    6.0,
                ),
                step(
                    StepOp::ReadKey {
                        table: ids.items,
                        key: p(1),
                    },
                    6.0,
                ),
            ],
            2,
        ),
        // Slots: 0 = author, 1 = item. Layout: [item, author, text].
        "StoreComment" => (
            vec![
                step(
                    StepOp::Insert {
                        table: ids.comments,
                        row: vec![
                            p(1),
                            p(0),
                            Operand::Const(Value::Text("great seller".into())),
                        ],
                    },
                    10.0,
                ),
                step(
                    StepOp::Update {
                        table: ids.users,
                        key: p(0),
                        set: vec![(ids.user_rating, Operand::Const(Value::Int(1)))],
                    },
                    6.0,
                ),
            ],
            2,
        ),
        // Slots: 0 = seller, 1 = category, 2 = name, 3 = price.
        // Layout: [name, seller, category, price, quantity].
        "RegisterItem" => (
            vec![step(
                StepOp::Insert {
                    table: ids.items,
                    row: vec![p(2), p(0), p(1), p(3), Operand::Const(Value::Int(1))],
                },
                12.0,
            )],
            4,
        ),
        "AboutMe" => (
            vec![
                step(
                    StepOp::ReadKey {
                        table: ids.users,
                        key: p(0),
                    },
                    8.0,
                ),
                step(
                    StepOp::Scan {
                        table: ids.bids,
                        column: ids.bid_bidder,
                        value: p(0),
                        limit: 20,
                    },
                    16.0,
                ),
                step(
                    StepOp::Scan {
                        table: ids.items,
                        column: ids.item_seller,
                        value: p(0),
                        limit: 20,
                    },
                    16.0,
                ),
                step(
                    StepOp::Scan {
                        table: ids.comments,
                        column: ids.comment_author,
                        value: p(0),
                        limit: 10,
                    },
                    10.0,
                ),
            ],
            1,
        ),
        // Static / form pages compile to the empty program.
        _ => (Vec::new(), 0),
    };
    CompiledPlan::new(t.name, steps, params)
}

/// The 26 compiled programs, indexed like [`INTERACTIONS`] — built once
/// per process and shared by reference across every request.
// jade-audit: allow(hot-alloc): built once per process behind a
// OnceLock — every later call returns the cached slice by reference.
pub fn compiled_plans() -> &'static [CompiledPlan] {
    static PLANS: OnceLock<Vec<CompiledPlan>> = OnceLock::new();
    PLANS.get_or_init(|| INTERACTIONS.iter().map(compile_interaction).collect())
}

/// Fills one request's parameter buffer, performing exactly the RNG draws
/// and key-space mutations [`sql_for_into`] performs, in the same order
/// (pinned by the draw-order regression tests and `tests/plan_prop.rs`).
// jade-audit: allow(hot-alloc): the format!ed Text values are the
// request's SQL parameters and become row data owned by the database;
// only the two Register* interactions take these arms.
fn fill_params_into(
    t: &InteractionType,
    ks: &mut KeySpace,
    rng: &mut SimRng,
    out: &mut Vec<Value>,
) {
    match t.name {
        "RegisterUser" => {
            let region = ks.region(rng);
            ks.users += 1;
            out.push(Value::Int(region as i64));
            out.push(Value::Text(format!("newuser{}", ks.users)));
        }
        "SearchItemsInCategory" => out.push(Value::Int(ks.category(rng) as i64)),
        "SearchItemsInRegion" => out.push(Value::Int(ks.region(rng) as i64)),
        "ViewItem" | "ViewBidHistory" | "BuyNow" | "PutBid" => {
            out.push(Value::Int(ks.item(rng) as i64))
        }
        "ViewUserInfo" | "AboutMe" => out.push(Value::Int(ks.user(rng) as i64)),
        "StoreBuyNow" => {
            out.push(Value::Int(ks.item(rng) as i64));
            out.push(Value::Int(ks.user(rng) as i64));
        }
        "StoreBid" => {
            out.push(Value::Int(ks.item(rng) as i64));
            out.push(Value::Int(ks.user(rng) as i64));
            ks.bids += 1;
            out.push(Value::Int(rng.range_u64(1, 2000) as i64));
        }
        "PutComment" => {
            out.push(Value::Int(ks.user(rng) as i64));
            out.push(Value::Int(ks.item(rng) as i64));
        }
        "StoreComment" => {
            let author = ks.user(rng);
            ks.comments += 1;
            out.push(Value::Int(author as i64));
            out.push(Value::Int(ks.item(rng) as i64));
        }
        "RegisterItem" => {
            out.push(Value::Int(ks.user(rng) as i64));
            out.push(Value::Int(ks.category(rng) as i64));
            ks.items += 1;
            out.push(Value::Text(format!("newitem{}", ks.items)));
            out.push(Value::Int(rng.range_u64(1, 1000) as i64));
        }
        // Count-only and static pages draw nothing.
        _ => {}
    }
}

/// Compiled counterpart of [`generate_plan_into`]: builds the plan of one
/// client request as a [`CompiledRun`] over the interaction's shared
/// program, reusing `params`/`demands` (recycled buffers salvaged from a
/// completed request) so steady-state generation allocates nothing. The
/// RNG draw sequence is identical to the interpreted generator's — the
/// jitter means round-trip through [`SimDuration`] the same way — so the
/// two representations are digest-interchangeable.
// jade-audit: allow(hot-panic): the interaction index is sampled from
// the transition matrix, whose dimension equals INTERACTIONS.len() ==
// compiled_plans().len().
pub fn generate_plan_compiled_into(
    interaction: usize,
    ks: &mut KeySpace,
    rng: &mut SimRng,
    mut params: Vec<Value>,
    mut demands: Vec<SimDuration>,
) -> InteractionPlan {
    let t = &INTERACTIONS[interaction];
    let plan = &compiled_plans()[interaction];
    let jitter = |mean_ms: f64, rng: &mut SimRng| ms(mean_ms * (0.8 + 0.4 * rng.f64()));
    params.clear();
    demands.clear();
    fill_params_into(t, ks, rng, &mut params);
    debug_assert_eq!(params.len(), plan.params as usize, "{} slot count", t.name);
    for step in &plan.steps {
        demands.push(jitter(step.demand.as_secs_f64() * 1e3, rng));
    }
    InteractionPlan {
        name: t.name,
        pre_demand: jitter(t.pre_ms, rng),
        sql: SqlProgram::Compiled(CompiledRun {
            plan,
            params,
            demands,
        }),
        post_demand: jitter(t.post_ms, rng),
        response_bytes: t.response_bytes,
    }
}

/// Mix-weighted mean demands `(servlet_ms, db_ms)` — the numbers the
/// capacity model and threshold calibration rest on.
pub fn mean_demands() -> (f64, f64) {
    let mut rng = SimRng::seed_from_u64(0xCA11B);
    let mut ks: KeySpace = crate::schema::DatasetSpec::small().into();
    let total_w: f64 = INTERACTIONS.iter().map(|t| t.weight).sum();
    let mut servlet = 0.0;
    let mut db = 0.0;
    // SQL demands are deterministic per interaction type (jitter is applied
    // later), so one instantiation per type suffices.
    for t in INTERACTIONS {
        let ops = sql_for(t, &mut ks, &mut rng);
        let db_ms: f64 = ops.iter().map(|o| o.demand.as_secs_f64() * 1e3).sum();
        servlet += t.weight * (t.pre_ms + t.post_ms);
        db += t.weight * db_ms;
    }
    (servlet / total_w, db / total_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatasetSpec;

    #[test]
    fn there_are_26_interactions() {
        assert_eq!(INTERACTIONS.len(), 26);
        let mut names: Vec<&str> = INTERACTIONS.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26, "names must be unique");
    }

    #[test]
    fn calibrated_means_match_the_capacity_model() {
        let (servlet, db) = mean_demands();
        // The Figure-5 reproduction's threshold calibration assumes these.
        assert!(
            (10.0..=12.5).contains(&servlet),
            "servlet mean {servlet:.2} ms out of calibrated band"
        );
        assert!(
            (24.5..=28.5).contains(&db),
            "db mean {db:.2} ms out of calibrated band"
        );
    }

    #[test]
    fn mix_is_mostly_reads() {
        let total: f64 = INTERACTIONS.iter().map(|t| t.weight).sum();
        let writes: f64 = INTERACTIONS
            .iter()
            .filter(|t| t.kind == InteractionKind::ReadWrite)
            .map(|t| t.weight)
            .sum();
        let frac = writes / total;
        assert!(
            (0.05..=0.20).contains(&frac),
            "read-write share {frac:.2} should match RUBiS's default mix"
        );
    }

    #[test]
    fn generated_plans_have_concrete_sql() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut ks: KeySpace = DatasetSpec::tiny().into();
        let mut saw_sql = false;
        for _ in 0..200 {
            let t = sample_interaction(&mut rng);
            let plan = generate_plan(t, &mut ks, &mut rng);
            assert_eq!(plan.name, t.name);
            if !plan.sql.is_empty() {
                saw_sql = true;
            }
            match t.kind {
                InteractionKind::Static => assert!(plan.sql.is_empty()),
                InteractionKind::ReadOnly => assert!(!plan.has_write()),
                InteractionKind::ReadWrite => assert!(plan.has_write()),
            }
        }
        assert!(saw_sql);
    }

    #[test]
    fn inserting_interactions_grow_the_keyspace() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut ks: KeySpace = DatasetSpec::tiny().into();
        let items_before = ks.items;
        let t = INTERACTIONS
            .iter()
            .find(|t| t.name == "RegisterItem")
            .unwrap();
        generate_plan(t, &mut ks, &mut rng);
        assert_eq!(ks.items, items_before + 1);
    }

    #[test]
    fn browsing_mix_never_writes() {
        let mix = InteractionMix::browsing();
        let mut rng = SimRng::seed_from_u64(8);
        for _ in 0..5_000 {
            let t = mix.sample(&mut rng);
            assert_ne!(t.kind, InteractionKind::ReadWrite, "{} writes", t.name);
        }
        assert_eq!(mix.name(), "browsing");
        assert_eq!(InteractionMix::bidding().name(), "bidding");
    }

    #[test]
    fn compiled_templates_materialize_to_the_interpreted_statements() {
        let plans = compiled_plans();
        assert_eq!(plans.len(), INTERACTIONS.len());
        for (i, t) in INTERACTIONS.iter().enumerate() {
            let seed = 0xC0FFEE + i as u64;
            let mut rng_a = SimRng::seed_from_u64(seed);
            let mut rng_b = SimRng::seed_from_u64(seed);
            let mut ks_a: KeySpace = DatasetSpec::tiny().into();
            let mut ks_b: KeySpace = DatasetSpec::tiny().into();
            let ops = sql_for(t, &mut ks_a, &mut rng_a);
            let mut params = Vec::new();
            fill_params_into(t, &mut ks_b, &mut rng_b, &mut params);
            let plan = &plans[i];
            assert_eq!(plan.params as usize, params.len(), "{} slots", t.name);
            assert_eq!(plan.len(), ops.len(), "{} steps", t.name);
            assert_eq!(plan.writes, ops.iter().any(SqlOp::is_write), "{}", t.name);
            for (step, op) in plan.steps.iter().zip(&ops) {
                assert_eq!(step.statement(&params), *op.statement, "{}", t.name);
                assert_eq!(step.demand, op.demand, "{} demand", t.name);
                assert_eq!(step.is_write(), op.is_write(), "{}", t.name);
            }
            // Identical draw streams and key-space mutations: both sides
            // leave RNG and key space in the same state.
            assert_eq!(rng_a.f64(), rng_b.f64(), "{} rng state", t.name);
            assert_eq!(
                (ks_a.users, ks_a.items, ks_a.bids, ks_a.comments),
                (ks_b.users, ks_b.items, ks_b.bids, ks_b.comments),
                "{} key space",
                t.name
            );
        }
    }

    #[test]
    fn compiled_generation_matches_interpreted_demands_and_shape() {
        for (i, t) in INTERACTIONS.iter().enumerate() {
            let seed = 0xBEEF + i as u64;
            let mut rng_a = SimRng::seed_from_u64(seed);
            let mut rng_b = SimRng::seed_from_u64(seed);
            let mut ks_a: KeySpace = DatasetSpec::tiny().into();
            let mut ks_b: KeySpace = DatasetSpec::tiny().into();
            let interp = generate_plan(t, &mut ks_a, &mut rng_a);
            let compiled =
                generate_plan_compiled_into(i, &mut ks_b, &mut rng_b, Vec::new(), Vec::new());
            assert_eq!(compiled.name, interp.name);
            assert_eq!(compiled.pre_demand, interp.pre_demand, "{}", t.name);
            assert_eq!(compiled.post_demand, interp.post_demand, "{}", t.name);
            assert_eq!(compiled.response_bytes, interp.response_bytes);
            assert_eq!(compiled.sql.len(), interp.sql.len(), "{}", t.name);
            assert_eq!(compiled.has_write(), interp.has_write(), "{}", t.name);
            assert_eq!(compiled.db_demand(), interp.db_demand(), "{}", t.name);
            let interp_ops = interp.sql.into_ops();
            let compiled_ops = compiled.sql.into_ops();
            for (c, o) in compiled_ops.iter().zip(&interp_ops) {
                assert_eq!(c.statement, o.statement, "{}", t.name);
                assert_eq!(c.demand, o.demand, "{} jittered demand", t.name);
            }
            assert_eq!(rng_a.f64(), rng_b.f64(), "{} rng state", t.name);
        }
    }

    #[test]
    fn sampling_follows_weights() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut search = 0;
        let n = 20_000;
        for _ in 0..n {
            if sample_interaction(&mut rng).name == "SearchItemsInCategory" {
                search += 1;
            }
        }
        let frac = search as f64 / n as f64;
        assert!((0.15..=0.21).contains(&frac), "frac {frac}");
    }
}
