//! Workload statistics: "this benchmarking tool gathers statistics about
//! the generated workload and the web application behavior" (paper §5.2).
//!
//! Latency and throughput are bucketed into fixed windows of virtual time
//! so the harness can print the latency-vs-time series of Figures 8 and 9
//! and the averages the paper quotes (590 ms with Jade vs 10.42 s
//! without).

use jade_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Per-window aggregates.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Completed requests in the window.
    pub completed: u64,
    /// Failed/aborted requests in the window.
    pub failed: u64,
    /// Sum of latencies (ms) of completed requests.
    pub latency_sum_ms: f64,
    /// Max latency (ms) observed in the window.
    pub latency_max_ms: f64,
}

impl WindowStats {
    /// Mean latency of the window, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.completed as f64
        }
    }
}

/// Per-interaction-type aggregates (the RUBiS report's breakdown table).
#[derive(Debug, Clone, Default)]
pub struct InteractionStats {
    /// Completed requests of this interaction.
    pub completed: u64,
    /// Failed/abandoned requests of this interaction.
    pub failed: u64,
    /// Sum of latencies (ms) of completed requests.
    pub latency_sum_ms: f64,
    /// Worst observed latency, ms.
    pub latency_max_ms: f64,
}

impl InteractionStats {
    /// Mean latency, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.completed as f64
        }
    }
}

/// Collects client-side statistics over fixed windows.
#[derive(Debug)]
pub struct StatsCollector {
    window: SimDuration,
    windows: Vec<WindowStats>,
    per_interaction: BTreeMap<&'static str, InteractionStats>,
    total_completed: u64,
    total_failed: u64,
    total_latency_ms: f64,
}

impl StatsCollector {
    /// Creates a collector with the given window length.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero());
        StatsCollector {
            window,
            windows: Vec::new(),
            per_interaction: BTreeMap::new(),
            total_completed: 0,
            total_failed: 0,
            total_latency_ms: 0.0,
        }
    }

    // jade-audit: allow(hot-panic): the resize on the preceding line
    // guarantees idx < windows.len().
    fn window_mut(&mut self, t: SimTime) -> &mut WindowStats {
        let idx = (t.as_micros() / self.window.as_micros()) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowStats::default());
        }
        &mut self.windows[idx]
    }

    /// Records one completed request.
    pub fn record_completion(&mut self, t: SimTime, latency: SimDuration) {
        self.record_completion_of(t, latency, "");
    }

    /// Records one completed request of a named interaction type.
    pub fn record_completion_of(
        &mut self,
        t: SimTime,
        latency: SimDuration,
        interaction: &'static str,
    ) {
        let ms = latency.as_millis_f64();
        let w = self.window_mut(t);
        w.completed += 1;
        w.latency_sum_ms += ms;
        w.latency_max_ms = w.latency_max_ms.max(ms);
        self.total_completed += 1;
        self.total_latency_ms += ms;
        if !interaction.is_empty() {
            let s = self.per_interaction.entry(interaction).or_default();
            s.completed += 1;
            s.latency_sum_ms += ms;
            s.latency_max_ms = s.latency_max_ms.max(ms);
        }
    }

    /// Records one failed request (server stopped, no backend…).
    pub fn record_failure(&mut self, t: SimTime) {
        self.record_failure_of(t, "");
    }

    /// Records one failed request of a named interaction type.
    pub fn record_failure_of(&mut self, t: SimTime, interaction: &'static str) {
        self.window_mut(t).failed += 1;
        self.total_failed += 1;
        if !interaction.is_empty() {
            self.per_interaction.entry(interaction).or_default().failed += 1;
        }
    }

    /// Per-interaction breakdown, sorted by name (the RUBiS report table).
    pub fn per_interaction(&self) -> impl Iterator<Item = (&'static str, &InteractionStats)> {
        self.per_interaction.iter().map(|(&k, v)| (k, v))
    }

    /// Window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// All windows so far (trailing windows may be empty).
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// `(window start time, mean latency ms)` series.
    pub fn latency_series(&self) -> Vec<(SimTime, f64)> {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                (
                    SimTime::from_micros(i as u64 * self.window.as_micros()),
                    w.mean_latency_ms(),
                )
            })
            .collect()
    }

    /// `(window start time, throughput req/s)` series.
    pub fn throughput_series(&self) -> Vec<(SimTime, f64)> {
        let secs = self.window.as_secs_f64();
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                (
                    SimTime::from_micros(i as u64 * self.window.as_micros()),
                    w.completed as f64 / secs,
                )
            })
            .collect()
    }

    /// Total completed requests.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Total failed requests.
    pub fn total_failed(&self) -> u64 {
        self.total_failed
    }

    /// Run-wide mean latency, ms.
    pub fn overall_mean_latency_ms(&self) -> f64 {
        if self.total_completed == 0 {
            0.0
        } else {
            self.total_latency_ms / self.total_completed as f64
        }
    }

    /// Mean latency (ms) over the most recent complete window before
    /// `now` — the response-time estimator a latency sensor reads
    /// (paper §4.2). Falls back to the current window, then to 0.
    pub fn recent_mean_latency_ms(&self, now: SimTime) -> f64 {
        let idx = (now.as_micros() / self.window.as_micros()) as usize;
        // Prefer the last *complete* window; it has a stable denominator.
        if idx >= 1 {
            if let Some(w) = self.windows.get(idx - 1) {
                if w.completed > 0 {
                    return w.mean_latency_ms();
                }
            }
        }
        self.windows
            .get(idx)
            .map(WindowStats::mean_latency_ms)
            .unwrap_or(0.0)
    }

    /// Mean throughput over `[0, until]`, req/s.
    pub fn overall_throughput(&self, until: SimTime) -> f64 {
        let secs = until.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_completed as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn windows_bucket_by_time() {
        let mut s = StatsCollector::new(SimDuration::from_secs(10));
        s.record_completion(t(1), d(100));
        s.record_completion(t(5), d(300));
        s.record_completion(t(15), d(50));
        s.record_failure(t(15));
        assert_eq!(s.windows().len(), 2);
        assert_eq!(s.windows()[0].completed, 2);
        assert!((s.windows()[0].mean_latency_ms() - 200.0).abs() < 1e-9);
        assert_eq!(s.windows()[1].failed, 1);
        assert_eq!(s.total_completed(), 3);
        assert_eq!(s.total_failed(), 1);
    }

    #[test]
    fn series_and_overall_stats() {
        let mut s = StatsCollector::new(SimDuration::from_secs(10));
        for i in 0..20 {
            s.record_completion(t(i), d(100));
        }
        let tp = s.throughput_series();
        assert_eq!(tp.len(), 2);
        assert!((tp[0].1 - 1.0).abs() < 1e-9);
        assert!((s.overall_mean_latency_ms() - 100.0).abs() < 1e-9);
        assert!((s.overall_throughput(t(20)) - 1.0).abs() < 1e-9);
        let lat = s.latency_series();
        assert!((lat[1].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_interaction_breakdown() {
        let mut s = StatsCollector::new(SimDuration::from_secs(10));
        s.record_completion_of(t(1), d(100), "ViewItem");
        s.record_completion_of(t(2), d(300), "ViewItem");
        s.record_completion_of(t(3), d(50), "Home");
        s.record_failure_of(t(4), "StoreBid");
        let table: Vec<(&str, u64, f64)> = s
            .per_interaction()
            .map(|(name, st)| (name, st.completed, st.mean_latency_ms()))
            .collect();
        assert_eq!(table.len(), 3);
        let view = s
            .per_interaction()
            .find(|(n, _)| *n == "ViewItem")
            .unwrap()
            .1;
        assert_eq!(view.completed, 2);
        assert!((view.mean_latency_ms() - 200.0).abs() < 1e-9);
        assert_eq!(view.latency_max_ms, 300.0);
        let store = s
            .per_interaction()
            .find(|(n, _)| *n == "StoreBid")
            .unwrap()
            .1;
        assert_eq!(store.failed, 1);
        // Totals unaffected by the breakdown.
        assert_eq!(s.total_completed(), 3);
        assert_eq!(s.total_failed(), 1);
    }

    #[test]
    fn recent_latency_prefers_last_complete_window() {
        let mut s = StatsCollector::new(SimDuration::from_secs(10));
        s.record_completion(t(5), d(100));
        s.record_completion(t(12), d(300));
        // At t=15 the last complete window is [0,10): mean 100.
        assert!((s.recent_mean_latency_ms(t(15)) - 100.0).abs() < 1e-9);
        // At t=25 the last complete window is [10,20): mean 300.
        assert!((s.recent_mean_latency_ms(t(25)) - 300.0).abs() < 1e-9);
        // Empty previous window falls back to the current one.
        let mut s2 = StatsCollector::new(SimDuration::from_secs(10));
        s2.record_completion(t(12), d(50));
        assert!((s2.recent_mean_latency_ms(t(15)) - 50.0).abs() < 1e-9);
        // Nothing at all -> 0.
        let s3 = StatsCollector::new(SimDuration::from_secs(10));
        assert_eq!(s3.recent_mean_latency_ms(t(15)), 0.0);
    }

    #[test]
    fn empty_collector_is_sane() {
        let s = StatsCollector::new(SimDuration::from_secs(10));
        assert_eq!(s.overall_mean_latency_ms(), 0.0);
        assert_eq!(s.overall_throughput(t(100)), 0.0);
        assert!(s.windows().is_empty());
    }
}
