//! Aggregate client emulation: idle sessions as per-state counts.
//!
//! Per-client emulation ([`crate::client::EmulatedClient`]) owns one
//! object, one forked RNG and one pending think timer per session — fine
//! at the paper's 500 clients, hopeless at a production-scale million.
//! This module replaces the *idle* side of the population with bare
//! counts: for each navigation state, how many sessions are parked there
//! thinking. A session only materializes into per-request state when its
//! think time expires and a request actually enters the system.
//!
//! The collapse is exact in distribution because think times are
//! exponential and therefore memoryless: an idle session fires within a
//! tick of length `dt` with probability `p = 1 − exp(−dt/mean)`
//! regardless of how long it has already been idle, so the number of
//! issuers from a bucket of `n` indistinguishable sessions is
//! `Binomial(n, p)`. The driver samples that binomial and a uniform
//! offset within the tick for each issuer; everything downstream of
//! issuance (navigation transition, plan generation, routing) is the
//! same machinery per-client mode uses.
//!
//! # RNG draw order (load-bearing, pinned by tests)
//!
//! Determinism across runs and harness worker counts requires a fixed
//! draw order. Each tick consumes draws **by bucket, in state-index
//! order with the fresh bucket first**: for the fresh bucket, then for
//! every navigation state `0..INTERACTIONS.len()` ascending, the pool
//! draws geometric inter-issuer gaps (the O(k) binomial sampler — one
//! uniform per issuer plus one terminating draw per non-empty bucket),
//! and hands the RNG to the issuance callback after each gap draw so the
//! caller's per-issuer draws (dispatch offset, navigation transition)
//! interleave at documented points. A bucket with `p = 0` or no idle
//! sessions consumes no draws. `tests/aggregate_clients.rs` and the
//! determinism suite pin this order end to end.

use crate::interactions::INTERACTIONS;
use jade_sim::SimRng;

/// Bucket index for sessions that have not yet issued their first
/// request (no navigation state; they enter the chain at `Home` without
/// consuming a transition draw).
pub const FRESH_BUCKET: usize = INTERACTIONS.len();

/// Idle-session population, bucketed by navigation state.
#[derive(Debug, Clone)]
pub struct ClientPool {
    /// `idle[s]` = sessions parked in navigation state `s`;
    /// `idle[FRESH_BUCKET]` = sessions yet to issue their first request.
    idle: Vec<u64>,
    /// Sessions with a request in flight (includes retiring ones).
    busy: u64,
    /// In-flight sessions that leave the population on completion
    /// instead of returning to idle (ramp-down debt).
    retiring: u64,
}

impl Default for ClientPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ClientPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ClientPool {
            idle: vec![0; INTERACTIONS.len() + 1],
            busy: 0,
            retiring: 0,
        }
    }

    /// Live population: idle plus in-flight, minus ramp-down debt.
    pub fn total(&self) -> u64 {
        let idle: u64 = self.idle.iter().sum();
        idle + self.busy - self.retiring
    }

    /// Sessions currently holding a request in flight.
    pub fn busy(&self) -> u64 {
        self.busy
    }

    /// Idle sessions parked in `bucket`.
    pub fn idle_in(&self, bucket: usize) -> u64 {
        self.idle[bucket]
    }

    /// Adjusts the population to `target`, mirroring per-client ramping:
    /// growth adds fresh sessions (first cancelling any pending
    /// retirement debt); shrinkage removes idle sessions — fresh bucket
    /// first, then navigation states in index order — and books any
    /// remainder as retirement debt settled when in-flight requests
    /// complete (a per-client slot likewise parks only at the end of its
    /// current cycle).
    // jade-audit: allow(hot-panic): idle[] has a fixed layout of
    // INTERACTIONS.len() + 1 buckets; bucket indexes come from iterating
    // exactly that range.
    pub fn set_target(&mut self, target: u64) {
        let total = self.total();
        if target >= total {
            let mut grow = target - total;
            let cancel = self.retiring.min(grow);
            self.retiring -= cancel;
            grow -= cancel;
            self.idle[FRESH_BUCKET] += grow;
            return;
        }
        let mut shrink = total - target;
        let order = std::iter::once(FRESH_BUCKET).chain(0..INTERACTIONS.len());
        for bucket in order {
            if shrink == 0 {
                return;
            }
            let take = self.idle[bucket].min(shrink);
            self.idle[bucket] -= take;
            shrink -= take;
        }
        debug_assert!(self.busy - self.retiring >= shrink);
        self.retiring += shrink;
    }

    /// Runs one issuance tick: every idle session independently fires
    /// with probability `p` (`= 1 − exp(−dt/mean_think)` for exponential
    /// think times). For each firing session, `issue(rng, bucket)` is
    /// called — in the documented bucket order — and the session moves
    /// to the busy set; the callback performs the caller's per-issuer
    /// draws (offset, transition) and schedules the actual dispatch.
    // jade-audit: allow(hot-panic): bucket indexes iterate the fixed
    // idle[] layout (see set_target).
    pub fn tick(&mut self, p: f64, rng: &mut SimRng, mut issue: impl FnMut(&mut SimRng, usize)) {
        if p <= 0.0 {
            return;
        }
        let all = p >= 1.0;
        // ln(1−p) is finite and negative for p in (0, 1); `all` guards
        // the degenerate cases so the gap math never sees ±∞/NaN.
        let denom = if all { 0.0 } else { (1.0 - p).ln() };
        let order = std::iter::once(FRESH_BUCKET).chain(0..INTERACTIONS.len());
        for bucket in order {
            let n = self.idle[bucket];
            if n == 0 {
                continue;
            }
            let mut fired = 0u64;
            if all {
                fired = n;
                for _ in 0..n {
                    issue(rng, bucket);
                }
            } else {
                // Geometric-gap binomial sampling: walk the n Bernoulli
                // trials jumping straight to the next success. O(k)
                // draws for k issuers instead of O(n) — the whole point
                // at a million idle sessions per tick.
                let mut pos = 0u64;
                loop {
                    let u = rng.f64();
                    // Gap ~ Geometric(p): failures before the next
                    // success. The f64→u64 cast saturates, handling the
                    // astronomically unlikely u ≈ 1 tail.
                    let gap = ((1.0 - u).ln() / denom).floor() as u64;
                    if gap >= n - pos {
                        break;
                    }
                    pos += gap;
                    issue(rng, bucket);
                    fired += 1;
                    pos += 1;
                    if pos >= n {
                        break;
                    }
                }
            }
            self.idle[bucket] -= fired;
            self.busy += fired;
        }
    }

    /// Returns a session to the pool after its request left the system
    /// (completed, failed, or abandoned). `bucket` is the navigation
    /// state the session ended the interaction in (or [`FRESH_BUCKET`]
    /// under the i.i.d. mix, which tracks no state). Retirement debt
    /// from ramp-down is settled here instead of re-idling.
    pub fn complete(&mut self, bucket: usize) {
        debug_assert!(self.busy > 0);
        self.busy -= 1;
        if self.retiring > 0 {
            self.retiring -= 1;
        } else {
            self.idle[bucket] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_conserved_through_tick_and_complete() {
        let mut pool = ClientPool::new();
        let mut rng = SimRng::seed_from_u64(7);
        pool.set_target(10_000);
        assert_eq!(pool.total(), 10_000);
        let mut issued = Vec::new();
        pool.tick(0.05, &mut rng, |_, bucket| issued.push(bucket));
        assert_eq!(pool.busy(), issued.len() as u64);
        assert_eq!(pool.total(), 10_000, "tick must not create or destroy");
        for &bucket in &issued {
            // Sessions return in an arbitrary navigation state.
            pool.complete((bucket + 3) % FRESH_BUCKET);
        }
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.total(), 10_000);
    }

    #[test]
    fn issuance_count_tracks_the_binomial_mean() {
        let mut pool = ClientPool::new();
        let mut rng = SimRng::seed_from_u64(42);
        pool.set_target(1_000_000);
        let p = 0.0153; // ≈ 100 ms tick at a 6.5 s mean think time
        let mut count = 0u64;
        pool.tick(p, &mut rng, |_, _| count += 1);
        let mean = 1_000_000.0 * p;
        let sd = (1_000_000.0 * p * (1.0 - p)).sqrt();
        assert!(
            (count as f64 - mean).abs() < 6.0 * sd,
            "issued {count}, expected ≈ {mean:.0} ± {sd:.0}"
        );
    }

    #[test]
    fn draw_order_visits_fresh_then_states_ascending() {
        let mut pool = ClientPool::new();
        let mut rng = SimRng::seed_from_u64(3);
        pool.set_target(500);
        // Scatter sessions across several buckets via completions.
        let mut first = Vec::new();
        pool.tick(0.9, &mut rng, |_, bucket| first.push(bucket));
        for (i, &bucket) in first.iter().enumerate() {
            let _ = bucket;
            pool.complete(i % 5);
        }
        let mut seen = Vec::new();
        pool.tick(0.9, &mut rng, |_, bucket| seen.push(bucket));
        assert!(!seen.is_empty());
        // Fresh bucket strictly precedes every navigation state, and
        // states appear in ascending index order.
        let rank = |b: usize| if b == FRESH_BUCKET { 0 } else { b + 1 };
        let ranks: Vec<usize> = seen.iter().map(|&b| rank(b)).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted, "bucket visit order must be fresh, 0, 1, …");
    }

    #[test]
    fn tick_with_zero_probability_consumes_no_draws() {
        let mut pool = ClientPool::new();
        pool.set_target(100);
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        pool.tick(0.0, &mut a, |_, _| panic!("nothing may issue at p = 0"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn certain_probability_issues_everyone() {
        let mut pool = ClientPool::new();
        let mut rng = SimRng::seed_from_u64(1);
        pool.set_target(777);
        let mut count = 0;
        pool.tick(1.0, &mut rng, |_, _| count += 1);
        assert_eq!(count, 777);
        assert_eq!(pool.busy(), 777);
    }

    #[test]
    fn shrink_prefers_idle_and_books_retirement_debt() {
        let mut pool = ClientPool::new();
        let mut rng = SimRng::seed_from_u64(5);
        pool.set_target(100);
        pool.tick(1.0, &mut rng, |_, _| {}); // all 100 in flight
        pool.set_target(40); // nothing idle: all 60 become debt
        assert_eq!(pool.total(), 40);
        assert_eq!(pool.busy(), 100);
        // 60 completions retire; the rest re-idle.
        for _ in 0..100 {
            pool.complete(0);
        }
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.total(), 40);
        assert_eq!(pool.idle_in(0), 40);
        // Growth after debt would first have cancelled it; from here it
        // just adds fresh sessions.
        pool.set_target(50);
        assert_eq!(pool.idle_in(FRESH_BUCKET), 10);
    }
}
