//! The evaluation workload profile (paper §5.2): "(i) at the beginning of
//! the experiment, the managed system is submitted to a medium workload:
//! 80 emulated clients; then (ii) the load increases progressively up to
//! 500 emulated clients: 21 new emulated clients every minute; finally
//! (iii) the load decreases symmetrically down to the initial load".

use jade_sim::{SimDuration, SimTime};

/// A piecewise-linear emulated-client ramp.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRamp {
    /// Clients at the start (and end) of the run.
    pub base_clients: u32,
    /// Clients at the peak.
    pub peak_clients: u32,
    /// Clients added (removed) per step.
    pub step_clients: u32,
    /// Interval between steps.
    pub step_interval: SimDuration,
    /// Warm-up period at the base load before ramping.
    pub warmup: SimDuration,
    /// Hold period at the peak.
    pub plateau: SimDuration,
}

impl WorkloadRamp {
    /// The paper's scenario: 80 → 500 → 80 clients, 21 clients/minute.
    pub fn paper() -> Self {
        WorkloadRamp {
            base_clients: 80,
            peak_clients: 500,
            step_clients: 21,
            step_interval: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(120),
            plateau: SimDuration::from_secs(360),
        }
    }

    /// A constant workload (Table 1's "medium workload" intrusivity runs).
    pub fn constant(clients: u32) -> Self {
        WorkloadRamp {
            base_clients: clients,
            peak_clients: clients,
            step_clients: 1,
            step_interval: SimDuration::from_secs(60),
            warmup: SimDuration::ZERO,
            plateau: SimDuration::ZERO,
        }
    }

    /// Duration of the rising (or falling) ramp.
    fn ramp_span(&self) -> SimDuration {
        let delta = self.peak_clients.saturating_sub(self.base_clients);
        if delta == 0 || self.step_clients == 0 {
            return SimDuration::ZERO;
        }
        let steps = delta.div_ceil(self.step_clients) as u64;
        SimDuration::from_micros(steps * self.step_interval.as_micros())
    }

    /// Number of emulated clients that should be active at time `t`.
    pub fn clients_at(&self, t: SimTime) -> u32 {
        let up_start = self.warmup;
        let up_end = up_start + self.ramp_span();
        let down_start = up_end + self.plateau;
        let down_end = down_start + self.ramp_span();
        let t_us = t.as_micros();
        if t_us < up_start.as_micros() {
            self.base_clients
        } else if t_us < up_end.as_micros() {
            let steps = (t_us - up_start.as_micros()) / self.step_interval.as_micros().max(1);
            (self.base_clients + self.step_clients * steps as u32).min(self.peak_clients)
        } else if t_us < down_start.as_micros() {
            self.peak_clients
        } else if t_us < down_end.as_micros() {
            let steps = (t_us - down_start.as_micros()) / self.step_interval.as_micros().max(1);
            self.peak_clients
                .saturating_sub(self.step_clients * steps as u32)
                .max(self.base_clients)
        } else {
            self.base_clients
        }
    }

    /// Total time until the ramp returns to the base load.
    pub fn total_span(&self) -> SimDuration {
        self.warmup + self.ramp_span() + self.plateau + self.ramp_span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn paper_ramp_shape() {
        let r = WorkloadRamp::paper();
        assert_eq!(r.clients_at(SimTime::ZERO), 80);
        assert_eq!(r.clients_at(t(119)), 80);
        // First step fires at the warmup boundary.
        assert_eq!(r.clients_at(t(120)), 80);
        assert_eq!(r.clients_at(t(180)), 101);
        // Peak reached after ceil(420/21)=20 steps => t = 120 + 1200.
        assert_eq!(r.clients_at(t(1320)), 500);
        // Plateau.
        assert_eq!(r.clients_at(t(1600)), 500);
        // Symmetric descent.
        assert_eq!(r.clients_at(t(1740)), 479);
        // Back at base.
        assert_eq!(r.clients_at(t(2880)), 80);
        assert_eq!(r.clients_at(t(5000)), 80);
        assert_eq!(
            r.total_span(),
            SimDuration::from_secs(120 + 1200 + 360 + 1200)
        );
    }

    #[test]
    fn ramp_is_monotone_up_then_down() {
        let r = WorkloadRamp::paper();
        let mut last = 0;
        for s in (0..1320).step_by(10) {
            let c = r.clients_at(t(s));
            assert!(c >= last, "rising phase must be monotone");
            last = c;
        }
        let mut last = u32::MAX;
        for s in (1680..2900).step_by(10) {
            let c = r.clients_at(t(s));
            assert!(c <= last, "falling phase must be monotone");
            last = c;
        }
    }

    #[test]
    fn constant_ramp_never_moves() {
        let r = WorkloadRamp::constant(80);
        for s in [0u64, 100, 1000, 10_000] {
            assert_eq!(r.clients_at(t(s)), 80);
        }
        assert_eq!(r.total_span(), SimDuration::ZERO);
    }

    #[test]
    fn ramp_bounded_by_base_and_peak() {
        let r = WorkloadRamp::paper();
        for s in (0..3600).step_by(7) {
            let c = r.clients_at(t(s));
            assert!((80..=500).contains(&c));
        }
    }
}
