//! The RUBiS database schema and initial dataset.
//!
//! RUBiS "implements an auction site modeled over eBay" (paper §5.2,
//! reference \[1\]): users place bids on items organized in categories and
//! regions, leave comments, and buy items outright. The schema here is the
//! subset the workload exercises.

use jade_sim::SimRng;
use jade_tiers::sql::{row, Statement, Value};

/// Table names of the RUBiS schema.
pub const TABLES: &[&str] = &[
    "users",
    "items",
    "categories",
    "regions",
    "bids",
    "comments",
    "buy_now",
];

/// Sizing of the initial dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Registered users.
    pub users: u64,
    /// Items up for auction.
    pub items: u64,
    /// Item categories (RUBiS ships 20).
    pub categories: u64,
    /// Geographic regions (RUBiS ships 62).
    pub regions: u64,
    /// Pre-existing bids.
    pub bids: u64,
    /// Pre-existing comments.
    pub comments: u64,
}

impl DatasetSpec {
    /// A small but structurally complete dataset for experiments; large
    /// enough that reads hit real rows, small enough to keep runs fast.
    pub fn small() -> Self {
        DatasetSpec {
            users: 300,
            items: 1000,
            categories: 20,
            regions: 62,
            bids: 2000,
            comments: 500,
        }
    }

    /// A tiny dataset for unit tests.
    pub fn tiny() -> Self {
        DatasetSpec {
            users: 10,
            items: 30,
            categories: 3,
            regions: 4,
            bids: 50,
            comments: 10,
        }
    }
}

/// Key-space bookkeeping the interaction generator draws random keys from.
/// Grows as write interactions insert rows.
#[derive(Debug, Clone, Copy)]
pub struct KeySpace {
    /// Current number of user rows.
    pub users: u64,
    /// Current number of item rows.
    pub items: u64,
    /// Number of categories (static).
    pub categories: u64,
    /// Number of regions (static).
    pub regions: u64,
    /// Current number of bid rows.
    pub bids: u64,
    /// Current number of comment rows.
    pub comments: u64,
}

impl From<DatasetSpec> for KeySpace {
    fn from(s: DatasetSpec) -> Self {
        KeySpace {
            users: s.users,
            items: s.items,
            categories: s.categories,
            regions: s.regions,
            bids: s.bids,
            comments: s.comments,
        }
    }
}

impl KeySpace {
    /// Random existing key of a table sized `n` (0 when empty — selects
    /// will simply miss, like a stale bookmark).
    fn pick(rng: &mut SimRng, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            rng.range_u64(0, n - 1)
        }
    }

    /// Random user key.
    pub fn user(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.users)
    }
    /// Random item key.
    pub fn item(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.items)
    }
    /// Random category key.
    pub fn category(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.categories)
    }
    /// Random region key.
    pub fn region(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.regions)
    }
}

/// Statements that create the schema.
pub fn schema_statements() -> Vec<Statement> {
    TABLES
        .iter()
        .map(|t| Statement::CreateTable {
            table: (*t).to_owned(),
        })
        .collect()
}

/// Statements that populate the initial dataset. Deterministic given the
/// RNG seed, so every database replica and every run sees the same data.
pub fn dataset_statements(spec: DatasetSpec, rng: &mut SimRng) -> Vec<Statement> {
    let mut out = schema_statements();
    for i in 0..spec.regions {
        out.push(Statement::Insert {
            table: "regions".into(),
            row: row(&[("name", Value::Text(format!("region-{i}")))]),
        });
    }
    for i in 0..spec.categories {
        out.push(Statement::Insert {
            table: "categories".into(),
            row: row(&[("name", Value::Text(format!("category-{i}")))]),
        });
    }
    for i in 0..spec.users {
        out.push(Statement::Insert {
            table: "users".into(),
            row: row(&[
                ("nickname", Value::Text(format!("user{i}"))),
                (
                    "region",
                    Value::Int(rng.range_u64(0, spec.regions - 1) as i64),
                ),
                ("rating", Value::Int(rng.range_u64(0, 100) as i64)),
            ]),
        });
    }
    for i in 0..spec.items {
        out.push(Statement::Insert {
            table: "items".into(),
            row: row(&[
                ("name", Value::Text(format!("item{i}"))),
                (
                    "seller",
                    Value::Int(rng.range_u64(0, spec.users - 1) as i64),
                ),
                (
                    "category",
                    Value::Int(rng.range_u64(0, spec.categories - 1) as i64),
                ),
                ("price", Value::Int(rng.range_u64(1, 1000) as i64)),
                ("quantity", Value::Int(rng.range_u64(1, 10) as i64)),
            ]),
        });
    }
    for _ in 0..spec.bids {
        out.push(Statement::Insert {
            table: "bids".into(),
            row: row(&[
                ("item", Value::Int(rng.range_u64(0, spec.items - 1) as i64)),
                (
                    "bidder",
                    Value::Int(rng.range_u64(0, spec.users - 1) as i64),
                ),
                ("amount", Value::Int(rng.range_u64(1, 2000) as i64)),
            ]),
        });
    }
    for _ in 0..spec.comments {
        out.push(Statement::Insert {
            table: "comments".into(),
            row: row(&[
                ("item", Value::Int(rng.range_u64(0, spec.items - 1) as i64)),
                (
                    "author",
                    Value::Int(rng.range_u64(0, spec.users - 1) as i64),
                ),
                ("text", Value::Text("nice doing business".into())),
            ]),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_tiers::storage::Database;

    #[test]
    fn dataset_loads_and_matches_spec() {
        let spec = DatasetSpec::tiny();
        let mut rng = SimRng::seed_from_u64(1);
        let mut db = Database::new();
        for s in dataset_statements(spec, &mut rng) {
            db.execute(&s).unwrap();
        }
        assert_eq!(db.get_table("users").unwrap().len() as u64, spec.users);
        assert_eq!(db.get_table("items").unwrap().len() as u64, spec.items);
        assert_eq!(db.get_table("bids").unwrap().len() as u64, spec.bids);
        assert_eq!(db.table_names().len(), TABLES.len());
    }

    #[test]
    fn dataset_is_deterministic() {
        let spec = DatasetSpec::tiny();
        let mut db1 = Database::new();
        let mut db2 = Database::new();
        let mut r1 = SimRng::seed_from_u64(9);
        let mut r2 = SimRng::seed_from_u64(9);
        for s in dataset_statements(spec, &mut r1) {
            db1.execute(&s).unwrap();
        }
        for s in dataset_statements(spec, &mut r2) {
            db2.execute(&s).unwrap();
        }
        assert_eq!(db1.digest(), db2.digest());
    }

    #[test]
    fn keyspace_picks_in_range() {
        let ks: KeySpace = DatasetSpec::tiny().into();
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(ks.user(&mut rng) < ks.users);
            assert!(ks.item(&mut rng) < ks.items);
            assert!(ks.category(&mut rng) < ks.categories);
            assert!(ks.region(&mut rng) < ks.regions);
        }
    }
}
