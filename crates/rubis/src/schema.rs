//! The RUBiS database schema and initial dataset.
//!
//! RUBiS "implements an auction site modeled over eBay" (paper §5.2,
//! reference \[1\]): users place bids on items organized in categories and
//! regions, leave comments, and buy items outright. The schema here is the
//! subset the workload exercises.

use jade_sim::SimRng;
use jade_tiers::sql::{ColId, Schema, Statement, TableId, Value};
use std::sync::{Arc, OnceLock};

/// Table names of the RUBiS schema.
pub const TABLES: &[&str] = &[
    "users",
    "items",
    "categories",
    "regions",
    "bids",
    "comments",
    "buy_now",
];

/// The RUBiS schema, built once per process: tables, columns and the
/// secondary indexes covering every equality filter the 26 interactions
/// issue (`items.category`/`items.seller`, `bids.item`/`bids.bidder`,
/// `comments.author`, `users.region`).
pub fn rubis_schema() -> Arc<Schema> {
    static SCHEMA: OnceLock<Arc<Schema>> = OnceLock::new();
    Arc::clone(SCHEMA.get_or_init(|| {
        Schema::builder()
            .table("users", &["nickname", "region", "rating"])
            .table(
                "items",
                &["name", "seller", "category", "price", "quantity"],
            )
            .table("categories", &["name"])
            .table("regions", &["name"])
            .table("bids", &["item", "bidder", "amount"])
            .table("comments", &["item", "author", "text"])
            .table("buy_now", &["item", "buyer"])
            .index("users", "region")
            .index("items", "category")
            .index("items", "seller")
            .index("bids", "item")
            .index("bids", "bidder")
            .index("comments", "author")
            .build()
    }))
}

/// Pre-resolved identifiers of every RUBiS table and column: names are
/// interned exactly once per process, so statement preparation performs
/// zero string hashing.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct RubisIds {
    pub users: TableId,
    pub items: TableId,
    pub categories: TableId,
    pub regions: TableId,
    pub bids: TableId,
    pub comments: TableId,
    pub buy_now: TableId,
    pub user_nickname: ColId,
    pub user_region: ColId,
    pub user_rating: ColId,
    pub item_name: ColId,
    pub item_seller: ColId,
    pub item_category: ColId,
    pub item_price: ColId,
    pub item_quantity: ColId,
    pub category_name: ColId,
    pub region_name: ColId,
    pub bid_item: ColId,
    pub bid_bidder: ColId,
    pub bid_amount: ColId,
    pub comment_item: ColId,
    pub comment_author: ColId,
    pub comment_text: ColId,
    pub buy_now_item: ColId,
    pub buy_now_buyer: ColId,
}

/// The process-wide [`RubisIds`], resolved once against [`rubis_schema`].
pub fn rubis_ids() -> &'static RubisIds {
    static IDS: OnceLock<RubisIds> = OnceLock::new();
    IDS.get_or_init(|| {
        let s = rubis_schema();
        RubisIds {
            users: s.must_table("users"),
            items: s.must_table("items"),
            categories: s.must_table("categories"),
            regions: s.must_table("regions"),
            bids: s.must_table("bids"),
            comments: s.must_table("comments"),
            buy_now: s.must_table("buy_now"),
            user_nickname: s.must_col("users", "nickname"),
            user_region: s.must_col("users", "region"),
            user_rating: s.must_col("users", "rating"),
            item_name: s.must_col("items", "name"),
            item_seller: s.must_col("items", "seller"),
            item_category: s.must_col("items", "category"),
            item_price: s.must_col("items", "price"),
            item_quantity: s.must_col("items", "quantity"),
            category_name: s.must_col("categories", "name"),
            region_name: s.must_col("regions", "name"),
            bid_item: s.must_col("bids", "item"),
            bid_bidder: s.must_col("bids", "bidder"),
            bid_amount: s.must_col("bids", "amount"),
            comment_item: s.must_col("comments", "item"),
            comment_author: s.must_col("comments", "author"),
            comment_text: s.must_col("comments", "text"),
            buy_now_item: s.must_col("buy_now", "item"),
            buy_now_buyer: s.must_col("buy_now", "buyer"),
        }
    })
}

/// Sizing of the initial dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Registered users.
    pub users: u64,
    /// Items up for auction.
    pub items: u64,
    /// Item categories (RUBiS ships 20).
    pub categories: u64,
    /// Geographic regions (RUBiS ships 62).
    pub regions: u64,
    /// Pre-existing bids.
    pub bids: u64,
    /// Pre-existing comments.
    pub comments: u64,
}

impl DatasetSpec {
    /// A small but structurally complete dataset for experiments; large
    /// enough that reads hit real rows, small enough to keep runs fast.
    pub fn small() -> Self {
        DatasetSpec {
            users: 300,
            items: 1000,
            categories: 20,
            regions: 62,
            bids: 2000,
            comments: 500,
        }
    }

    /// A tiny dataset for unit tests.
    pub fn tiny() -> Self {
        DatasetSpec {
            users: 10,
            items: 30,
            categories: 3,
            regions: 4,
            bids: 50,
            comments: 10,
        }
    }
}

/// Key-space bookkeeping the interaction generator draws random keys from.
/// Grows as write interactions insert rows.
#[derive(Debug, Clone, Copy)]
pub struct KeySpace {
    /// Current number of user rows.
    pub users: u64,
    /// Current number of item rows.
    pub items: u64,
    /// Number of categories (static).
    pub categories: u64,
    /// Number of regions (static).
    pub regions: u64,
    /// Current number of bid rows.
    pub bids: u64,
    /// Current number of comment rows.
    pub comments: u64,
}

impl From<DatasetSpec> for KeySpace {
    fn from(s: DatasetSpec) -> Self {
        KeySpace {
            users: s.users,
            items: s.items,
            categories: s.categories,
            regions: s.regions,
            bids: s.bids,
            comments: s.comments,
        }
    }
}

impl KeySpace {
    /// Random existing key of a table sized `n` (0 when empty — selects
    /// will simply miss, like a stale bookmark).
    fn pick(rng: &mut SimRng, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            rng.range_u64(0, n - 1)
        }
    }

    /// Random user key.
    pub fn user(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.users)
    }
    /// Random item key.
    pub fn item(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.items)
    }
    /// Random category key.
    pub fn category(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.categories)
    }
    /// Random region key.
    pub fn region(&self, rng: &mut SimRng) -> u64 {
        Self::pick(rng, self.regions)
    }
}

/// Statements that create the schema.
pub fn schema_statements() -> Vec<Statement> {
    let schema = rubis_schema();
    TABLES.iter().map(|t| schema.create_table(t)).collect()
}

/// Statements that populate the initial dataset. Deterministic given the
/// RNG seed, so every database replica and every run sees the same data.
/// Rows are built in each table's fixed column layout — no name lookups.
#[cold]
pub fn dataset_statements(spec: DatasetSpec, rng: &mut SimRng) -> Vec<Statement> {
    let ids = rubis_ids();
    let mut out = schema_statements();
    for i in 0..spec.regions {
        out.push(Statement::Insert {
            table: ids.regions,
            row: vec![Value::Text(format!("region-{i}"))],
        });
    }
    for i in 0..spec.categories {
        out.push(Statement::Insert {
            table: ids.categories,
            row: vec![Value::Text(format!("category-{i}"))],
        });
    }
    for i in 0..spec.users {
        // Layout: [nickname, region, rating].
        out.push(Statement::Insert {
            table: ids.users,
            row: vec![
                Value::Text(format!("user{i}")),
                Value::Int(rng.range_u64(0, spec.regions - 1) as i64),
                Value::Int(rng.range_u64(0, 100) as i64),
            ],
        });
    }
    for i in 0..spec.items {
        // Layout: [name, seller, category, price, quantity].
        out.push(Statement::Insert {
            table: ids.items,
            row: vec![
                Value::Text(format!("item{i}")),
                Value::Int(rng.range_u64(0, spec.users - 1) as i64),
                Value::Int(rng.range_u64(0, spec.categories - 1) as i64),
                Value::Int(rng.range_u64(1, 1000) as i64),
                Value::Int(rng.range_u64(1, 10) as i64),
            ],
        });
    }
    for _ in 0..spec.bids {
        // Layout: [item, bidder, amount].
        out.push(Statement::Insert {
            table: ids.bids,
            row: vec![
                Value::Int(rng.range_u64(0, spec.items - 1) as i64),
                Value::Int(rng.range_u64(0, spec.users - 1) as i64),
                Value::Int(rng.range_u64(1, 2000) as i64),
            ],
        });
    }
    for _ in 0..spec.comments {
        // Layout: [item, author, text].
        out.push(Statement::Insert {
            table: ids.comments,
            row: vec![
                Value::Int(rng.range_u64(0, spec.items - 1) as i64),
                Value::Int(rng.range_u64(0, spec.users - 1) as i64),
                Value::Text("nice doing business".into()),
            ],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_tiers::storage::Database;

    #[test]
    fn dataset_loads_and_matches_spec() {
        let spec = DatasetSpec::tiny();
        let mut rng = SimRng::seed_from_u64(1);
        let mut db = Database::new(rubis_schema());
        for s in dataset_statements(spec, &mut rng) {
            db.execute(&s).unwrap();
        }
        assert_eq!(db.get_table("users").unwrap().len() as u64, spec.users);
        assert_eq!(db.get_table("items").unwrap().len() as u64, spec.items);
        assert_eq!(db.get_table("bids").unwrap().len() as u64, spec.bids);
        assert_eq!(db.table_names().len(), TABLES.len());
    }

    #[test]
    fn dataset_is_deterministic() {
        let spec = DatasetSpec::tiny();
        let mut db1 = Database::new(rubis_schema());
        let mut db2 = Database::new(rubis_schema());
        let mut r1 = SimRng::seed_from_u64(9);
        let mut r2 = SimRng::seed_from_u64(9);
        for s in dataset_statements(spec, &mut r1) {
            db1.execute(&s).unwrap();
        }
        for s in dataset_statements(spec, &mut r2) {
            db2.execute(&s).unwrap();
        }
        assert_eq!(db1.digest(), db2.digest());
    }

    #[test]
    fn keyspace_picks_in_range() {
        let ks: KeySpace = DatasetSpec::tiny().into();
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(ks.user(&mut rng) < ks.users);
            assert!(ks.item(&mut rng) < ks.items);
            assert!(ks.category(&mut rng) < ks.categories);
            assert!(ks.region(&mut rng) < ks.regions);
        }
    }
}
