//! Emulated web clients (the RUBiS "benchmarking tool that emulates web
//! client behaviors and generates a tunable workload", paper §5.2).
//!
//! Each client loops: think (negative-exponential think time, TPC-W
//! style), issue one interaction, wait for the response. The think-time
//! mean is calibrated so 80 clients produce the ~12 req/s of Table 1.

use crate::interactions::{generate_plan, generate_plan_compiled_into, sample_interaction};
use crate::schema::KeySpace;
use crate::transitions::{StateId, TransitionMatrix};
use jade_sim::{SimDuration, SimRng};
use jade_tiers::request::InteractionPlan;
use jade_tiers::sql::Value;

/// Mean think time between a response and the next request.
pub const DEFAULT_THINK_TIME: SimDuration = SimDuration::from_millis(6_500);

/// One emulated client.
#[derive(Debug)]
pub struct EmulatedClient {
    /// Client index (stable across the run).
    pub id: u32,
    rng: SimRng,
    mean_think: SimDuration,
    /// Requests issued so far.
    pub issued: u64,
    /// Responses received so far.
    pub completed: u64,
    /// Current page in the Markov navigation model (None = fresh session).
    nav_state: Option<StateId>,
}

impl EmulatedClient {
    /// Creates a client with its own RNG stream.
    pub fn new(id: u32, rng: SimRng, mean_think: SimDuration) -> Self {
        EmulatedClient {
            id,
            rng,
            mean_think,
            issued: 0,
            completed: 0,
            nav_state: None,
        }
    }

    /// Samples the next think time.
    pub fn think_time(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.exp(self.mean_think.as_secs_f64()))
    }

    /// Generates the next interaction from the i.i.d. weighted mix.
    pub fn next_interaction(&mut self, ks: &mut KeySpace) -> InteractionPlan {
        self.issued += 1;
        let t = sample_interaction(&mut self.rng);
        generate_plan(t, ks, &mut self.rng)
    }

    /// Generates the next interaction from an explicit mix (e.g. the
    /// browsing mix).
    pub fn next_interaction_in_mix(
        &mut self,
        mix: &crate::interactions::InteractionMix,
        ks: &mut KeySpace,
    ) -> InteractionPlan {
        self.next_interaction_in_mix_into(mix, ks, Vec::new(), Vec::new())
    }

    /// [`next_interaction_in_mix`] with recycled parameter/demand buffers:
    /// the plan instantiates the interaction's compiled program (see
    /// [`generate_plan_compiled_into`]), so steady-state generation writes
    /// two small recycled buffers instead of building statement trees.
    ///
    /// [`next_interaction_in_mix`]: EmulatedClient::next_interaction_in_mix
    pub fn next_interaction_in_mix_into(
        &mut self,
        mix: &crate::interactions::InteractionMix,
        ks: &mut KeySpace,
        params: Vec<Value>,
        demands: Vec<SimDuration>,
    ) -> InteractionPlan {
        self.issued += 1;
        let t = mix.sample_index(&mut self.rng);
        generate_plan_compiled_into(t, ks, &mut self.rng, params, demands)
    }

    /// Generates the next interaction by navigating the transition-table
    /// state machine (the real RUBiS emulator's behaviour). Sessions
    /// start at `Home`.
    pub fn next_interaction_markov(
        &mut self,
        matrix: &TransitionMatrix,
        ks: &mut KeySpace,
    ) -> InteractionPlan {
        self.next_interaction_markov_into(matrix, ks, Vec::new(), Vec::new())
    }

    /// [`next_interaction_markov`] with recycled parameter/demand buffers
    /// (see [`generate_plan_compiled_into`]; a [`StateId`] is the
    /// interaction's index into `INTERACTIONS`).
    ///
    /// [`next_interaction_markov`]: EmulatedClient::next_interaction_markov
    pub fn next_interaction_markov_into(
        &mut self,
        matrix: &TransitionMatrix,
        ks: &mut KeySpace,
        params: Vec<Value>,
        demands: Vec<SimDuration>,
    ) -> InteractionPlan {
        self.issued += 1;
        let s = match self.nav_state {
            Some(s) => matrix.next(s, &mut self.rng),
            None => matrix.home(),
        };
        self.nav_state = Some(s);
        generate_plan_compiled_into(s, ks, &mut self.rng, params, demands)
    }

    /// Records a completed response.
    pub fn note_completed(&mut self) {
        self.completed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatasetSpec;

    #[test]
    fn think_times_average_to_the_mean() {
        let mut c = EmulatedClient::new(0, SimRng::seed_from_u64(1), DEFAULT_THINK_TIME);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| c.think_time().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 6.5).abs() < 0.2, "mean think {mean}");
    }

    #[test]
    fn clients_are_independent_streams() {
        let mut root = SimRng::seed_from_u64(7);
        let mut a = EmulatedClient::new(0, root.fork(), DEFAULT_THINK_TIME);
        let mut b = EmulatedClient::new(1, root.fork(), DEFAULT_THINK_TIME);
        let ta: Vec<u64> = (0..8).map(|_| a.think_time().as_micros()).collect();
        let tb: Vec<u64> = (0..8).map(|_| b.think_time().as_micros()).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn issue_and_complete_counters() {
        let mut ks: KeySpace = DatasetSpec::tiny().into();
        let mut c = EmulatedClient::new(0, SimRng::seed_from_u64(2), DEFAULT_THINK_TIME);
        let _ = c.next_interaction(&mut ks);
        let _ = c.next_interaction(&mut ks);
        c.note_completed();
        assert_eq!(c.issued, 2);
        assert_eq!(c.completed, 1);
    }
}

#[cfg(test)]
mod markov_tests {
    use super::*;
    use crate::schema::DatasetSpec;

    #[test]
    fn markov_sessions_start_at_home() {
        let mut ks: KeySpace = DatasetSpec::tiny().into();
        let m = TransitionMatrix::bidding_mix();
        let mut c = EmulatedClient::new(0, SimRng::seed_from_u64(3), DEFAULT_THINK_TIME);
        let first = c.next_interaction_markov(&m, &mut ks);
        assert_eq!(first.name, "Home");
        // Subsequent steps follow the chain (and never panic).
        for _ in 0..200 {
            let _ = c.next_interaction_markov(&m, &mut ks);
        }
        assert_eq!(c.issued, 201);
    }
}
