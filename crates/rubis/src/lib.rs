//! # jade-rubis — the RUBiS auction-site workload
//!
//! Reimplementation of the paper's testbed application and client emulator
//! (§5.2): RUBiS, "a J2EE application benchmark based on servlets, which
//! implements an auction site modeled over eBay".
//!
//! * [`schema`] — the auction-site schema and deterministic dataset
//!   generator,
//! * [`interactions`] — the 26 web interactions with the default bidding
//!   mix and calibrated CPU demands,
//! * [`client`] — emulated clients with exponential think times,
//! * [`workload`] — the 80 → 500 → 80 client ramp (+21/minute),
//! * [`stats`] — windowed throughput/latency statistics (Figures 8–9,
//!   Table 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod interactions;
pub mod pool;
pub mod schema;
pub mod stats;
pub mod transitions;
pub mod workload;

pub use client::{EmulatedClient, DEFAULT_THINK_TIME};
pub use interactions::{
    compiled_plans, generate_plan, generate_plan_compiled_into, sample_interaction,
    InteractionKind, InteractionMix, InteractionType, INTERACTIONS,
};
pub use pool::{ClientPool, FRESH_BUCKET};
pub use schema::{
    dataset_statements, rubis_ids, rubis_schema, schema_statements, DatasetSpec, KeySpace, RubisIds,
};
pub use stats::{InteractionStats, StatsCollector, WindowStats};
pub use transitions::{StateId, TransitionMatrix};
pub use workload::WorkloadRamp;
