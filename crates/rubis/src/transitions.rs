//! Client navigation as a Markov state machine.
//!
//! The real RUBiS client emulator drives each session through a
//! *transition table*: from the page a client is on, it picks the next
//! interaction with page-specific probabilities (browsers go from
//! `BrowseCategories` to `SearchItemsInCategory`, bidders from `ViewItem`
//! to `PutBidAuth`, and so on), with a "back" edge modelling the browser
//! button. This module implements that navigation model; the i.i.d.
//! weighted mix of [`crate::interactions::sample_interaction`] remains
//! available as the simpler default.
//!
//! The matrix below is a condensed version of RUBiS's default
//! `transitions.txt` (bidding mix): states are the 26 interactions, rows
//! list `(next-state, weight)` pairs.

use crate::interactions::{InteractionType, INTERACTIONS};
use jade_sim::SimRng;

/// Index of an interaction in [`INTERACTIONS`].
pub type StateId = usize;

fn state(name: &str) -> StateId {
    INTERACTIONS
        .iter()
        .position(|t| t.name == name)
        .unwrap_or_else(|| panic!("unknown interaction '{name}'"))
}

/// One row of the transition table.
#[derive(Debug, Clone)]
struct Row {
    next: Vec<(StateId, f64)>,
}

/// The navigation state machine.
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    rows: Vec<Row>,
    home: StateId,
}

impl Default for TransitionMatrix {
    fn default() -> Self {
        Self::bidding_mix()
    }
}

impl TransitionMatrix {
    /// The default bidding mix: ~85 % browsing, ~15 % read-write, matching
    /// RUBiS's shipped transition table in spirit.
    pub fn bidding_mix() -> Self {
        let mut rows: Vec<Row> = (0..INTERACTIONS.len())
            .map(|_| Row { next: Vec::new() })
            .collect();
        let mut edge = |from: &str, to: &str, w: f64| {
            let f = state(from);
            rows[f].next.push((state(to), w));
        };

        // Entry page.
        edge("Home", "Browse", 6.0);
        edge("Home", "Register", 1.0);
        edge("Home", "AboutMe", 1.0);
        edge("Home", "Sell", 1.0);

        edge("Register", "RegisterUser", 4.0);
        edge("Register", "Home", 1.0);
        edge("RegisterUser", "Browse", 3.0);
        edge("RegisterUser", "Home", 1.0);

        // Browsing loop — the bulk of the traffic.
        edge("Browse", "BrowseCategories", 6.0);
        edge("Browse", "BrowseRegions", 2.0);
        edge("Browse", "Home", 1.0);
        edge("BrowseCategories", "SearchItemsInCategory", 8.0);
        edge("BrowseCategories", "Browse", 1.0);
        edge("SearchItemsInCategory", "ViewItem", 5.0);
        edge("SearchItemsInCategory", "SearchItemsInCategory", 3.0);
        edge("SearchItemsInCategory", "Browse", 2.0);
        edge("BrowseRegions", "BrowseCategoriesInRegion", 5.0);
        edge("BrowseRegions", "Browse", 1.0);
        edge("BrowseCategoriesInRegion", "SearchItemsInRegion", 6.0);
        edge("BrowseCategoriesInRegion", "Browse", 1.0);
        edge("SearchItemsInRegion", "ViewItem", 5.0);
        edge("SearchItemsInRegion", "SearchItemsInRegion", 3.0);
        edge("SearchItemsInRegion", "Browse", 2.0);

        // Item inspection.
        edge("ViewItem", "ViewBidHistory", 2.0);
        edge("ViewItem", "ViewUserInfo", 2.0);
        edge("ViewItem", "PutBidAuth", 2.5);
        edge("ViewItem", "BuyNowAuth", 1.0);
        edge("ViewItem", "Browse", 4.0);
        edge("ViewBidHistory", "ViewItem", 2.0);
        edge("ViewBidHistory", "Browse", 1.0);
        edge("ViewUserInfo", "PutCommentAuth", 1.0);
        edge("ViewUserInfo", "ViewItem", 1.5);
        edge("ViewUserInfo", "Browse", 1.0);

        // Bidding.
        edge("PutBidAuth", "PutBid", 4.0);
        edge("PutBidAuth", "ViewItem", 1.0);
        edge("PutBid", "StoreBid", 3.0);
        edge("PutBid", "ViewItem", 1.0);
        edge("StoreBid", "Browse", 2.0);
        edge("StoreBid", "ViewItem", 1.0);

        // Buy-now.
        edge("BuyNowAuth", "BuyNow", 4.0);
        edge("BuyNowAuth", "ViewItem", 1.0);
        edge("BuyNow", "StoreBuyNow", 2.0);
        edge("BuyNow", "ViewItem", 1.0);
        edge("StoreBuyNow", "Browse", 1.0);
        edge("StoreBuyNow", "Home", 1.0);

        // Comments.
        edge("PutCommentAuth", "PutComment", 3.0);
        edge("PutCommentAuth", "ViewItem", 1.0);
        edge("PutComment", "StoreComment", 3.0);
        edge("PutComment", "ViewItem", 1.0);
        edge("StoreComment", "Browse", 1.0);
        edge("StoreComment", "Home", 1.0);

        // Selling.
        edge("Sell", "SelectCategoryToSellItem", 3.0);
        edge("Sell", "Home", 1.0);
        edge("SelectCategoryToSellItem", "SellItemForm", 3.0);
        edge("SelectCategoryToSellItem", "Sell", 1.0);
        edge("SellItemForm", "RegisterItem", 3.0);
        edge("SellItemForm", "Sell", 1.0);
        edge("RegisterItem", "Browse", 1.0);
        edge("RegisterItem", "Sell", 1.0);

        // AboutMe.
        edge("AboutMe", "ViewItem", 1.0);
        edge("AboutMe", "Browse", 1.0);
        edge("AboutMe", "Home", 1.0);

        TransitionMatrix {
            rows,
            home: state("Home"),
        }
    }

    /// The session entry state (`Home`).
    pub fn home(&self) -> StateId {
        self.home
    }

    /// Samples the next state from `from`. Dead-end states (none in the
    /// default table) restart at `Home`, as a session timeout would.
    ///
    /// Consumes exactly **one** uniform draw, and performs the same
    /// floating-point arithmetic in the same edge order as
    /// [`SimRng::weighted`] over the row's weights — so the sampled
    /// trajectory is bit-identical to the original `Vec`-collecting
    /// implementation, without its per-call allocation. The aggregate
    /// client pool relies on this fixed draw discipline: per-tick state
    /// transitions consume RNG in documented state-index order, one draw
    /// per issuing session (see `crate::pool`), which is what makes
    /// aggregate-mode runs deterministic and seed-comparable.
    pub fn next(&self, from: StateId, rng: &mut SimRng) -> StateId {
        let row = &self.rows[from];
        if row.next.is_empty() {
            return self.home;
        }
        let total: f64 = row.next.iter().map(|&(_, w)| w).sum();
        debug_assert!(total > 0.0, "row weights must be positive");
        let mut x = rng.f64() * total;
        for &(next, w) in &row.next {
            x -= w;
            if x <= 0.0 {
                return next;
            }
        }
        row.next[row.next.len() - 1].0
    }

    /// The interaction type of a state.
    pub fn interaction(&self, s: StateId) -> &'static InteractionType {
        &INTERACTIONS[s]
    }

    /// Empirical stationary distribution over interactions, computed by
    /// walking the chain (used by tests and calibration to compare
    /// against the i.i.d. mix).
    pub fn stationary(&self, steps: usize, rng: &mut SimRng) -> Vec<f64> {
        let mut counts = vec![0u64; INTERACTIONS.len()];
        let mut s = self.home;
        for _ in 0..steps {
            counts[s] += 1;
            s = self.next(s, rng);
        }
        counts
            .into_iter()
            .map(|c| c as f64 / steps as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interactions::InteractionKind;

    #[test]
    fn every_state_is_reachable_and_non_absorbing() {
        let m = TransitionMatrix::bidding_mix();
        let mut rng = SimRng::seed_from_u64(11);
        let dist = m.stationary(300_000, &mut rng);
        for (i, p) in dist.iter().enumerate() {
            assert!(
                *p > 0.0,
                "state {} unreachable in the chain",
                INTERACTIONS[i].name
            );
        }
    }

    #[test]
    fn transitions_reference_valid_states() {
        let m = TransitionMatrix::bidding_mix();
        for row in &m.rows {
            for &(next, w) in &row.next {
                assert!(next < INTERACTIONS.len());
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn stationary_mix_is_mostly_reads() {
        let m = TransitionMatrix::bidding_mix();
        let mut rng = SimRng::seed_from_u64(5);
        let dist = m.stationary(300_000, &mut rng);
        let write_share: f64 = dist
            .iter()
            .enumerate()
            .filter(|(i, _)| INTERACTIONS[*i].kind == InteractionKind::ReadWrite)
            .map(|(_, p)| p)
            .sum();
        assert!(
            (0.03..=0.25).contains(&write_share),
            "write share {write_share:.3} out of the bidding-mix band"
        );
    }

    #[test]
    fn searches_dominate_like_the_iid_mix() {
        // The chain's stationary distribution should agree with the
        // weighted mix on the load-bearing fact: search interactions are
        // the most frequent database work.
        let m = TransitionMatrix::bidding_mix();
        let mut rng = SimRng::seed_from_u64(6);
        let dist = m.stationary(300_000, &mut rng);
        let search =
            dist[super::state("SearchItemsInCategory")] + dist[super::state("SearchItemsInRegion")];
        assert!(search > 0.15, "search share {search:.3}");
    }

    /// Pins the sampling discipline of `next`: exactly one uniform draw
    /// per call, consumed against the row's edges in declaration order,
    /// bit-identical to `SimRng::weighted` over the same weights. The
    /// aggregate client pool documents (and the determinism digests
    /// depend on) this draw order — a refactor that collects weights
    /// differently, walks edges in another order, or adds a draw must
    /// fail here.
    #[test]
    fn next_draw_order_is_pinned() {
        let m = TransitionMatrix::bidding_mix();
        // Reference: the original Vec-collecting implementation.
        let reference = |m: &TransitionMatrix, from: StateId, rng: &mut SimRng| -> StateId {
            let row = &m.rows[from];
            let weights: Vec<f64> = row.next.iter().map(|&(_, w)| w).collect();
            row.next[rng.weighted(&weights)].0
        };
        let mut a = SimRng::seed_from_u64(0xD0C);
        let mut b = SimRng::seed_from_u64(0xD0C);
        let (mut s_a, mut s_b) = (m.home(), m.home());
        for step in 0..10_000 {
            s_a = m.next(s_a, &mut a);
            s_b = reference(&m, s_b, &mut b);
            assert_eq!(s_a, s_b, "trajectories diverged at step {step}");
        }
        // Equal *states* could in principle survive an extra draw; equal
        // RNG positions cannot. One draw per call, exactly.
        assert_eq!(a.next_u64(), b.next_u64(), "draw counts differ");
    }

    #[test]
    fn next_is_deterministic_per_seed() {
        let m = TransitionMatrix::bidding_mix();
        let walk = |seed: u64| -> Vec<StateId> {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut s = m.home();
            (0..64)
                .map(|_| {
                    s = m.next(s, &mut rng);
                    s
                })
                .collect()
        };
        assert_eq!(walk(3), walk(3));
        assert_ne!(walk(3), walk(4));
    }
}
