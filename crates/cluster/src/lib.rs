//! # jade-cluster — the simulated cluster substrate
//!
//! Replaces the paper's physical testbed (§5.2: up to 9 x86 machines on a
//! 100 Mbps LAN) with a deterministic model:
//!
//! * [`node::Node`] — a machine with a processor-sharing CPU, memory and
//!   installed software,
//! * [`manager::ClusterManager`] — the paper's Cluster Manager component:
//!   allocation/release of nodes from a pool (§3.3),
//! * [`software::SoftwareInstallationService`] — the paper's Software
//!   Installation Service: package repository + installation with
//!   realistic latencies (§3.3),
//! * [`network::Network`] — LAN delays.
//!
//! Failure injection (node crash/repair) lives on [`node::Node`] so the
//! self-recovery manager has something to detect and repair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manager;
pub mod network;
pub mod node;
pub mod software;

pub use manager::{ClusterError, ClusterManager};
pub use network::Network;
pub use node::{Node, NodeId, NodeSpec, NodeState};
pub use software::{PackageDef, SoftwareInstallationService, SoftwareRepository};
