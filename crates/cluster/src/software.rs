//! The Software Installation Service (paper §3.3).
//!
//! "A Software Installation Service component allows retrieving the
//! encapsulated software resources involved in the multi-tier J2EE
//! application (e.g., Apache Web server software, MySQL database server
//! software, etc.) and installing them on nodes of the cluster."
//!
//! Installation has a latency (copying binaries over the LAN, unpacking):
//! it is part of why adding a replica is not instantaneous in Figure 5.

use crate::manager::{ClusterError, ClusterManager};
use crate::node::NodeId;
use jade_sim::SimDuration;
use std::collections::BTreeMap;

/// Description of a deployable software package.
#[derive(Debug, Clone)]
pub struct PackageDef {
    /// Package name (e.g. `"tomcat"`).
    pub name: String,
    /// Displayed version (e.g. `"3.3.2"` — the paper's versions).
    pub version: String,
    /// Resident memory footprint once installed, MB.
    pub memory_mb: u64,
    /// Time to fetch + install the package on a node.
    pub install_latency: SimDuration,
    /// Time for the server to boot once started.
    pub startup_latency: SimDuration,
}

/// Repository of packages known to the installation service.
#[derive(Debug, Default)]
pub struct SoftwareRepository {
    packages: BTreeMap<String, PackageDef>,
}

impl SoftwareRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a package definition.
    pub fn register(&mut self, def: PackageDef) {
        self.packages.insert(def.name.clone(), def);
    }

    /// Looks up a package.
    pub fn get(&self, name: &str) -> Option<&PackageDef> {
        self.packages.get(name)
    }

    /// Package names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.packages.keys().map(String::as_str).collect()
    }

    /// The standard catalogue of the paper's software environment (§5.2):
    /// Tomcat 3.3.2, MySQL 4.0.17, C-JDBC 2.0.2, PLB 0.3, Apache, plus the
    /// Jade management daemon deployed on every managed node.
    pub fn j2ee_catalogue() -> Self {
        let mut repo = Self::new();
        let defs = [
            ("apache", "1.3", 48, 8, 2),
            ("tomcat", "3.3.2", 128, 15, 6),
            ("mysql", "4.0.17", 160, 20, 5),
            ("cjdbc", "2.0.2", 96, 12, 4),
            ("plb", "0.3", 24, 5, 1),
            ("jade-daemon", "1.0", 28, 4, 1),
        ];
        for (name, version, mem, install_s, boot_s) in defs {
            repo.register(PackageDef {
                name: name.to_owned(),
                version: version.to_owned(),
                memory_mb: mem,
                install_latency: SimDuration::from_secs(install_s),
                startup_latency: SimDuration::from_secs(boot_s),
            });
        }
        repo
    }
}

/// Installs packages from a repository onto cluster nodes.
#[derive(Debug)]
pub struct SoftwareInstallationService {
    repo: SoftwareRepository,
}

impl SoftwareInstallationService {
    /// Wraps a repository.
    pub fn new(repo: SoftwareRepository) -> Self {
        SoftwareInstallationService { repo }
    }

    /// Read access to the repository.
    pub fn repository(&self) -> &SoftwareRepository {
        &self.repo
    }

    /// Installs `package` on `node`, returning the installation latency the
    /// caller must wait before the software is usable. Installing an
    /// already-present package is free (latency zero).
    pub fn install(
        &self,
        cluster: &mut ClusterManager,
        node: NodeId,
        package: &str,
    ) -> Result<SimDuration, ClusterError> {
        let def = self
            .repo
            .get(package)
            .ok_or_else(|| ClusterError::Install(format!("unknown package '{package}'")))?;
        let n = cluster.node_mut(node)?;
        if !n.is_up() {
            return Err(ClusterError::NodeDown(node));
        }
        if n.has_package(package) {
            return Ok(SimDuration::ZERO);
        }
        n.install(package, def.memory_mb)
            .map_err(ClusterError::Install)?;
        Ok(def.install_latency)
    }

    /// Uninstalls `package` from `node` (no-op when absent).
    pub fn uninstall(
        &self,
        cluster: &mut ClusterManager,
        node: NodeId,
        package: &str,
    ) -> Result<(), ClusterError> {
        let mem = self.repo.get(package).map(|d| d.memory_mb).unwrap_or(0);
        cluster.node_mut(node)?.uninstall(package, mem);
        Ok(())
    }

    /// Boot latency of a package's server process.
    pub fn startup_latency(&self, package: &str) -> SimDuration {
        self.repo
            .get(package)
            .map(|d| d.startup_latency)
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    fn service() -> (SoftwareInstallationService, ClusterManager) {
        (
            SoftwareInstallationService::new(SoftwareRepository::j2ee_catalogue()),
            ClusterManager::homogeneous(2, NodeSpec::default(), 128),
        )
    }

    #[test]
    fn catalogue_has_the_papers_stack() {
        let repo = SoftwareRepository::j2ee_catalogue();
        for pkg in ["apache", "tomcat", "mysql", "cjdbc", "plb", "jade-daemon"] {
            assert!(repo.get(pkg).is_some(), "missing {pkg}");
        }
        assert_eq!(repo.get("mysql").unwrap().version, "4.0.17");
        assert_eq!(repo.get("cjdbc").unwrap().version, "2.0.2");
    }

    #[test]
    fn install_consumes_memory_and_returns_latency() {
        let (svc, mut cm) = service();
        let node = cm.allocate().unwrap();
        let lat = svc.install(&mut cm, node, "mysql").unwrap();
        assert_eq!(lat, SimDuration::from_secs(20));
        assert!(cm.node(node).unwrap().has_package("mysql"));
        // Re-install is free.
        let lat2 = svc.install(&mut cm, node, "mysql").unwrap();
        assert_eq!(lat2, SimDuration::ZERO);
        svc.uninstall(&mut cm, node, "mysql").unwrap();
        assert!(!cm.node(node).unwrap().has_package("mysql"));
    }

    #[test]
    fn unknown_package_rejected() {
        let (svc, mut cm) = service();
        let node = cm.allocate().unwrap();
        assert!(matches!(
            svc.install(&mut cm, node, "websphere"),
            Err(ClusterError::Install(_))
        ));
    }

    #[test]
    fn crashed_node_rejects_install() {
        let (svc, mut cm) = service();
        let node = cm.allocate().unwrap();
        cm.node_mut(node).unwrap().crash(jade_sim::SimTime::ZERO);
        assert_eq!(
            svc.install(&mut cm, node, "tomcat"),
            Err(ClusterError::NodeDown(node))
        );
    }
}
