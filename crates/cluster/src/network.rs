//! LAN model for the cluster.
//!
//! The testbed's "100Mbps Ethernet LAN" (paper §5.2) is modelled as a
//! full-mesh switched network: per-hop latency plus a serialization delay
//! proportional to message size. Contention is ignored — at the paper's
//! request rates the LAN is never the bottleneck (CPU is, §4.2), and the
//! model keeps message delays deterministic.

use crate::node::NodeId;
use jade_sim::SimDuration;

/// Network parameters.
#[derive(Debug, Clone, Copy)]
pub struct Network {
    /// One-way propagation + switching latency per message.
    pub hop_latency: SimDuration,
    /// Link bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
}

impl Default for Network {
    fn default() -> Self {
        Network::lan_100mbps()
    }
}

impl Network {
    /// The paper's 100 Mbps switched Ethernet.
    pub fn lan_100mbps() -> Self {
        Network {
            hop_latency: SimDuration::from_micros(150),
            bandwidth_mbps: 100.0,
        }
    }

    /// Serialization delay for `bytes` on the link, rounded up to the
    /// clock's microsecond resolution. The single rounding point shared by
    /// every delay path, so node-to-node and client messages can't drift.
    fn serialization(&self, bytes: u64) -> SimDuration {
        let serialization_us = (bytes as f64 * 8.0) / self.bandwidth_mbps; // Mbps = bits/us
        SimDuration::from_micros(serialization_us.ceil() as u64)
    }

    /// One-way delay for a message of `bytes` between two nodes. A node
    /// talking to itself (loopback) pays no network delay.
    pub fn delay(&self, from: NodeId, to: NodeId, bytes: u64) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        self.hop_latency + self.serialization(bytes)
    }

    /// Delay for clients outside the cluster (WAN access through the
    /// front-end); a constant extra latency on top of a LAN hop.
    pub fn client_delay(&self, bytes: u64) -> SimDuration {
        // Clients are on the same LAN in the paper's testbed (one node runs
        // the client emulator), so this is just a LAN hop.
        self.hop_latency + self.serialization(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_free() {
        let net = Network::lan_100mbps();
        assert_eq!(net.delay(NodeId(1), NodeId(1), 10_000), SimDuration::ZERO);
    }

    #[test]
    fn delay_scales_with_size() {
        let net = Network::lan_100mbps();
        let small = net.delay(NodeId(0), NodeId(1), 100);
        let large = net.delay(NodeId(0), NodeId(1), 100_000);
        assert!(large > small);
        // 100 KB at 100 Mbps = 8 ms serialization.
        assert!(large >= SimDuration::from_millis(8));
        assert!(large < SimDuration::from_millis(10));
    }

    #[test]
    fn client_and_node_paths_round_identically() {
        let net = Network::lan_100mbps();
        for bytes in [0, 1, 99, 512, 100_000] {
            assert_eq!(
                net.client_delay(bytes),
                net.delay(NodeId(0), NodeId(1), bytes)
            );
        }
    }

    #[test]
    fn symmetric() {
        let net = Network::lan_100mbps();
        assert_eq!(
            net.delay(NodeId(0), NodeId(1), 512),
            net.delay(NodeId(1), NodeId(0), 512)
        );
    }
}
