//! Simulated cluster nodes.
//!
//! A node is an x86 machine of the paper's testbed: one processor-sharing
//! CPU, a fixed amount of memory, and a set of installed software packages.
//! The evaluation's "up to 9 machines … connected through a 100Mbps
//! Ethernet LAN" (paper §5.2) becomes a pool of these.

use jade_sim::{EfficiencyCurve, PsCpu, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Node identity within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Hardware description of a node.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// CPU capacity in reference-core units (1.0 = the paper's x86 node).
    pub cpu_speed: f64,
    /// Physical memory in MB.
    pub memory_mb: u64,
    /// CPU degradation law under overload (thrashing model).
    pub curve: EfficiencyCurve,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec {
            cpu_speed: 1.0,
            memory_mb: 1024,
            curve: EfficiencyCurve::Ideal,
        }
    }
}

/// Whether the machine is reachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Powered and reachable.
    Up,
    /// Crashed (failure injection); repair returns it to `Up`.
    Crashed,
}

/// A machine in the simulated cluster.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    name: String,
    spec: NodeSpec,
    /// The node's CPU; server actors submit jobs here.
    pub cpu: PsCpu,
    state: NodeState,
    installed: BTreeSet<String>,
    mem_used_mb: u64,
    /// Memory permanently consumed by the OS and base system.
    base_mem_mb: u64,
}

impl Node {
    /// Creates an `Up` node with the given spec. `base_mem_mb` models the
    /// OS-resident footprint included in memory-usage percentages.
    pub fn new(id: NodeId, name: &str, spec: NodeSpec, base_mem_mb: u64) -> Self {
        Node {
            id,
            name: name.to_owned(),
            spec,
            cpu: PsCpu::new(spec.cpu_speed, spec.curve),
            state: NodeState::Up,
            installed: BTreeSet::new(),
            mem_used_mb: base_mem_mb,
            base_mem_mb,
        }
    }

    /// Node identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Host name (`node1`, `node2`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hardware description.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Current availability.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// True when the node is reachable.
    pub fn is_up(&self) -> bool {
        self.state == NodeState::Up
    }

    /// Crashes the node, dropping all in-flight CPU jobs. Returns the ids
    /// of the aborted jobs so their requests can be failed.
    pub fn crash(&mut self, now: SimTime) -> Vec<jade_sim::JobId> {
        self.state = NodeState::Crashed;
        // Jobs that finished since the last completion-timer fire are still
        // undelivered; the crash loses those responses too, so hand them to
        // the caller to fail rather than leaking them into a post-repair
        // drain.
        let mut lost = self.cpu.collect_completions(now);
        lost.extend(self.cpu.abort_all(now));
        lost
    }

    /// Repairs a crashed node (reboot): memory returns to the base
    /// footprint and installed software is considered lost (a fresh node,
    /// as when the cluster manager re-allocates a machine).
    pub fn repair(&mut self) {
        self.state = NodeState::Up;
        self.installed.clear();
        self.mem_used_mb = self.base_mem_mb;
    }

    /// Records installation of a software package consuming `mem_mb`.
    /// Fails when memory would be exhausted; idempotent per package name.
    pub fn install(&mut self, package: &str, mem_mb: u64) -> Result<(), String> {
        if self.installed.contains(package) {
            return Ok(());
        }
        if self.mem_used_mb + mem_mb > self.spec.memory_mb {
            return Err(format!(
                "node {}: out of memory installing {package} ({} + {mem_mb} > {} MB)",
                self.name, self.mem_used_mb, self.spec.memory_mb
            ));
        }
        self.installed.insert(package.to_owned());
        self.mem_used_mb += mem_mb;
        Ok(())
    }

    /// Removes a package, releasing its memory.
    pub fn uninstall(&mut self, package: &str, mem_mb: u64) {
        if self.installed.remove(package) {
            self.mem_used_mb = self.mem_used_mb.saturating_sub(mem_mb);
        }
    }

    /// True when the package is installed.
    pub fn has_package(&self, package: &str) -> bool {
        self.installed.contains(package)
    }

    /// Installed package names (deterministic order).
    pub fn packages(&self) -> impl Iterator<Item = &str> {
        self.installed.iter().map(String::as_str)
    }

    /// Memory in use, MB.
    pub fn memory_used_mb(&self) -> u64 {
        self.mem_used_mb
    }

    /// Memory utilization in `[0, 1]`.
    pub fn memory_utilization(&self) -> f64 {
        self.mem_used_mb as f64 / self.spec.memory_mb as f64
    }

    /// CPU utilization since the last sample (probe read).
    pub fn sample_cpu(&mut self, now: SimTime) -> f64 {
        if self.state == NodeState::Crashed {
            return 0.0;
        }
        self.cpu.sample_utilization(now)
    }

    /// Total CPU busy time.
    pub fn cpu_busy_time(&mut self, now: SimTime) -> SimDuration {
        self.cpu.busy_time(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_sim::JobId;

    fn node() -> Node {
        Node::new(NodeId(0), "node1", NodeSpec::default(), 128)
    }

    #[test]
    fn install_and_memory_accounting() {
        let mut n = node();
        assert_eq!(n.memory_used_mb(), 128);
        n.install("tomcat", 256).unwrap();
        assert_eq!(n.memory_used_mb(), 384);
        // Idempotent.
        n.install("tomcat", 256).unwrap();
        assert_eq!(n.memory_used_mb(), 384);
        assert!(n.has_package("tomcat"));
        n.uninstall("tomcat", 256);
        assert_eq!(n.memory_used_mb(), 128);
        assert!(!n.has_package("tomcat"));
    }

    #[test]
    fn install_rejects_memory_exhaustion() {
        let mut n = node();
        assert!(n.install("huge", 10_000).is_err());
        assert!(!n.has_package("huge"));
    }

    #[test]
    fn crash_aborts_jobs_and_repair_wipes_software() {
        let mut n = node();
        n.install("mysql", 200).unwrap();
        n.cpu
            .submit(SimTime::ZERO, JobId(1), SimDuration::from_millis(50));
        let aborted = n.crash(SimTime::from_millis(10));
        assert_eq!(aborted, vec![JobId(1)]);
        assert_eq!(n.state(), NodeState::Crashed);
        assert_eq!(n.sample_cpu(SimTime::from_millis(20)), 0.0);
        n.repair();
        assert!(n.is_up());
        assert!(!n.has_package("mysql"));
        assert_eq!(n.memory_used_mb(), 128);
    }

    #[test]
    fn memory_utilization_fraction() {
        let mut n = node();
        n.install("x", 384).unwrap();
        assert!((n.memory_utilization() - 0.5).abs() < 1e-9);
    }
}
