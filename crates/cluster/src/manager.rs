//! The Cluster Manager: node-pool allocation (paper §3.3).
//!
//! "A Cluster Manager component is responsible for the allocation of nodes
//! (from a pool of available nodes) which will host the replicated servers
//! of each tier." Allocation is deterministic (lowest free node id first)
//! so experiment runs are reproducible.

use crate::node::{Node, NodeId, NodeSpec};
use std::collections::BTreeSet;

/// Errors from the cluster substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No free node remains in the pool.
    PoolExhausted,
    /// Unknown node id.
    NoSuchNode(NodeId),
    /// Operation requires the node to be allocated / free.
    WrongAllocationState(NodeId),
    /// Node is crashed.
    NodeDown(NodeId),
    /// Installation failure (memory exhausted, unknown package…).
    Install(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::PoolExhausted => write!(f, "no free node in the pool"),
            ClusterError::NoSuchNode(id) => write!(f, "no such node: {id:?}"),
            ClusterError::WrongAllocationState(id) => {
                write!(f, "node {id:?} is not in the required allocation state")
            }
            ClusterError::NodeDown(id) => write!(f, "node {id:?} is crashed"),
            ClusterError::Install(msg) => write!(f, "installation failed: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The node pool plus allocation bookkeeping.
#[derive(Debug)]
pub struct ClusterManager {
    nodes: Vec<Node>,
    free: BTreeSet<NodeId>,
    allocated: BTreeSet<NodeId>,
}

impl ClusterManager {
    /// Builds a pool of `count` identical nodes named `node1..nodeN`.
    pub fn homogeneous(count: usize, spec: NodeSpec, base_mem_mb: u64) -> Self {
        let nodes: Vec<Node> = (0..count)
            .map(|i| {
                Node::new(
                    NodeId(jade_sim::id_u32(i)),
                    &format!("node{}", i + 1),
                    spec,
                    base_mem_mb,
                )
            })
            .collect();
        let free = nodes.iter().map(Node::id).collect();
        ClusterManager {
            nodes,
            free,
            allocated: BTreeSet::new(),
        }
    }

    /// Allocates the lowest-id free, up node. Crashed free nodes are
    /// skipped (they stay in the pool until repaired).
    pub fn allocate(&mut self) -> Result<NodeId, ClusterError> {
        let pick = self
            .free
            .iter()
            .copied()
            .find(|&id| self.nodes[id.0 as usize].is_up())
            .ok_or(ClusterError::PoolExhausted)?;
        self.free.remove(&pick);
        self.allocated.insert(pick);
        Ok(pick)
    }

    /// Returns a node to the free pool.
    pub fn release(&mut self, id: NodeId) -> Result<(), ClusterError> {
        if !self.allocated.remove(&id) {
            return Err(ClusterError::WrongAllocationState(id));
        }
        self.free.insert(id);
        Ok(())
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> Result<&Node, ClusterError> {
        self.nodes
            .get(id.0 as usize)
            .ok_or(ClusterError::NoSuchNode(id))
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, ClusterError> {
        self.nodes
            .get_mut(id.0 as usize)
            .ok_or(ClusterError::NoSuchNode(id))
    }

    /// All node ids (allocated and free).
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(Node::id).collect()
    }

    /// Samples every node's CPU once into a dense array: `out[i]` is the
    /// utilization of `NodeId(i)`. Node ids are sequential positions in
    /// the pool, so this visits the exact nodes — in the exact id order —
    /// that sampling each entry of [`ClusterManager::node_ids`] through
    /// [`ClusterManager::node_mut`] would, without allocating.
    pub fn sample_cpus_into(&mut self, now: jade_sim::SimTime, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.nodes.len());
        for n in &mut self.nodes {
            out.push(n.sample_cpu(now));
        }
    }

    /// Currently allocated nodes, in id order.
    pub fn allocated(&self) -> Vec<NodeId> {
        self.allocated.iter().copied().collect()
    }

    /// Fills `out` with the currently allocated nodes in id order — the
    /// same sequence as [`ClusterManager::allocated`] — reusing the
    /// caller's buffer.
    pub fn fill_allocated(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.allocated.iter().copied());
    }

    /// Currently free nodes, in id order.
    pub fn free(&self) -> Vec<NodeId> {
        self.free.iter().copied().collect()
    }

    /// Number of free, up nodes.
    pub fn free_count(&self) -> usize {
        self.free
            .iter()
            .filter(|&&id| self.nodes[id.0 as usize].is_up())
            .count()
    }

    /// Total pool size.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the pool has no node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when the node is currently allocated.
    pub fn is_allocated(&self, id: NodeId) -> bool {
        self.allocated.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_sim::SimTime;

    fn pool(n: usize) -> ClusterManager {
        ClusterManager::homogeneous(n, NodeSpec::default(), 128)
    }

    #[test]
    fn allocation_is_deterministic_and_exclusive() {
        let mut cm = pool(3);
        let a = cm.allocate().unwrap();
        let b = cm.allocate().unwrap();
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert!(cm.is_allocated(a));
        assert_eq!(cm.free_count(), 1);
        cm.allocate().unwrap();
        assert_eq!(cm.allocate(), Err(ClusterError::PoolExhausted));
    }

    #[test]
    fn release_returns_to_pool_lowest_first() {
        let mut cm = pool(3);
        let a = cm.allocate().unwrap();
        let _b = cm.allocate().unwrap();
        cm.release(a).unwrap();
        // Released node is picked again (lowest id).
        assert_eq!(cm.allocate().unwrap(), a);
        // Double release rejected.
        assert_eq!(
            cm.release(NodeId(2)),
            Err(ClusterError::WrongAllocationState(NodeId(2)))
        );
    }

    #[test]
    fn crashed_free_nodes_are_skipped() {
        let mut cm = pool(2);
        cm.node_mut(NodeId(0)).unwrap().crash(SimTime::ZERO);
        assert_eq!(cm.allocate().unwrap(), NodeId(1));
        assert_eq!(cm.allocate(), Err(ClusterError::PoolExhausted));
        cm.node_mut(NodeId(0)).unwrap().repair();
        assert_eq!(cm.allocate().unwrap(), NodeId(0));
    }

    #[test]
    fn names_follow_the_paper_convention() {
        let cm = pool(2);
        assert_eq!(cm.node(NodeId(0)).unwrap().name(), "node1");
        assert_eq!(cm.node(NodeId(1)).unwrap().name(), "node2");
    }
}
