//! Micro-benchmarks of the discrete-event kernel: event-queue throughput
//! (slab-backed vs the naive `BinaryHeap` + `HashSet` baseline it
//! replaced), processor-sharing CPU updates, and end-to-end engine
//! stepping. These bound the cost of every simulated experiment in the
//! repository.
//!
//! `cargo bench --bench kernel` writes `BENCH_kernel.json` with the
//! measured rates and the slab-vs-naive speedups.

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade_bench::microbench::{black_box, Runner};
use jade_bench::{
    naive_time_weighted_mean, NaiveDatabase, NaiveLifecycle, NaiveObservation, NaivePsCpu,
    NaiveReplication,
};
use jade_cluster::{ClusterManager, NodeId, NodeSpec};
use jade_rubis::interactions::generate_plan_into;
use jade_rubis::{
    dataset_statements, generate_plan, generate_plan_compiled_into, rubis_schema,
    sample_interaction, DatasetSpec, InteractionMix, KeySpace, WorkloadRamp, INTERACTIONS,
};
use jade_sim::{Addr, App, Ctx, EfficiencyCurve, Engine, EventQueue, JobId, PsCpu, SimRng};
use jade_sim::{MovingAverage, Retention, SeriesCursor, SimDuration, SimTime, TimeSeries};
use jade_tiers::recovery::RecoveryLog;
use jade_tiers::request::{SqlOp, SqlProgram};
use jade_tiers::sql::{Schema, SharedRow, Statement, Value};
use jade_tiers::storage::Database;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

/// The event queue the kernel shipped with before the slab rewrite: a
/// `BinaryHeap` with payloads inline plus a `HashSet` of cancelled
/// sequence numbers. Kept here as the benchmark baseline.
struct NaiveQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, T)>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T: Ord> NaiveQueue<T> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq, payload)));
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(Reverse((time, seq, payload))) = self.heap.pop() {
            if !self.cancelled.remove(&seq) {
                return Some((time, payload));
            }
        }
        None
    }
}

/// What the engine actually schedules: `(Addr, A::Msg)`, 24 bytes for the
/// system-model app. The baseline carried it inline in every heap entry;
/// the slab queue moves only 24-byte `(time, seq, slot)` records and parks
/// the payload.
type Payload = [u64; 3];

const PUSH_POP_N: usize = 10_000;
const CANCEL_N: u64 = 1_000;
const CHURN_Q: usize = 4_096;
const CHURN_OPS: usize = 20_000;

fn bench_queues(r: &mut Runner) {
    // All queue benchmarks reuse one warm queue across iterations, like
    // the engine does across a run: capacity and recycled slots persist,
    // so the allocator is out of the measurement.

    // Reverse-order pushes: worst-case heap churn.
    {
        let mut q = EventQueue::new();
        r.bench(
            &format!("event_queue/slab/push_pop_{PUSH_POP_N}"),
            move || {
                for i in 0..PUSH_POP_N {
                    let v = i as u64;
                    q.push(SimTime::from_micros((PUSH_POP_N - i) as u64), [v, v, v]);
                }
                let mut out = 0u64;
                while let Some((_, v)) = q.pop() {
                    out = out.wrapping_add(v[0]);
                }
                out
            },
        );
    }
    {
        let mut q = NaiveQueue::new();
        r.bench(
            &format!("event_queue/naive/push_pop_{PUSH_POP_N}"),
            move || {
                for i in 0..PUSH_POP_N {
                    let v = i as u64;
                    q.push(
                        SimTime::from_micros((PUSH_POP_N - i) as u64),
                        [v, v, v] as Payload,
                    );
                }
                let mut out = 0u64;
                while let Some((_, v)) = q.pop() {
                    out = out.wrapping_add(v[0]);
                }
                out
            },
        );
    }

    // Cancel every other timer, like the CPU model re-arming.
    {
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        r.bench(
            &format!("event_queue/slab/cancel_heavy_{CANCEL_N}"),
            move || {
                tokens.clear();
                tokens.extend((0..CANCEL_N).map(|i| q.push(SimTime::from_micros(i), [i, i, i])));
                for t in tokens.iter().step_by(2) {
                    q.cancel(*t);
                }
                let mut survivors = 0;
                while q.pop().is_some() {
                    survivors += 1;
                }
                survivors
            },
        );
    }
    {
        let mut q = NaiveQueue::new();
        let mut tokens = Vec::new();
        r.bench(
            &format!("event_queue/naive/cancel_heavy_{CANCEL_N}"),
            move || {
                tokens.clear();
                tokens.extend(
                    (0..CANCEL_N).map(|i| q.push(SimTime::from_micros(i), [i, i, i] as Payload)),
                );
                for t in tokens.iter().step_by(2) {
                    q.cancel(*t);
                }
                let mut survivors = 0;
                while q.pop().is_some() {
                    survivors += 1;
                }
                survivors
            },
        );
    }

    // Steady-state churn: the engine's actual access pattern. A constant
    // population of pending events; every dispatch pops one, schedules a
    // successor, and re-arms a completion timer (cancel + push), exactly
    // like the processor-sharing CPU model does on each arrival. The
    // population persists across iterations (virtual time keeps rising).
    {
        let mut q = EventQueue::new();
        for i in 0..CHURN_Q as u64 {
            q.push(SimTime::from_micros(i), [i, i, i]);
        }
        let mut timer = q.push(SimTime::from_micros(CHURN_Q as u64), [0; 3]);
        r.bench(&format!("event_queue/slab/churn_{CHURN_OPS}"), move || {
            let mut acc = 0u64;
            for i in 0..CHURN_OPS as u64 {
                let (t, v) = q.pop().expect("queue never drains");
                let now = t.as_micros();
                acc = acc.wrapping_add(v[0]);
                q.push(SimTime::from_micros(now + CHURN_Q as u64 + i % 7), v);
                q.cancel(timer);
                timer = q.push(SimTime::from_micros(now + 100), [i, i, i]);
            }
            acc
        });
    }
    {
        let mut q = NaiveQueue::new();
        for i in 0..CHURN_Q as u64 {
            q.push(SimTime::from_micros(i), [i, i, i] as Payload);
        }
        let mut timer = q.push(SimTime::from_micros(CHURN_Q as u64), [0; 3]);
        r.bench(&format!("event_queue/naive/churn_{CHURN_OPS}"), move || {
            let mut acc = 0u64;
            for i in 0..CHURN_OPS as u64 {
                let (t, v) = q.pop().expect("queue never drains");
                let now = t.as_micros();
                acc = acc.wrapping_add(v[0]);
                q.push(SimTime::from_micros(now + CHURN_Q as u64 + i % 7), v);
                q.cancel(timer);
                timer = q.push(SimTime::from_micros(now + 100), [i, i, i]);
            }
            acc
        });
    }
}

/// Driver API shared by the virtual-time model and the naive reference, so
/// one generic benchmark body drives both.
trait CpuModel {
    fn new(speed: f64, curve: EfficiencyCurve) -> Self;
    fn submit(&mut self, now: SimTime, id: JobId, demand: SimDuration);
    fn next_completion(&mut self, now: SimTime) -> Option<SimTime>;
    fn collect_completions(&mut self, now: SimTime) -> Vec<JobId>;
    fn load(&self) -> usize;
}

macro_rules! impl_cpu_model {
    ($ty:ty) => {
        impl CpuModel for $ty {
            fn new(speed: f64, curve: EfficiencyCurve) -> Self {
                <$ty>::new(speed, curve)
            }
            fn submit(&mut self, now: SimTime, id: JobId, demand: SimDuration) {
                <$ty>::submit(self, now, id, demand)
            }
            fn next_completion(&mut self, now: SimTime) -> Option<SimTime> {
                <$ty>::next_completion(self, now)
            }
            fn collect_completions(&mut self, now: SimTime) -> Vec<JobId> {
                <$ty>::collect_completions(self, now)
            }
            fn load(&self) -> usize {
                <$ty>::load(self)
            }
        }
    };
}
impl_cpu_model!(PsCpu);
impl_cpu_model!(NaivePsCpu);

/// Submit `jobs` jobs, then drain via the timer loop — the saturated-tier
/// access pattern (Figs. 6 and 8). The workload is unchanged from the
/// pre-rewrite bench so new numbers stay comparable with the committed
/// baseline's.
fn submit_drain<C: CpuModel>(jobs: usize, curve: EfficiencyCurve) -> usize {
    let mut cpu = C::new(1.0, curve);
    let mut t = SimTime::ZERO;
    for i in 0..jobs {
        cpu.submit(t, JobId(i as u64), SimDuration::from_millis(5));
    }
    while let Some(next) = cpu.next_completion(t) {
        t = next;
        black_box(cpu.collect_completions(t).len());
    }
    cpu.load()
}

const THRASH_CURVE: EfficiencyCurve = EfficiencyCurve::Thrashing {
    knee: 64,
    slope: 0.1,
};

fn bench_ps_cpu(r: &mut Runner) {
    for jobs in [2usize, 16, 128, 512, 2048] {
        r.bench(&format!("ps_cpu/submit_drain_{jobs}"), move || {
            submit_drain::<PsCpu>(jobs, EfficiencyCurve::Ideal)
        });
        r.bench(&format!("ps_cpu/naive/submit_drain_{jobs}"), move || {
            submit_drain::<NaivePsCpu>(jobs, EfficiencyCurve::Ideal)
        });
    }
    r.bench("ps_cpu/thrashing_512", || {
        submit_drain::<PsCpu>(512, THRASH_CURVE)
    });
    r.bench("ps_cpu/naive/thrashing_512", || {
        submit_drain::<NaivePsCpu>(512, THRASH_CURVE)
    });
}

// ---------------------------------------------------------------------
// Storage engine: interned + indexed vs the name-keyed scan baseline.
// ---------------------------------------------------------------------

const DB_ROWS: u64 = 10_000;
const DB_HOT_SELECTS: u64 = 1_000;
const DB_WHERE_SELECTS: u64 = 100;
const DB_MIX_INTERACTIONS: usize = 500;

fn db_schema() -> Arc<Schema> {
    Schema::builder()
        .table(
            "items",
            &["name", "seller", "category", "price", "quantity"],
        )
        .index("items", "category")
        .index("items", "seller")
        .build()
}

/// `CREATE TABLE` plus `DB_ROWS` item rows (~10 rows per category value).
fn db_fixture(schema: &Schema) -> Vec<Statement> {
    let mut rng = SimRng::seed_from_u64(0xDB);
    let mut out = vec![schema.create_table("items")];
    for i in 0..DB_ROWS {
        out.push(schema.insert(
            "items",
            &[
                ("name", Value::Text(format!("item{i}"))),
                ("seller", Value::Int(rng.range_u64(0, 499) as i64)),
                ("category", Value::Int(rng.range_u64(0, 999) as i64)),
                ("price", Value::Int(rng.range_u64(1, 1000) as i64)),
                ("quantity", Value::Int(1)),
            ],
        ));
    }
    out
}

fn loaded_interned(schema: &Arc<Schema>, fixture: &[Statement]) -> Database {
    let mut db = Database::new(Arc::clone(schema));
    for s in fixture {
        db.execute(s).unwrap();
    }
    db
}

fn loaded_naive(schema: &Schema, fixture: &[Statement]) -> NaiveDatabase {
    let mut db = NaiveDatabase::new();
    for s in fixture {
        db.execute(schema, s).unwrap();
    }
    db
}

fn bench_db(r: &mut Runner) {
    let schema = db_schema();
    let fixture = db_fixture(&schema);

    // Point lookups on a hot key set (the ViewItem/BuyNow access pattern).
    let hot: Vec<Statement> = {
        let mut rng = SimRng::seed_from_u64(0x407);
        (0..DB_HOT_SELECTS)
            .map(|_| schema.select_by_key("items", rng.range_u64(0, DB_ROWS - 1)))
            .collect()
    };
    {
        let db = loaded_interned(&schema, &fixture);
        let mut scratch: Vec<(u64, SharedRow)> = Vec::new();
        let hot = hot.clone();
        let mut db = db;
        r.bench(
            &format!("db/select_by_key_hot_{DB_HOT_SELECTS}"),
            move || {
                let mut acc = 0usize;
                for s in &hot {
                    let _ = db.execute_into(s, &mut scratch);
                    acc += scratch.len();
                }
                acc
            },
        );
    }
    {
        let mut db = loaded_naive(&schema, &fixture);
        let schema = Arc::clone(&schema);
        let hot = hot.clone();
        r.bench(
            &format!("db/naive/select_by_key_hot_{DB_HOT_SELECTS}"),
            move || {
                let mut acc = 0usize;
                for s in &hot {
                    if let Ok(jade_bench::NaiveQueryResult::Rows(rows)) = db.execute(&schema, s) {
                        acc += rows.len();
                    }
                }
                acc
            },
        );
    }

    // Equality scans over the indexed `category` column
    // (SearchItemsInCategory): O(matches) postings vs a 10k-row full scan.
    let scans: Vec<Statement> = (0..DB_WHERE_SELECTS)
        .map(|i| schema.select_where("items", "category", Value::Int((i * 7 % 1000) as i64), 25))
        .collect();
    {
        let mut db = loaded_interned(&schema, &fixture);
        let mut scratch: Vec<(u64, SharedRow)> = Vec::new();
        let scans = scans.clone();
        r.bench(&format!("db/select_where_{DB_ROWS}"), move || {
            let mut acc = 0usize;
            for s in &scans {
                let _ = db.execute_into(s, &mut scratch);
                acc += scratch.len();
            }
            acc
        });
    }
    {
        let mut db = loaded_naive(&schema, &fixture);
        let schema = Arc::clone(&schema);
        let scans = scans.clone();
        r.bench(&format!("db/naive/select_where_{DB_ROWS}"), move || {
            let mut acc = 0usize;
            for s in &scans {
                if let Ok(jade_bench::NaiveQueryResult::Rows(rows)) = db.execute(&schema, s) {
                    acc += rows.len();
                }
            }
            acc
        });
    }

    // The RUBiS bidding mix end-to-end: the statement stream one emulated
    // client population issues, replayed against each engine. Writes
    // accumulate across iterations identically for both, so the best
    // sample (reported) compares like-for-like states.
    let rubis = rubis_schema();
    let spec = DatasetSpec::small();
    let mut rng = SimRng::seed_from_u64(0x2B1D);
    let dump = dataset_statements(spec, &mut rng);
    let mix: Vec<Arc<Statement>> = {
        let mut ks: KeySpace = spec.into();
        let mut ops = Vec::new();
        for _ in 0..DB_MIX_INTERACTIONS {
            let t = sample_interaction(&mut rng);
            let plan = generate_plan(t, &mut ks, &mut rng);
            ops.extend(plan.sql.into_ops().into_iter().map(|op| op.statement));
        }
        ops
    };
    {
        let mut db = loaded_interned(&rubis, &dump);
        let mut scratch: Vec<(u64, SharedRow)> = Vec::new();
        let mix = mix.clone();
        r.bench(&format!("db/rubis_mix_{DB_MIX_INTERACTIONS}"), move || {
            let mut acc = 0u64;
            for s in &mix {
                if let Ok(summary) = db.execute_into(s, &mut scratch) {
                    acc = acc.wrapping_add(summary.cardinality());
                }
            }
            acc
        });
    }
    {
        let mut db = loaded_naive(&rubis, &dump);
        let rubis = Arc::clone(&rubis);
        let mix = mix.clone();
        r.bench(
            &format!("db/naive/rubis_mix_{DB_MIX_INTERACTIONS}"),
            move || {
                let mut acc = 0u64;
                for s in &mix {
                    if let Ok(res) = db.execute(&rubis, s) {
                        acc = acc.wrapping_add(match res {
                            jade_bench::NaiveQueryResult::Ack { affected, .. } => affected,
                            jade_bench::NaiveQueryResult::Rows(rows) => rows.len() as u64,
                            jade_bench::NaiveQueryResult::Count(n) => n,
                        });
                    }
                }
                acc
            },
        );
    }
}

// ---------------------------------------------------------------------
// Compiled interaction plans: pre-resolved opcode programs vs the
// interpreted prepared-statement engine.
// ---------------------------------------------------------------------

/// Interactions per iteration of the compiled-vs-interpreted mix bench.
const DB_COMPILED_INTERACTIONS: usize = 2_000;

/// The per-request hot path, generation through execution, for a
/// stationary bidding-mix interaction stream: the interpreted side builds
/// `Statement` trees into a recycled `Vec<SqlOp>` and drives the engine's
/// `match` dispatch per statement; the compiled side fills recycled
/// parameter/demand buffers and runs each interaction's pre-resolved
/// program in one fused `execute_plan` call. Both sides replay the
/// identical pre-sampled stream under the same seeds against a pristine
/// copy-on-write clone of the same dataset each iteration, so every
/// sample compares like for like.
fn bench_db_compiled(r: &mut Runner) {
    let rubis = rubis_schema();
    let spec = DatasetSpec::small();
    let mut rng = SimRng::seed_from_u64(0x2B1D);
    let dump = dataset_statements(spec, &mut rng);
    // Pre-sampled stationary stream: neither side pays mix sampling
    // inside the timed region.
    let stream: Vec<usize> = {
        let mix = InteractionMix::bidding();
        let mut rng = SimRng::seed_from_u64(0x51EAD);
        (0..DB_COMPILED_INTERACTIONS)
            .map(|_| mix.sample_index(&mut rng))
            .collect()
    };
    {
        let pristine = loaded_interned(&rubis, &dump);
        let stream = stream.clone();
        r.bench(
            &format!("db/compiled/gen_exec_mix_{DB_COMPILED_INTERACTIONS}"),
            move || {
                let mut db = pristine.clone();
                let mut ks: KeySpace = spec.into();
                let mut rng = SimRng::seed_from_u64(0xF00D);
                let mut scratch: Vec<(u64, SharedRow)> = Vec::new();
                let (mut params, mut demands) = (Vec::new(), Vec::new());
                let mut acc = 0u64;
                for &i in &stream {
                    let plan = generate_plan_compiled_into(i, &mut ks, &mut rng, params, demands);
                    let SqlProgram::Compiled(run) = plan.sql else {
                        unreachable!("compiled generator emits compiled runs")
                    };
                    acc = acc.wrapping_add(db.execute_plan(run.plan, &run.params, &mut scratch));
                    params = run.params;
                    demands = run.demands;
                }
                acc
            },
        );
    }
    {
        let pristine = loaded_interned(&rubis, &dump);
        let stream = stream.clone();
        r.bench(
            &format!("db/interpreted/gen_exec_mix_{DB_COMPILED_INTERACTIONS}"),
            move || {
                let mut db = pristine.clone();
                let mut ks: KeySpace = spec.into();
                let mut rng = SimRng::seed_from_u64(0xF00D);
                let mut scratch: Vec<(u64, SharedRow)> = Vec::new();
                let mut buf: Vec<SqlOp> = Vec::new();
                let mut acc = 0u64;
                for &i in &stream {
                    let plan = generate_plan_into(&INTERACTIONS[i], &mut ks, &mut rng, buf);
                    let SqlProgram::Ops(ops) = plan.sql else {
                        unreachable!("interpreted generator emits statement lists")
                    };
                    for op in &ops {
                        if let Ok(s) = db.execute_into(&op.statement, &mut scratch) {
                            acc = acc.wrapping_add(s.cardinality());
                        }
                    }
                    buf = ops;
                }
                acc
            },
        );
    }
}

// ---------------------------------------------------------------------
// Replication: execute-once delta broadcast vs re-execute-everywhere.
// ---------------------------------------------------------------------

/// RAIDb-1 mirror width for the broadcast bench (fig5's peak DB tier
/// plus one).
const REPL_REPLICAS: usize = 5;
/// Writes in the broadcast mix.
const REPL_MIX_WRITES: usize = 2_000;
/// Recovery-log length ahead of the late joiner.
const REPL_SYNC_WRITES: usize = 100_000;

/// The write statements a RUBiS bidding population issues (reads
/// dropped), `n` of them.
fn rubis_write_mix(n: usize, seed: u64) -> Vec<Arc<Statement>> {
    let spec = DatasetSpec::small();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ks: KeySpace = spec.into();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let t = sample_interaction(&mut rng);
        let plan = generate_plan(t, &mut ks, &mut rng);
        out.extend(
            plan.sql
                .into_ops()
                .into_iter()
                .filter(|op| op.statement.is_write())
                .map(|op| op.statement),
        );
    }
    out.truncate(n);
    out
}

/// The replicated write path in isolation: the delta stack executes each
/// write once on the primary, logs the captured delta (string rendering
/// deferred), and applies the physical delta to the other four mirrors;
/// the naive stack renders the log string eagerly and re-evaluates the
/// statement on all five. Each iteration rebuilds the whole mirror from
/// the same pristine base (an O(#tables) copy-on-write clone), so every
/// sample runs the identical workload against the identical state —
/// without the reset, tables grow with every iteration and the best
/// sample would mostly reflect how much state had accumulated by the
/// time it ran.
fn bench_replication(r: &mut Runner) {
    let rubis = rubis_schema();
    let spec = DatasetSpec::small();
    let mut rng = SimRng::seed_from_u64(0x2B1D);
    let dump = dataset_statements(spec, &mut rng);
    let writes = rubis_write_mix(REPL_MIX_WRITES, 0x5EED);
    {
        let pristine = loaded_interned(&rubis, &dump);
        let schema = Arc::clone(&rubis);
        let writes = writes.clone();
        r.bench(
            &format!("replication/delta/broadcast_write_{REPL_MIX_WRITES}x{REPL_REPLICAS}"),
            move || {
                let mut primary = pristine.clone();
                let mut replicas: Vec<Database> =
                    (1..REPL_REPLICAS).map(|_| pristine.clone()).collect();
                let mut log = RecoveryLog::new(Arc::clone(&schema));
                let mut acc = 0u64;
                for s in &writes {
                    match primary.execute_capture(s) {
                        Ok((summary, delta)) => {
                            acc = acc.wrapping_add(summary.cardinality());
                            let delta = Arc::new(delta);
                            for db in &mut replicas {
                                let _ = db.apply_delta(&delta);
                            }
                            log.append_captured(Arc::clone(s), delta);
                        }
                        Err(_) => {
                            log.append(Arc::clone(s));
                            for db in &mut replicas {
                                let _ = db.execute(s);
                            }
                        }
                    }
                }
                acc.wrapping_add(log.head())
            },
        );
    }
    {
        let pristine = loaded_interned(&rubis, &dump);
        let schema = Arc::clone(&rubis);
        let writes = writes.clone();
        r.bench(
            &format!("replication/naive/broadcast_write_{REPL_MIX_WRITES}x{REPL_REPLICAS}"),
            move || {
                let mut naive =
                    NaiveReplication::new(Arc::clone(&schema), &pristine, REPL_REPLICAS);
                let mut acc = 0u64;
                for s in &writes {
                    acc = acc.wrapping_add(naive.execute_write(s));
                }
                acc.wrapping_add(naive.head())
            },
        );
    }

    // Late joiner: a fresh replica must catch up on a 100k-write log.
    // The delta stack restores the nearest checkpoint snapshot (O(#tables)
    // `Arc` clones) and applies only the delta tail past it; the naive
    // stack re-executes the whole statement history.
    let sync_writes = rubis_write_mix(REPL_SYNC_WRITES, 0xCA7C);
    {
        let base = loaded_interned(&rubis, &dump);
        let mut primary = base.clone();
        let mut log = RecoveryLog::new(Arc::clone(&rubis));
        for s in &sync_writes {
            match primary.execute_capture(s) {
                Ok((_, delta)) => {
                    log.append_captured(Arc::clone(s), Arc::new(delta));
                }
                Err(_) => {
                    log.append(Arc::clone(s));
                }
            }
            if log.snapshot_due() {
                log.install_snapshot(primary.snapshot());
            }
        }
        r.bench(
            &format!("replication/delta/replica_sync_{REPL_SYNC_WRITES}"),
            move || {
                let plan = log.sync_plan(0);
                let mut joiner = match &plan.snapshot {
                    Some((_, snapshot)) => Database::from_snapshot(snapshot),
                    None => base.clone(),
                };
                for entry in &plan.entries {
                    match &entry.delta {
                        Some(delta) => {
                            let _ = joiner.apply_delta(delta);
                        }
                        None => {
                            let _ = joiner.execute(&entry.statement);
                        }
                    }
                }
                joiner.total_rows()
            },
        );
    }
    {
        let base = loaded_interned(&rubis, &dump);
        let mut naive = NaiveReplication::new(Arc::clone(&rubis), &base, 1);
        for s in &sync_writes {
            naive.execute_write(s);
        }
        r.bench(
            &format!("replication/naive/replica_sync_{REPL_SYNC_WRITES}"),
            move || {
                let joiner = naive.sync_replica(&base, 0);
                joiner.total_rows()
            },
        );
    }
}

// ---------------------------------------------------------------------
// Observation plane: the streamed probe tick vs the map-based baseline.
// ---------------------------------------------------------------------

/// Wide-deployment probe: half the pool in each managed tier.
const SENSOR_NODES: usize = 256;
/// Probe ticks per bench iteration.
const SENSOR_TICKS: u64 = 64;
const SENSOR_PERIOD: SimDuration = SimDuration::from_secs(1);
const SENSOR_APP_WINDOW: SimDuration = SimDuration::from_secs(60);
const SENSOR_DB_WINDOW: SimDuration = SimDuration::from_secs(90);

/// Dense spatial average: direct indexing into the per-node sample array.
fn dense_avg(nodes: &[NodeId], samples: &[f64]) -> f64 {
    if nodes.is_empty() {
        0.0
    } else {
        nodes.iter().map(|&n| samples[n.0 as usize]).sum::<f64>() / nodes.len() as f64
    }
}

/// One observation tick over a 256-node pool, streamed vs naive. Each
/// tick samples every node's CPU, refreshes both tier node lists,
/// computes the three spatial averages, feeds the two moving-average
/// sensors, appends to the all-nodes series, reads a 60 s window mean
/// back from it, and stamps every node's heartbeat.
///
/// The streamed side runs the shapes the probe path now uses: a recycled
/// dense sample array indexed by node id, pre-sized sensor rings, a
/// ring-retained series with a cursor-cached window reader, and a dense
/// heartbeat table. The naive side runs the shapes it replaced: fresh
/// node-id `Vec`s and a fresh `BTreeMap` of samples per tick, `VecDeque`
/// moving averages, a keep-all series scanned from scratch for every
/// window read, and a `BTreeMap` heartbeat store.
fn bench_sensor(r: &mut Runner) {
    {
        let mut cm = ClusterManager::homogeneous(SENSOR_NODES, NodeSpec::default(), 64);
        let mut samples: Vec<f64> = Vec::new();
        let mut app_nodes: Vec<NodeId> = Vec::new();
        let mut db_nodes: Vec<NodeId> = Vec::new();
        let mut ma_app = MovingAverage::with_period(SENSOR_APP_WINDOW, SENSOR_PERIOD);
        let mut ma_db = MovingAverage::with_period(SENSOR_DB_WINDOW, SENSOR_PERIOD);
        let mut ts_all = TimeSeries::with_retention(Retention::Ring(256));
        let mut cursor = SeriesCursor::new();
        let mut heartbeat: Vec<Option<SimTime>> = vec![None; SENSOR_NODES];
        let mut now = SimTime::ZERO;
        r.bench(
            &format!("sensor/probe_tick_{SENSOR_NODES}_nodes"),
            move || {
                let mut acc = 0.0f64;
                for _ in 0..SENSOR_TICKS {
                    now += SENSOR_PERIOD;
                    cm.sample_cpus_into(now, &mut samples);
                    app_nodes.clear();
                    app_nodes.extend((0..SENSOR_NODES as u32 / 2).map(NodeId));
                    db_nodes.clear();
                    db_nodes.extend((SENSOR_NODES as u32 / 2..SENSOR_NODES as u32).map(NodeId));
                    let app_avg = dense_avg(&app_nodes, &samples);
                    let db_avg = dense_avg(&db_nodes, &samples);
                    let all_avg = samples.iter().sum::<f64>() / samples.len() as f64;
                    ma_app.record(now, app_avg.clamp(0.0, 1.0));
                    ma_db.record(now, db_avg.clamp(0.0, 1.0));
                    ts_all.record(now, all_avg);
                    for hb in heartbeat.iter_mut() {
                        *hb = Some(now);
                    }
                    let from = SimTime::from_micros(
                        now.as_micros()
                            .saturating_sub(SENSOR_APP_WINDOW.as_micros()),
                    );
                    acc += ts_all
                        .time_weighted_mean_cached(&mut cursor, from, now)
                        .unwrap_or(0.0);
                    acc += ma_app.value().unwrap_or(0.0) + ma_db.value().unwrap_or(0.0);
                }
                black_box(heartbeat.last().copied());
                acc.to_bits()
            },
        );
    }
    {
        let mut cpus: Vec<NaivePsCpu> = (0..SENSOR_NODES)
            .map(|_| NaivePsCpu::new(1.0, EfficiencyCurve::Ideal))
            .collect();
        let mut obs = NaiveObservation::new(SENSOR_APP_WINDOW, SENSOR_DB_WINDOW);
        let mut now = SimTime::ZERO;
        r.bench(
            &format!("sensor/naive/probe_tick_{SENSOR_NODES}_nodes"),
            move || {
                let mut acc = 0.0f64;
                for _ in 0..SENSOR_TICKS {
                    now += SENSOR_PERIOD;
                    let app_nodes: Vec<usize> = (0..SENSOR_NODES / 2).collect();
                    let db_nodes: Vec<usize> = (SENSOR_NODES / 2..SENSOR_NODES).collect();
                    let all_nodes: Vec<usize> = (0..SENSOR_NODES).collect();
                    let mut samples = std::collections::BTreeMap::new();
                    for &n in &all_nodes {
                        samples.insert(n, cpus[n].sample_utilization(now));
                    }
                    let app_avg = NaiveObservation::spatial_avg(&samples, &app_nodes);
                    let db_avg = NaiveObservation::spatial_avg(&samples, &db_nodes);
                    let all_avg = NaiveObservation::spatial_avg(&samples, &all_nodes);
                    obs.observe(now, app_avg, db_avg, all_avg);
                    for &n in &all_nodes {
                        obs.heartbeat.insert(n, now);
                    }
                    let from = SimTime::from_micros(
                        now.as_micros()
                            .saturating_sub(SENSOR_APP_WINDOW.as_micros()),
                    );
                    acc += naive_time_weighted_mean(&obs.cpu_all, from, now).unwrap_or(0.0);
                    acc += obs.app_sensor.value().unwrap_or(0.0)
                        + obs.db_sensor.value().unwrap_or(0.0);
                }
                black_box(obs.heartbeat.len());
                acc.to_bits()
            },
        );
    }
}

// ---------------------------------------------------------------------
// End-to-end: the slab-backed request lifecycle vs the naive stack.
// ---------------------------------------------------------------------

/// Fig. 5's peak client population.
const E2E_FIG5_CLIENTS: u32 = 500;
const E2E_FIG5_HORIZON: SimDuration = SimDuration::from_secs(30);
/// An order of magnitude beyond the paper's scale.
const E2E_5K_CLIENTS: u32 = 5_000;
const E2E_5K_HORIZON: SimDuration = SimDuration::from_secs(10);
/// The `fig5_1m` scenario's peak, pinned constant for the bench.
const E2E_1M_CLIENTS: u32 = 1_000_000;
const E2E_1M_HORIZON: SimDuration = SimDuration::from_secs(5);
/// Probe-heavy scenario: 4x the paper's probe rate.
const E2E_PROBE_PERIOD: SimDuration = SimDuration::from_millis(250);

fn e2e_cfg(clients: u32) -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(clients);
    cfg.seed = 0xE2E;
    cfg
}

/// The million-client scenario at its peak: `fig5_1m`'s hardware and
/// think time with the ramp pinned at a constant million clients on the
/// peak deployment (four replicas per managed tier), so every benchmark
/// second runs at full aggregate-pool pressure.
/// Observation-dominated variant of the Fig. 5 scenario: the paper's
/// managed system at its peak deployment (four replicas per managed
/// tier, twelve nodes so the probe sweeps unallocated machines too)
/// with the probe period cut from 1 s to 250 ms, so measure ticks —
/// spatial CPU averaging, sensor updates, series appends, heartbeats —
/// dominate the event mix.
fn e2e_probe_heavy_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = WorkloadRamp::constant(E2E_FIG5_CLIENTS);
    cfg.jade.probe_period = E2E_PROBE_PERIOD;
    cfg.description.application.replicas = 4;
    cfg.description.database.replicas = 4;
    cfg.nodes = 12;
    cfg.seed = 0xE2E;
    cfg
}

fn e2e_1m_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::million_clients();
    cfg.ramp = WorkloadRamp::constant(E2E_1M_CLIENTS);
    cfg.description.application.replicas = 4;
    cfg.description.database.replicas = 4;
    cfg.seed = 0xE2E;
    cfg
}

/// Wall-clock to simulate one scenario (bootstrap included), full system
/// vs the `NaiveLifecycle` pre-optimization stack at the same client
/// count and horizon. The real system simulates strictly more (the web
/// of management loops, probes, and metrics on top of the request path),
/// so the reported speedups understate the lifecycle win.
fn bench_e2e(r: &mut Runner) {
    for (tag, clients, horizon) in [
        ("fig5_500_clients", E2E_FIG5_CLIENTS, E2E_FIG5_HORIZON),
        ("5k_clients", E2E_5K_CLIENTS, E2E_5K_HORIZON),
    ] {
        r.bench(&format!("e2e/system/{tag}"), move || {
            let out = run_experiment(e2e_cfg(clients), horizon);
            (out.events, out.metrics.counter("requests.completed"))
        });
        r.bench(&format!("e2e/naive/{tag}"), move || {
            NaiveLifecycle::new(clients, 0xE2E).run(horizon)
        });
    }

    // Probe-heavy: same client population as fig5, but with the probe
    // period cut to 250 ms on a wide (4+4 replica, 12 node) deployment.
    // The naive side replays the same probe cadence through the
    // `NaiveObservation` stack (fresh node lists and a `BTreeMap` of
    // samples per tick, `VecDeque` sensors, from-scratch window scans).
    {
        let cfg = e2e_probe_heavy_cfg();
        let think = cfg.think_time;
        r.bench("e2e/system/probe_heavy", move || {
            let out = run_experiment(e2e_probe_heavy_cfg(), E2E_FIG5_HORIZON);
            (out.events, out.metrics.counter("requests.completed"))
        });
        r.bench("e2e/naive/probe_heavy", move || {
            NaiveLifecycle::at_scale(E2E_FIG5_CLIENTS, 0xE2E, think, 1.0, 4, 4)
                .run_with_probes(E2E_FIG5_HORIZON, E2E_PROBE_PERIOD)
        });
    }

    // A million clients: the real system runs them as an aggregate pool
    // ticking over the timer wheel; the naive stack materializes a
    // million emulated clients with one pending think timer each in the
    // `NaiveTimers` heap, and pays `log(1M)` per timer on top of the
    // per-client setup. Same hardware scale on both sides (`fig5_1m`'s
    // speed-20 nodes, four replicas per managed tier, 650 s think time).
    {
        let cfg = e2e_1m_cfg();
        let think = cfg.think_time;
        let speed = cfg.node_spec.cpu_speed;
        r.bench("e2e/system/fig5_1m", move || {
            let out = run_experiment(e2e_1m_cfg(), E2E_1M_HORIZON);
            (out.events, out.metrics.counter("requests.completed"))
        });
        r.bench("e2e/naive/fig5_1m", move || {
            NaiveLifecycle::at_scale(E2E_1M_CLIENTS, 0xE2E, think, speed, 4, 4).run(E2E_1M_HORIZON)
        });
    }
}

/// A ping-pong app measuring raw engine dispatch throughput.
struct PingPong {
    remaining: u64,
}
impl App for PingPong {
    type Msg = ();
    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _dst: Addr, _msg: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_after(SimDuration::from_micros(1), Addr::ROOT, ());
        }
    }
}

fn bench_engine(r: &mut Runner) {
    r.bench("engine/dispatch_100k_events", || {
        let mut eng = Engine::new(PingPong { remaining: 100_000 }, 1);
        eng.schedule(SimTime::ZERO, Addr::ROOT, ());
        eng.run_until(SimTime::MAX);
        eng.events_processed()
    });
}

fn main() {
    let mut r = Runner::new();
    bench_queues(&mut r);
    bench_ps_cpu(&mut r);
    bench_db(&mut r);
    bench_db_compiled(&mut r);
    bench_replication(&mut r);
    bench_sensor(&mut r);
    bench_e2e(&mut r);
    bench_engine(&mut r);

    let ratio = |fast: &str, slow: &str| -> f64 {
        let fast_ns = r.get(fast).map_or(f64::NAN, |c| c.best_ns);
        let slow_ns = r.get(slow).map_or(f64::NAN, |c| c.best_ns);
        slow_ns / fast_ns
    };
    let push_pop = ratio(
        &format!("event_queue/slab/push_pop_{PUSH_POP_N}"),
        &format!("event_queue/naive/push_pop_{PUSH_POP_N}"),
    );
    let cancel = ratio(
        &format!("event_queue/slab/cancel_heavy_{CANCEL_N}"),
        &format!("event_queue/naive/cancel_heavy_{CANCEL_N}"),
    );
    let churn = ratio(
        &format!("event_queue/slab/churn_{CHURN_OPS}"),
        &format!("event_queue/naive/churn_{CHURN_OPS}"),
    );
    let ps_128 = ratio("ps_cpu/submit_drain_128", "ps_cpu/naive/submit_drain_128");
    let ps_512 = ratio("ps_cpu/submit_drain_512", "ps_cpu/naive/submit_drain_512");
    let ps_2048 = ratio("ps_cpu/submit_drain_2048", "ps_cpu/naive/submit_drain_2048");
    let ps_thrash = ratio("ps_cpu/thrashing_512", "ps_cpu/naive/thrashing_512");
    let db_hot = ratio(
        &format!("db/select_by_key_hot_{DB_HOT_SELECTS}"),
        &format!("db/naive/select_by_key_hot_{DB_HOT_SELECTS}"),
    );
    let db_where = ratio(
        &format!("db/select_where_{DB_ROWS}"),
        &format!("db/naive/select_where_{DB_ROWS}"),
    );
    let db_mix = ratio(
        &format!("db/rubis_mix_{DB_MIX_INTERACTIONS}"),
        &format!("db/naive/rubis_mix_{DB_MIX_INTERACTIONS}"),
    );
    let db_compiled = ratio(
        &format!("db/compiled/gen_exec_mix_{DB_COMPILED_INTERACTIONS}"),
        &format!("db/interpreted/gen_exec_mix_{DB_COMPILED_INTERACTIONS}"),
    );
    let repl_bcast = ratio(
        &format!("replication/delta/broadcast_write_{REPL_MIX_WRITES}x{REPL_REPLICAS}"),
        &format!("replication/naive/broadcast_write_{REPL_MIX_WRITES}x{REPL_REPLICAS}"),
    );
    let repl_sync = ratio(
        &format!("replication/delta/replica_sync_{REPL_SYNC_WRITES}"),
        &format!("replication/naive/replica_sync_{REPL_SYNC_WRITES}"),
    );
    let sensor_probe = ratio(
        &format!("sensor/probe_tick_{SENSOR_NODES}_nodes"),
        &format!("sensor/naive/probe_tick_{SENSOR_NODES}_nodes"),
    );
    let e2e_fig5 = ratio("e2e/system/fig5_500_clients", "e2e/naive/fig5_500_clients");
    let e2e_5k = ratio("e2e/system/5k_clients", "e2e/naive/5k_clients");
    let e2e_1m = ratio("e2e/system/fig5_1m", "e2e/naive/fig5_1m");
    let e2e_probe = ratio("e2e/system/probe_heavy", "e2e/naive/probe_heavy");
    println!("\nslab vs naive BinaryHeap+HashSet queue:");
    println!("  push_pop      {push_pop:.2}x");
    println!("  cancel_heavy  {cancel:.2}x");
    println!("  churn         {churn:.2}x");
    println!("virtual-time vs naive scan PS-CPU:");
    println!("  submit_drain_128   {ps_128:.2}x");
    println!("  submit_drain_512   {ps_512:.2}x");
    println!("  submit_drain_2048  {ps_2048:.2}x");
    println!("  thrashing_512      {ps_thrash:.2}x");
    println!("interned+indexed vs naive name-keyed storage engine:");
    println!("  select_by_key_hot  {db_hot:.2}x");
    println!("  select_where       {db_where:.2}x");
    println!("  rubis_mix          {db_mix:.2}x");
    println!("compiled plans vs interpreted prepared statements:");
    println!("  gen_exec_mix       {db_compiled:.2}x");
    println!("execute-once delta broadcast vs re-execute-everywhere mirror:");
    println!("  broadcast_write ({REPL_REPLICAS} replicas)  {repl_bcast:.2}x");
    println!("  replica_sync (late joiner)   {repl_sync:.2}x");
    println!("streamed vs map-based observation plane:");
    println!("  probe_tick_{SENSOR_NODES}_nodes {sensor_probe:.2}x");
    println!("slab lifecycle vs naive end-to-end stack (same scenario):");
    println!("  fig5_500_clients   {e2e_fig5:.2}x");
    println!("  5k_clients         {e2e_5k:.2}x");
    println!("  probe_heavy (250ms probes) {e2e_probe:.2}x");
    println!("aggregate pool + timer wheel vs per-client NaiveTimers stack:");
    println!("  fig5_1m (1M clients) {e2e_1m:.2}x");
    r.write_json_with(
        "kernel",
        "BENCH_kernel.json",
        &[
            ("speedup_push_pop", push_pop),
            ("speedup_cancel_heavy", cancel),
            ("speedup_churn", churn),
            ("speedup_ps_128", ps_128),
            ("speedup_ps_512", ps_512),
            ("speedup_ps_2048", ps_2048),
            ("speedup_ps_thrashing", ps_thrash),
            ("speedup_db_select_hot", db_hot),
            ("speedup_db_select_where", db_where),
            ("speedup_db_rubis_mix", db_mix),
            ("speedup_db_compiled_mix", db_compiled),
            ("speedup_db_broadcast_write", repl_bcast),
            ("speedup_db_replica_sync", repl_sync),
            ("speedup_e2e_fig5", e2e_fig5),
            ("speedup_e2e_5k_clients", e2e_5k),
            ("speedup_e2e_1m_clients", e2e_1m),
            ("speedup_sensor_probe", sensor_probe),
            ("speedup_e2e_probe_heavy", e2e_probe),
        ],
    );
}
