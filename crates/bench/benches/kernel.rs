//! Micro-benchmarks of the discrete-event kernel: event-queue throughput,
//! processor-sharing CPU updates, and end-to-end engine stepping. These
//! bound the cost of every simulated experiment in the repository.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use jade_sim::{Addr, App, Ctx, EfficiencyCurve, Engine, EventQueue, JobId, PsCpu};
use jade_sim::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Reverse order: worst-case heap churn.
                    q.push(SimTime::from_micros((n - i) as u64), i);
                }
                let mut out = 0usize;
                while let Some((_, v)) = q.pop() {
                    out = out.wrapping_add(v);
                }
                black_box(out)
            })
        });
    }
    group.bench_function("cancel_heavy", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let tokens: Vec<_> = (0..1_000)
                .map(|i| q.push(SimTime::from_micros(i), i))
                .collect();
            // Cancel every other timer, like the CPU model re-arming.
            for t in tokens.iter().step_by(2) {
                q.cancel(*t);
            }
            let mut survivors = 0;
            while q.pop().is_some() {
                survivors += 1;
            }
            black_box(survivors)
        })
    });
    group.finish();
}

fn bench_ps_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_cpu");
    for &jobs in &[2usize, 16, 128] {
        group.bench_with_input(BenchmarkId::new("submit_drain", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
                let mut t = SimTime::ZERO;
                for i in 0..jobs {
                    cpu.submit(t, JobId(i as u64), SimDuration::from_millis(5));
                }
                while let Some(next) = cpu.next_completion(t) {
                    t = next;
                    black_box(cpu.collect_completions(t).len());
                }
                black_box(cpu.load())
            })
        });
    }
    group.finish();
}

/// A ping-pong app measuring raw engine dispatch throughput.
struct PingPong {
    remaining: u64,
}
impl App for PingPong {
    type Msg = ();
    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _dst: Addr, _msg: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_after(SimDuration::from_micros(1), Addr::ROOT, ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/dispatch_100k_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(PingPong { remaining: 100_000 }, 1);
            eng.schedule(SimTime::ZERO, Addr::ROOT, ());
            eng.run_until(SimTime::MAX);
            black_box(eng.events_processed())
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_ps_cpu, bench_engine);
criterion_main!(benches);
