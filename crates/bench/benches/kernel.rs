//! Micro-benchmarks of the discrete-event kernel: event-queue throughput
//! (slab-backed vs the naive `BinaryHeap` + `HashSet` baseline it
//! replaced), processor-sharing CPU updates, and end-to-end engine
//! stepping. These bound the cost of every simulated experiment in the
//! repository.
//!
//! `cargo bench --bench kernel` writes `BENCH_kernel.json` with the
//! measured rates and the slab-vs-naive speedups.

use jade_bench::microbench::{black_box, Runner};
use jade_sim::{Addr, App, Ctx, EfficiencyCurve, Engine, EventQueue, JobId, PsCpu};
use jade_sim::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// The event queue the kernel shipped with before the slab rewrite: a
/// `BinaryHeap` with payloads inline plus a `HashSet` of cancelled
/// sequence numbers. Kept here as the benchmark baseline.
struct NaiveQueue<T> {
    heap: BinaryHeap<Reverse<(SimTime, u64, T)>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T: Ord> NaiveQueue<T> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, time: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((time, seq, payload)));
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        while let Some(Reverse((time, seq, payload))) = self.heap.pop() {
            if !self.cancelled.remove(&seq) {
                return Some((time, payload));
            }
        }
        None
    }
}

/// What the engine actually schedules: `(Addr, A::Msg)`, 24 bytes for the
/// system-model app. The baseline carried it inline in every heap entry;
/// the slab queue moves only 24-byte `(time, seq, slot)` records and parks
/// the payload.
type Payload = [u64; 3];

const PUSH_POP_N: usize = 10_000;
const CANCEL_N: u64 = 1_000;
const CHURN_Q: usize = 4_096;
const CHURN_OPS: usize = 20_000;

fn bench_queues(r: &mut Runner) {
    // All queue benchmarks reuse one warm queue across iterations, like
    // the engine does across a run: capacity and recycled slots persist,
    // so the allocator is out of the measurement.

    // Reverse-order pushes: worst-case heap churn.
    {
        let mut q = EventQueue::new();
        r.bench(
            &format!("event_queue/slab/push_pop_{PUSH_POP_N}"),
            move || {
                for i in 0..PUSH_POP_N {
                    let v = i as u64;
                    q.push(SimTime::from_micros((PUSH_POP_N - i) as u64), [v, v, v]);
                }
                let mut out = 0u64;
                while let Some((_, v)) = q.pop() {
                    out = out.wrapping_add(v[0]);
                }
                out
            },
        );
    }
    {
        let mut q = NaiveQueue::new();
        r.bench(
            &format!("event_queue/naive/push_pop_{PUSH_POP_N}"),
            move || {
                for i in 0..PUSH_POP_N {
                    let v = i as u64;
                    q.push(
                        SimTime::from_micros((PUSH_POP_N - i) as u64),
                        [v, v, v] as Payload,
                    );
                }
                let mut out = 0u64;
                while let Some((_, v)) = q.pop() {
                    out = out.wrapping_add(v[0]);
                }
                out
            },
        );
    }

    // Cancel every other timer, like the CPU model re-arming.
    {
        let mut q = EventQueue::new();
        let mut tokens = Vec::new();
        r.bench(
            &format!("event_queue/slab/cancel_heavy_{CANCEL_N}"),
            move || {
                tokens.clear();
                tokens.extend((0..CANCEL_N).map(|i| q.push(SimTime::from_micros(i), [i, i, i])));
                for t in tokens.iter().step_by(2) {
                    q.cancel(*t);
                }
                let mut survivors = 0;
                while q.pop().is_some() {
                    survivors += 1;
                }
                survivors
            },
        );
    }
    {
        let mut q = NaiveQueue::new();
        let mut tokens = Vec::new();
        r.bench(
            &format!("event_queue/naive/cancel_heavy_{CANCEL_N}"),
            move || {
                tokens.clear();
                tokens.extend(
                    (0..CANCEL_N).map(|i| q.push(SimTime::from_micros(i), [i, i, i] as Payload)),
                );
                for t in tokens.iter().step_by(2) {
                    q.cancel(*t);
                }
                let mut survivors = 0;
                while q.pop().is_some() {
                    survivors += 1;
                }
                survivors
            },
        );
    }

    // Steady-state churn: the engine's actual access pattern. A constant
    // population of pending events; every dispatch pops one, schedules a
    // successor, and re-arms a completion timer (cancel + push), exactly
    // like the processor-sharing CPU model does on each arrival. The
    // population persists across iterations (virtual time keeps rising).
    {
        let mut q = EventQueue::new();
        for i in 0..CHURN_Q as u64 {
            q.push(SimTime::from_micros(i), [i, i, i]);
        }
        let mut timer = q.push(SimTime::from_micros(CHURN_Q as u64), [0; 3]);
        r.bench(&format!("event_queue/slab/churn_{CHURN_OPS}"), move || {
            let mut acc = 0u64;
            for i in 0..CHURN_OPS as u64 {
                let (t, v) = q.pop().expect("queue never drains");
                let now = t.as_micros();
                acc = acc.wrapping_add(v[0]);
                q.push(SimTime::from_micros(now + CHURN_Q as u64 + i % 7), v);
                q.cancel(timer);
                timer = q.push(SimTime::from_micros(now + 100), [i, i, i]);
            }
            acc
        });
    }
    {
        let mut q = NaiveQueue::new();
        for i in 0..CHURN_Q as u64 {
            q.push(SimTime::from_micros(i), [i, i, i] as Payload);
        }
        let mut timer = q.push(SimTime::from_micros(CHURN_Q as u64), [0; 3]);
        r.bench(&format!("event_queue/naive/churn_{CHURN_OPS}"), move || {
            let mut acc = 0u64;
            for i in 0..CHURN_OPS as u64 {
                let (t, v) = q.pop().expect("queue never drains");
                let now = t.as_micros();
                acc = acc.wrapping_add(v[0]);
                q.push(SimTime::from_micros(now + CHURN_Q as u64 + i % 7), v);
                q.cancel(timer);
                timer = q.push(SimTime::from_micros(now + 100), [i, i, i]);
            }
            acc
        });
    }
}

fn bench_ps_cpu(r: &mut Runner) {
    for jobs in [2usize, 16, 128] {
        r.bench(&format!("ps_cpu/submit_drain_{jobs}"), || {
            let mut cpu = PsCpu::new(1.0, EfficiencyCurve::Ideal);
            let mut t = SimTime::ZERO;
            for i in 0..jobs {
                cpu.submit(t, JobId(i as u64), SimDuration::from_millis(5));
            }
            while let Some(next) = cpu.next_completion(t) {
                t = next;
                black_box(cpu.collect_completions(t).len());
            }
            cpu.load()
        });
    }
}

/// A ping-pong app measuring raw engine dispatch throughput.
struct PingPong {
    remaining: u64,
}
impl App for PingPong {
    type Msg = ();
    fn handle(&mut self, ctx: &mut Ctx<'_, ()>, _dst: Addr, _msg: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send_after(SimDuration::from_micros(1), Addr::ROOT, ());
        }
    }
}

fn bench_engine(r: &mut Runner) {
    r.bench("engine/dispatch_100k_events", || {
        let mut eng = Engine::new(PingPong { remaining: 100_000 }, 1);
        eng.schedule(SimTime::ZERO, Addr::ROOT, ());
        eng.run_until(SimTime::MAX);
        eng.events_processed()
    });
}

fn main() {
    let mut r = Runner::new();
    bench_queues(&mut r);
    bench_ps_cpu(&mut r);
    bench_engine(&mut r);

    let ratio = |fast: &str, slow: &str| -> f64 {
        let fast_ns = r.get(fast).map_or(f64::NAN, |c| c.best_ns);
        let slow_ns = r.get(slow).map_or(f64::NAN, |c| c.best_ns);
        slow_ns / fast_ns
    };
    let push_pop = ratio(
        &format!("event_queue/slab/push_pop_{PUSH_POP_N}"),
        &format!("event_queue/naive/push_pop_{PUSH_POP_N}"),
    );
    let cancel = ratio(
        &format!("event_queue/slab/cancel_heavy_{CANCEL_N}"),
        &format!("event_queue/naive/cancel_heavy_{CANCEL_N}"),
    );
    let churn = ratio(
        &format!("event_queue/slab/churn_{CHURN_OPS}"),
        &format!("event_queue/naive/churn_{CHURN_OPS}"),
    );
    println!("\nslab vs naive BinaryHeap+HashSet queue:");
    println!("  push_pop      {push_pop:.2}x");
    println!("  cancel_heavy  {cancel:.2}x");
    println!("  churn         {churn:.2}x");
    r.write_json_with(
        "kernel",
        "BENCH_kernel.json",
        &[
            ("speedup_push_pop", push_pop),
            ("speedup_cancel_heavy", cancel),
            ("speedup_churn", churn),
        ],
    );
}
