//! End-to-end benchmark: how fast the full managed experiment simulates.
//! One sample = 300 virtual seconds of the complete stack (clients → PLB →
//! Tomcat → C-JDBC → MySQL, probes, control loops) at the Table-1 medium
//! load.

use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade_bench::microbench::Runner;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn main() {
    let mut r = Runner::new();
    r.bench("experiment/managed_300s_80_clients", || {
        let mut cfg = SystemConfig::paper_managed();
        cfg.ramp = WorkloadRamp::constant(80);
        let out = run_experiment(cfg, SimDuration::from_secs(300));
        out.app.stats.total_completed()
    });
    r.bench("experiment/unmanaged_300s_80_clients", || {
        let mut cfg = SystemConfig::paper_unmanaged();
        cfg.ramp = WorkloadRamp::constant(80);
        let out = run_experiment(cfg, SimDuration::from_secs(300));
        out.app.stats.total_completed()
    });
    r.write_json("experiment", "results/BENCH_experiment.json");
}
