//! End-to-end benchmark: how fast the full managed experiment simulates.
//! One sample = 300 virtual seconds of the complete stack (clients → PLB →
//! Tomcat → C-JDBC → MySQL, probes, control loops) at the Table-1 medium
//! load.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use jade::config::SystemConfig;
use jade::experiment::run_experiment;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn bench_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("managed_300s_80_clients", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::paper_managed();
            cfg.ramp = WorkloadRamp::constant(80);
            let out = run_experiment(cfg, SimDuration::from_secs(300));
            black_box(out.app.stats.total_completed())
        })
    });
    group.bench_function("unmanaged_300s_80_clients", |b| {
        b.iter(|| {
            let mut cfg = SystemConfig::paper_unmanaged();
            cfg.ramp = WorkloadRamp::constant(80);
            let out = run_experiment(cfg, SimDuration::from_secs(300));
            black_box(out.app.stats.total_completed())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_experiment);
criterion_main!(benches);
