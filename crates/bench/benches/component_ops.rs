//! Micro-benchmarks of the management layer: the cost of uniform
//! management operations (the paper's qualitative claim is that these are
//! *cheap and scriptable*, unlike manual procedures), including wrapper
//! reflection onto legacy configuration files.

use jade_bench::microbench::{black_box, Runner};
use jade_cluster::{ClusterManager, Network, NodeId, NodeSpec};
use jade_cluster::{SoftwareInstallationService, SoftwareRepository};
use jade_fractal::{InterfaceDecl, NullWrapper, Registry};
use jade_tiers::wrappers::{ApacheWrapper, TomcatWrapper};
use jade_tiers::LegacyLayer;

fn fresh_legacy(nodes: usize) -> LegacyLayer {
    let cluster = ClusterManager::homogeneous(nodes, NodeSpec::default(), 64);
    let sis = SoftwareInstallationService::new(SoftwareRepository::j2ee_catalogue());
    LegacyLayer::new(cluster, Network::lan_100mbps(), sis)
}

fn bench_registry_ops(r: &mut Runner) {
    r.bench("registry/create_bind_start_stop", || {
        let mut reg: Registry<()> = Registry::new();
        let mut env = ();
        let front = reg.new_primitive(
            "front",
            vec![
                InterfaceDecl::server("http", "http"),
                InterfaceDecl::client("backend", "http"),
            ],
            Box::new(NullWrapper),
        );
        let back = reg.new_primitive(
            "back",
            vec![InterfaceDecl::server("http", "http")],
            Box::new(NullWrapper),
        );
        reg.bind(&mut env, front, "backend", back, "http").unwrap();
        reg.start(&mut env, front).unwrap();
        reg.stop(&mut env, front).unwrap();
        reg.journal_len()
    });
    for n in [10usize, 100] {
        let mut reg: Registry<()> = Registry::new();
        let root = reg.new_composite("root", vec![]);
        for i in 0..n {
            let c = reg.new_primitive(&format!("c{i}"), vec![], Box::new(NullWrapper));
            reg.add_child(root, c).unwrap();
        }
        r.bench(&format!("registry/introspect_tree_{n}"), || {
            black_box(reg.render_tree(root).len())
        });
    }
}

/// The §5.1 reconfiguration as a benchmark: the four Jade operations
/// including the wrapper's `worker.properties` regeneration.
fn bench_qualitative_reconfig(r: &mut Runner) {
    let mut legacy = fresh_legacy(3);
    for (n, pkg) in [(0u32, "apache"), (1, "tomcat"), (2, "tomcat")] {
        legacy
            .sis
            .install(&mut legacy.cluster, NodeId(n), pkg)
            .unwrap();
    }
    let apache_s = legacy.create_apache("Apache1", NodeId(0));
    let t1_s = legacy.create_tomcat("Tomcat1", NodeId(1));
    let t2_s = legacy.create_tomcat("Tomcat2", NodeId(2));
    let mut reg: Registry<LegacyLayer> = Registry::new();
    let apache = reg.new_primitive(
        "Apache1",
        vec![
            InterfaceDecl::server("http", "http"),
            InterfaceDecl::optional_client("ajp-itf", "ajp"),
        ],
        Box::new(ApacheWrapper { server: apache_s }),
    );
    let t1 = reg.new_primitive(
        "Tomcat1",
        vec![InterfaceDecl::server("ajp", "ajp")],
        Box::new(TomcatWrapper { server: t1_s }),
    );
    let t2 = reg.new_primitive(
        "Tomcat2",
        vec![InterfaceDecl::server("ajp", "ajp")],
        Box::new(TomcatWrapper { server: t2_s }),
    );
    for (comp, sid) in [(apache, apache_s), (t1, t1_s), (t2, t2_s)] {
        reg.set_attr(&mut legacy, comp, "server-id", sid.0 as i64)
            .unwrap();
    }
    reg.bind(&mut legacy, apache, "ajp-itf", t1, "ajp").unwrap();
    reg.start(&mut legacy, apache).unwrap();
    let mut target = t2;
    let mut other = t1;
    r.bench("reconfig/jade_rebind_apache", || {
        // stop / unbind / bind / start — then swap back for the next
        // iteration.
        reg.stop(&mut legacy, apache).unwrap();
        reg.unbind(&mut legacy, apache, "ajp-itf", None).unwrap();
        reg.bind(&mut legacy, apache, "ajp-itf", target, "ajp")
            .unwrap();
        reg.start(&mut legacy, apache).unwrap();
        std::mem::swap(&mut target, &mut other);
        legacy.configs.write_count()
    });
}

fn main() {
    let mut r = Runner::new();
    bench_registry_ops(&mut r);
    bench_qualitative_reconfig(&mut r);
    r.write_json("component_ops", "results/BENCH_component_ops.json");
}
