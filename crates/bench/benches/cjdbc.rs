//! Micro-benchmarks of the C-JDBC substrate: read-scheduling policies,
//! write broadcast, and recovery-log replay scaling (the state
//! reconciliation cost that dominates how long a new database backend
//! takes to join — paper §4.1).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use jade_sim::SimRng;
use jade_tiers::cjdbc::{CjdbcController, ReadPolicy};
use jade_tiers::sql::{row, Statement, Value};
use jade_tiers::storage::Database;
use jade_tiers::ServerId;

fn controller(n: u32, policy: ReadPolicy) -> CjdbcController {
    let mut c = CjdbcController::new(policy);
    for i in 0..n {
        let id = ServerId(i);
        c.register_backend(id);
        c.begin_enable(id).unwrap();
        c.finish_replay(id).unwrap();
    }
    c
}

fn write_stmt(i: i64) -> Statement {
    Statement::Insert {
        table: "t".into(),
        row: row(&[("a", Value::Int(i))]),
    }
}

fn bench_read_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cjdbc_read_routing");
    for policy in [
        ReadPolicy::RoundRobin,
        ReadPolicy::Random,
        ReadPolicy::LeastPending,
    ] {
        group.bench_with_input(
            BenchmarkId::new("route_1k", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut ctrl = controller(3, policy);
                let mut rng = SimRng::seed_from_u64(7);
                b.iter(|| {
                    let mut last = ServerId(0);
                    for _ in 0..1_000 {
                        let picked = ctrl.route_read(&mut rng).unwrap();
                        ctrl.note_complete(picked);
                        last = picked;
                    }
                    black_box(last)
                })
            },
        );
    }
    group.finish();
}

fn bench_write_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("cjdbc_write_broadcast");
    for &backends in &[1u32, 3] {
        group.bench_with_input(
            BenchmarkId::new("broadcast_100", backends),
            &backends,
            |b, &backends| {
                b.iter(|| {
                    let mut ctrl = controller(backends, ReadPolicy::RoundRobin);
                    for i in 0..100 {
                        let (_, targets) = ctrl.route_write(write_stmt(i)).unwrap();
                        for t in targets {
                            ctrl.note_complete(t);
                        }
                    }
                    black_box(ctrl.recovery_log().head())
                })
            },
        );
    }
    group.finish();
}

fn bench_recovery_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_log_replay");
    for &backlog in &[100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("join_after", backlog), &backlog, |b, &backlog| {
            b.iter_with_setup(
                || {
                    let mut ctrl = controller(1, ReadPolicy::RoundRobin);
                    ctrl.route_write(Statement::CreateTable { table: "t".into() })
                        .unwrap();
                    for i in 0..backlog {
                        ctrl.route_write(write_stmt(i as i64)).unwrap();
                    }
                    ctrl.register_backend(ServerId(9));
                    (ctrl, Database::new())
                },
                |(mut ctrl, mut db)| {
                    let batch = ctrl.begin_enable(ServerId(9)).unwrap();
                    for entry in &batch {
                        let _ = db.execute(&entry.statement);
                    }
                    assert!(ctrl.finish_replay(ServerId(9)).unwrap().is_none());
                    black_box(db.total_rows())
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_policies, bench_write_broadcast, bench_recovery_replay);
criterion_main!(benches);
