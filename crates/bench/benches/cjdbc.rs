//! Micro-benchmarks of the C-JDBC substrate: read-scheduling policies,
//! write broadcast, and recovery-log replay scaling (the state
//! reconciliation cost that dominates how long a new database backend
//! takes to join — paper §4.1).

use jade_bench::microbench::{black_box, Runner};
use jade_sim::SimRng;
use jade_tiers::cjdbc::{CjdbcController, ReadPolicy};
use jade_tiers::sql::{Schema, Statement, Value};
use jade_tiers::storage::Database;
use jade_tiers::ServerId;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder().table("t", &["a"]).build()
}

fn controller(n: u32, policy: ReadPolicy) -> CjdbcController {
    let mut c = CjdbcController::new(policy, schema());
    for i in 0..n {
        let id = ServerId(i);
        c.register_backend(id);
        c.begin_enable(id).unwrap();
        c.finish_replay(id).unwrap();
    }
    c
}

fn write_stmt(i: i64) -> Arc<Statement> {
    Arc::new(schema().insert("t", &[("a", Value::Int(i))]))
}

fn bench_read_policies(r: &mut Runner) {
    for policy in [
        ReadPolicy::RoundRobin,
        ReadPolicy::Random,
        ReadPolicy::LeastPending,
    ] {
        let mut ctrl = controller(3, policy);
        let mut rng = SimRng::seed_from_u64(7);
        r.bench(&format!("cjdbc_read_routing/route_1k_{policy:?}"), || {
            let mut last = ServerId(0);
            for _ in 0..1_000 {
                let picked = ctrl.route_read(&mut rng).unwrap();
                ctrl.note_complete(picked);
                last = picked;
            }
            last
        });
    }
}

fn bench_write_broadcast(r: &mut Runner) {
    for backends in [1u32, 3] {
        r.bench(
            &format!("cjdbc_write_broadcast/broadcast_100_{backends}"),
            || {
                let mut ctrl = controller(backends, ReadPolicy::RoundRobin);
                for i in 0..100 {
                    let (_, targets) = ctrl.route_write(write_stmt(i)).unwrap();
                    for t in targets {
                        ctrl.note_complete(t);
                    }
                }
                black_box(ctrl.recovery_log().head());
            },
        );
    }
}

fn bench_recovery_replay(r: &mut Runner) {
    // Each iteration builds the backlog and replays it into a joining
    // backend; the build is part of the measured time (the replay path —
    // batch extraction plus statement re-execution — dominates).
    for backlog in [100usize, 1_000, 10_000] {
        r.bench(&format!("recovery_log_replay/join_after_{backlog}"), || {
            let mut ctrl = controller(1, ReadPolicy::RoundRobin);
            ctrl.route_write(Arc::new(schema().create_table("t")))
                .unwrap();
            for i in 0..backlog {
                ctrl.route_write(write_stmt(i as i64)).unwrap();
            }
            ctrl.register_backend(ServerId(9));
            let mut db = Database::new(schema());
            let plan = ctrl.begin_enable(ServerId(9)).unwrap();
            for entry in &plan.entries {
                let _ = db.execute(&entry.statement);
            }
            assert!(ctrl.finish_replay(ServerId(9)).unwrap().is_none());
            db.total_rows()
        });
    }
}

fn main() {
    let mut r = Runner::new();
    bench_read_policies(&mut r);
    bench_write_broadcast(&mut r);
    bench_recovery_replay(&mut r);
    r.write_json("cjdbc", "results/BENCH_cjdbc.json");
}
