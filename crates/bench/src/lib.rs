//! # jade-bench — figure and table regeneration harness
//!
//! One binary per experiment of the paper's evaluation (§5):
//!
//! | Binary      | Reproduces |
//! |-------------|------------|
//! | `reconfig`  | §5.1 qualitative comparison (ops + config writes)   |
//! | `fig5`      | Figure 5: replica counts under the client ramp      |
//! | `fig5_1m`   | Figure 5 rescaled to a million aggregate clients    |
//! | `fig6`      | Figure 6: database-tier CPU, managed vs unmanaged   |
//! | `fig7`      | Figure 7: application-tier CPU, managed vs unmanaged|
//! | `fig8`      | Figure 8: response time without Jade                |
//! | `fig9`      | Figure 9: response time with Jade                   |
//! | `table1`    | Table 1: intrusivity of the management layer        |
//! | `figures`   | All of the above, writing TSV series to `results/`  |
//! | `calibrate` | The paper's threshold-calibration benchmarks        |
//! | `ablations` | Design-choice ablations (DESIGN.md §5)              |
//! | `rubis_report` | RUBiS's per-interaction statistics table         |
//! | `run_experiment` | General experiment CLI (see `--help`)          |
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the mechanisms:
//! component-model operations, C-JDBC routing/replay, the event kernel,
//! and ablations of the design knobs called out in DESIGN.md.

#![forbid(unsafe_code)]

pub mod cli;
pub mod harness;
pub mod microbench;
pub mod reference;

pub use harness::{Harness, RunRecord, RunResult, RunSpec, HARNESS_USAGE};
pub use reference::{
    naive_time_weighted_mean, naive_value_at, NaiveDatabase, NaiveLifecycle, NaiveMovingAverage,
    NaiveObservation, NaivePsCpu, NaiveQueryResult, NaiveReplication, NaiveRow, NaiveTimers,
};

use jade::experiment::ExperimentOutput;
use jade::system::ManagedTier;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Formats a `(t, v)` series as TSV.
pub fn series_tsv(series: &[(f64, f64)]) -> String {
    let mut out = String::with_capacity(series.len() * 16);
    out.push_str("# time_s\tvalue\n");
    for (t, v) in series {
        let _ = writeln!(out, "{t:.1}\t{v:.4}");
    }
    out
}

/// Writes a TSV series under `results/`.
pub fn write_series(name: &str, series: &[(f64, f64)]) {
    let dir = Path::new("results");
    let _ = fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.tsv"));
    if fs::write(&path, series_tsv(series)).is_ok() {
        println!("  wrote {}", path.display());
    }
}

/// Renders a small ASCII time-series chart (terminal figures).
pub fn ascii_chart(title: &str, series: &[(f64, f64)], height: usize, width: usize) -> String {
    let mut out = format!("## {title}\n");
    if series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let t_max = series.last().map(|&(t, _)| t).unwrap_or(1.0).max(1e-9);
    let v_max = series
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max)
        .max(1e-9);
    // Downsample into `width` columns (column max, so spikes stay visible).
    let mut cols = vec![0.0f64; width];
    for &(t, v) in series {
        let c = ((t / t_max) * (width as f64 - 1.0)) as usize;
        cols[c] = cols[c].max(v);
    }
    for row in (0..height).rev() {
        let threshold = v_max * (row as f64 + 0.5) / height as f64;
        let label = if row == height - 1 {
            format!("{v_max:9.2} |")
        } else if row == 0 {
            format!("{:9.2} |", 0.0)
        } else {
            "          |".to_owned()
        };
        out.push_str(&label);
        for &c in &cols {
            out.push(if c >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "          +{}\n           0s{:>width$.0}s",
        "-".repeat(width),
        t_max,
        width = width - 2
    );
    out
}

/// Prints the replica-transition table of a managed run (the narrative of
/// Figure 5's caption).
pub fn print_replica_transitions(out: &ExperimentOutput) {
    println!("replica transitions (time, tier, count, clients at that time):");
    let clients = out.series("clients");
    let client_at = |t: f64| -> f64 {
        clients
            .iter()
            .take_while(|&&(ct, _)| ct <= t)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    for tier in [ManagedTier::Database, ManagedTier::Application] {
        for (t, v) in out.replica_steps(tier) {
            println!(
                "  t={t:7.1}s  {tier:?}  -> {v:.0} replicas  (~{:.0} clients)",
                client_at(t)
            );
        }
    }
}

/// Compact run summary shared by the figure binaries.
pub fn print_run_summary(label: &str, out: &ExperimentOutput) {
    println!(
        "{label}: {} requests completed, {} failed, mean latency {:.0} ms, throughput {:.1} req/s, \
         {} events simulated",
        out.app.stats.total_completed(),
        out.app.stats.total_failed(),
        out.mean_latency_ms(),
        out.throughput(),
        out.events
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_roundtrip() {
        let tsv = series_tsv(&[(0.0, 1.0), (10.0, 2.5)]);
        assert!(tsv.contains("0.0\t1.0000"));
        assert!(tsv.contains("10.0\t2.5000"));
    }

    #[test]
    fn ascii_chart_renders() {
        let chart = ascii_chart("test", &[(0.0, 0.0), (50.0, 1.0), (100.0, 0.5)], 5, 40);
        assert!(chart.contains("## test"));
        assert!(chart.contains('#'));
    }

    #[test]
    fn ascii_chart_handles_empty() {
        assert!(ascii_chart("e", &[], 5, 40).contains("no data"));
    }
}
