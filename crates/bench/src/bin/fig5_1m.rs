//! Figure 5 at production scale: a million emulated clients.
//!
//! Runs `SystemConfig::million_clients()` — the paper's Figure 5 scenario
//! consistently rescaled (population ×2000, think time ×100, node speed
//! ×20, manager time constants and ramp compressed ×4) — and prints the
//! replica staircase. The client population is driven by the aggregate
//! pool over the hierarchical timer wheel, which is what makes a
//! million-client run finish in seconds of wall clock; see
//! EXPERIMENTS.md ("A million clients").
//!
//! Expected shape: the same staircase as Figure 5, one level up — the
//! application tier scales 1→2→3 and back, the database tier 1→2→3→4 and
//! back, with the failure burst confined to the mid-ramp reconfiguration
//! transient and none at the million-client plateau.

use jade::config::SystemConfig;
use jade::system::ManagedTier;
use jade_bench::{ascii_chart, print_replica_transitions, write_series, Harness, RunSpec};
use jade_sim::SimDuration;

fn main() {
    println!("=== Figure 5 at 1M clients: aggregate pool over the timer wheel ===");
    let harness = Harness::from_env();
    let results = harness.run(vec![RunSpec::new(
        "managed run (1M clients)",
        SystemConfig::million_clients(),
        SimDuration::from_secs(800),
    )]);
    harness.write_manifest("fig5_1m", &results);
    Harness::print_record(&results[0].record);
    let out = &results[0].out;
    print_replica_transitions(out);

    let db = out.series("replicas.db");
    let app = out.series("replicas.app");
    println!("{}", ascii_chart("# of database backends", &db, 8, 100));
    println!("{}", ascii_chart("# of application servers", &app, 8, 100));
    write_series("fig5_1m_replicas_db", &db);
    write_series("fig5_1m_replicas_app", &app);
    write_series("fig5_1m_clients", &out.series("clients"));

    let peak_db = out.max_replicas(ManagedTier::Database);
    let peak_app = out.max_replicas(ManagedTier::Application);
    println!("peak replicas: database={peak_db}, application={peak_app}");
    println!(
        "final replicas: database={}, application={}",
        out.app.running_replicas(ManagedTier::Database),
        out.app.running_replicas(ManagedTier::Application)
    );
    let completed = out.metrics.counter("requests.completed");
    let failed = out.metrics.counter("requests.failed");
    println!(
        "requests: completed={completed}, failed={failed} ({:.2}% of total)",
        100.0 * failed as f64 / (completed + failed).max(1) as f64
    );
    println!("\nreconfiguration journal:");
    for (t, line) in &out.app.reconfig_log {
        println!("  [{t}] {line}");
    }
}
