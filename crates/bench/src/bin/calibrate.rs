//! The paper's threshold-calibration procedure (§4.2, §5.2): "the
//! thresholds of the self-optimization manager have been determined
//! manually with some benchmarks … adjusted so that the reconfigurations
//! are triggered at appropriate moments".
//!
//! This harness reproduces those benchmarks: it holds the *unmanaged*
//! system at a grid of constant client loads and reports the steady-state
//! CPU of each tier and the mean response time, from which the saturation
//! points — and hence sensible thresholds — can be read off. Levels run
//! in parallel through the shared harness (one engine per worker).

use jade::config::SystemConfig;
use jade_bench::{Harness, RunSpec};
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn main() {
    println!("=== Threshold calibration benchmarks (unmanaged, 1 Tomcat + 1 MySQL) ===");
    let harness = Harness::from_env();
    let levels: Vec<u32> = vec![40, 80, 120, 160, 200, 240, 280, 320];
    let specs = levels
        .iter()
        .enumerate()
        .map(|(i, &clients)| {
            let mut cfg = SystemConfig::paper_unmanaged();
            cfg.ramp = WorkloadRamp::constant(clients);
            cfg.seed = 1000 + clients as u64;
            // Each load level is its own comparison group.
            RunSpec::new(
                format!("{clients} clients"),
                cfg,
                SimDuration::from_secs(420),
            )
            .on_stream(i as u64)
        })
        .collect();
    let results = harness.run(specs);
    harness.write_manifest("calibrate", &results);

    println!("clients  cpu.app  cpu.db   resp_ms  throughput");
    for (clients, result) in levels.iter().zip(&results) {
        let out = &result.out;
        let cpu_app = out.series_mean("cpu.app", 120.0, 420.0);
        let cpu_db = out.series_mean("cpu.db", 120.0, 420.0);
        let (tp, rt, _, _) = out.intrusivity_row(120.0, 420.0);
        println!("{clients:7}  {cpu_app:7.3}  {cpu_db:7.3}  {rt:7.0}  {tp:9.1}");
    }

    // Read off the saturation points the way the paper's admins did.
    let db_sat = levels
        .iter()
        .zip(&results)
        .find(|(_, r)| r.out.series_mean("cpu.db", 120.0, 420.0) > 0.9)
        .map(|(&c, _)| c);
    println!(
        "\ndatabase tier saturates around {} clients; with the default max threshold (0.75) the \
         manager reconfigures *before* saturation, keeping response times acceptable (paper: \
         \"the maximum thresholds have been determined so that the response time for clients' \
         requests remains acceptable when the reconfigurations start\")",
        db_sat.map_or("n/a".to_owned(), |c| c.to_string())
    );
}
