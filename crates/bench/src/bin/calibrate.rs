//! The paper's threshold-calibration procedure (§4.2, §5.2): "the
//! thresholds of the self-optimization manager have been determined
//! manually with some benchmarks … adjusted so that the reconfigurations
//! are triggered at appropriate moments".
//!
//! This harness reproduces those benchmarks: it holds the *unmanaged*
//! system at a grid of constant client loads and reports the steady-state
//! CPU of each tier and the mean response time, from which the saturation
//! points — and hence sensible thresholds — can be read off. Runs execute
//! in parallel (one engine per thread).

use jade::config::SystemConfig;
use jade::experiment::{run_experiment, ExperimentOutput};
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;

fn run_level(clients: u32) -> (u32, ExperimentOutput) {
    let mut cfg = SystemConfig::paper_unmanaged();
    cfg.ramp = WorkloadRamp::constant(clients);
    cfg.seed = 1000 + clients as u64;
    (clients, run_experiment(cfg, SimDuration::from_secs(420)))
}

fn main() {
    println!("=== Threshold calibration benchmarks (unmanaged, 1 Tomcat + 1 MySQL) ===");
    let levels: Vec<u32> = vec![40, 80, 120, 160, 200, 240, 280, 320];
    let mut rows: Vec<(u32, ExperimentOutput)> = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = levels
            .iter()
            .map(|&c| s.spawn(move |_| run_level(c)))
            .collect();
        for h in handles {
            rows.push(h.join().expect("calibration run"));
        }
    })
    .expect("calibration threads");
    rows.sort_by_key(|&(c, _)| c);

    println!("clients  cpu.app  cpu.db   resp_ms  throughput");
    for (clients, out) in &rows {
        let cpu_app = out.series_mean("cpu.app", 120.0, 420.0);
        let cpu_db = out.series_mean("cpu.db", 120.0, 420.0);
        let (tp, rt, _, _) = out.intrusivity_row(120.0, 420.0);
        println!("{clients:7}  {cpu_app:7.3}  {cpu_db:7.3}  {rt:7.0}  {tp:9.1}");
    }

    // Read off the saturation points the way the paper's admins did.
    let db_sat = rows
        .iter()
        .find(|(_, out)| out.series_mean("cpu.db", 120.0, 420.0) > 0.9)
        .map(|&(c, _)| c);
    println!(
        "\ndatabase tier saturates around {} clients; with the default max threshold (0.75) the \
         manager reconfigures *before* saturation, keeping response times acceptable (paper: \
         \"the maximum thresholds have been determined so that the response time for clients' \
         requests remains acceptable when the reconfigurations start\")",
        db_sat.map_or("n/a".to_owned(), |c| c.to_string())
    );
}
