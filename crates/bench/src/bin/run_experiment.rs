//! General experiment runner: configure a managed-system run from the
//! command line, print the outcome and (optionally) dump every metric
//! series as TSV.
//!
//! ```sh
//! cargo run --release -p jade-bench --bin run_experiment -- \
//!     --clients 260 --duration 600 --self-repair --out results/my_run
//! ```

use jade::experiment::run_experiment_with;
use jade::system::ManagedTier;
use jade_bench::cli::{parse_args, CliRun};
use jade_bench::{print_replica_transitions, print_run_summary};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = argv.iter().map(String::as_str).collect();
    let CliRun {
        cfg,
        duration,
        out_prefix,
        trace,
    } = match parse_args(args, |path| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "running '{}' for {duration} of virtual time (seed {}, {} nodes, jade {})",
        cfg.description.name,
        cfg.seed,
        cfg.nodes,
        if cfg.jade.managed { "on" } else { "off" },
    );
    let out = run_experiment_with(cfg, duration, |engine| {
        if trace {
            engine.set_tracer(jade_sim::Tracer::enabled(500, jade_sim::TraceLevel::Info));
        }
    });
    print_run_summary("result", &out);
    println!(
        "final replicas: application={}, database={}; nodes allocated={}",
        out.app.running_replicas(ManagedTier::Application),
        out.app.running_replicas(ManagedTier::Database),
        out.app.allocated_nodes()
    );
    print_replica_transitions(&out);
    if !out.app.reconfig_log.is_empty() {
        println!("reconfiguration journal:");
        for (t, line) in &out.app.reconfig_log {
            println!("  [{t}] {line}");
        }
    }
    if let Some(prefix) = out_prefix {
        for name in out.metrics.series_names() {
            let series: Vec<(f64, f64)> = out
                .metrics
                .series(name)
                .map(|s| {
                    s.points()
                        .iter()
                        .map(|&(t, v)| (t.as_secs_f64(), v))
                        .collect()
                })
                .unwrap_or_default();
            let path = format!("{prefix}_{}.tsv", name.replace('.', "_"));
            if std::fs::write(&path, jade_bench::series_tsv(&series)).is_ok() {
                println!("  wrote {path}");
            }
        }
    }
    if trace {
        println!(
            "management-plane trace (last {} events):",
            out.tracer.events().count()
        );
        print!("{}", out.tracer.render());
    }
    ExitCode::SUCCESS
}
