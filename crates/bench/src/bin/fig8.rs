//! Figure 8: "Response time without Jade".
//!
//! The unmanaged system under the 80 → 500 → 80 ramp: as the database
//! saturates and thrashes, client latency climbs without bound (the paper
//! reports a 10.42 s run-wide average with peaks in the hundreds of
//! seconds), recovering only when the load drops.

use jade::config::SystemConfig;
use jade_bench::{ascii_chart, write_series, Harness, RunSpec};
use jade_sim::SimDuration;

fn main() {
    println!("=== Figure 8: response time without Jade ===");
    let harness = Harness::from_env();
    let results = harness.run(vec![RunSpec::new(
        "unmanaged",
        SystemConfig::paper_unmanaged(),
        SimDuration::from_secs(3000),
    )]);
    harness.write_manifest("fig8", &results);
    Harness::print_record(&results[0].record);
    let out = &results[0].out;

    let latency: Vec<(f64, f64)> = out
        .app
        .stats
        .latency_series()
        .into_iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();
    let workload = out.series("clients");
    println!("{}", ascii_chart("Latency (ms)", &latency, 10, 100));
    println!("{}", ascii_chart("Workload (# clients)", &workload, 5, 100));
    write_series("fig8_latency_ms", &latency);
    write_series("fig8_workload", &workload);

    let mean = out.mean_latency_ms();
    let peak = latency.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    println!(
        "mean latency {:.2} s (paper: 10.42 s), peak {:.1} s (paper figure: up to ~300 s)",
        mean / 1e3,
        peak / 1e3
    );
}
