//! Figure 5: "Dynamically adjusted number of replicas".
//!
//! Runs the paper's evaluation scenario — 80 → 500 → 80 emulated clients
//! at ±21 clients/minute against the managed J2EE system — and prints the
//! number of database backends and application servers over time.
//!
//! Expected shape (paper §5.2): the database tier scales 1→2→3 during the
//! ramp-up, then the application tier scales 1→2 near the peak; on the way
//! down the application server is released first, then database backends.

use jade::config::SystemConfig;
use jade::system::ManagedTier;
use jade_bench::{ascii_chart, print_replica_transitions, write_series, Harness, RunSpec};
use jade_sim::SimDuration;

fn main() {
    println!("=== Figure 5: dynamically adjusted number of replicas ===");
    let harness = Harness::from_env();
    let results = harness.run(vec![RunSpec::new(
        "managed run",
        SystemConfig::paper_managed(),
        SimDuration::from_secs(3000),
    )]);
    harness.write_manifest("fig5", &results);
    Harness::print_record(&results[0].record);
    let out = &results[0].out;
    print_replica_transitions(out);

    let db = out.series("replicas.db");
    let app = out.series("replicas.app");
    println!("{}", ascii_chart("# of database backends", &db, 8, 100));
    println!("{}", ascii_chart("# of application servers", &app, 8, 100));
    write_series("fig5_replicas_db", &db);
    write_series("fig5_replicas_app", &app);
    write_series("fig5_clients", &out.series("clients"));

    let peak_db = out.max_replicas(ManagedTier::Database);
    let peak_app = out.max_replicas(ManagedTier::Application);
    println!("peak replicas: database={peak_db} (paper: 3), application={peak_app} (paper: 2)");
    println!(
        "final replicas: database={}, application={}",
        out.app.running_replicas(ManagedTier::Database),
        out.app.running_replicas(ManagedTier::Application)
    );
    println!("\nreconfiguration journal:");
    for (t, line) in &out.app.reconfig_log {
        println!("  [{t}] {line}");
    }
}
