//! Figure 7: "Behavior of the application tier".
//!
//! Same comparison as Figure 6 for the Tomcat tier. The paper's key
//! observation: in the unmanaged run the application tier's CPU stays
//! *moderate* even at peak load, because the saturated database is the
//! bottleneck — "the application servers spend most of the time waiting
//! for the database".

use jade::config::SystemConfig;
use jade_bench::{ascii_chart, write_series, Harness, RunSpec};
use jade_sim::SimDuration;

fn main() {
    println!("=== Figure 7: behavior of the application tier ===");
    let harness = Harness::from_env();
    let managed_cfg = SystemConfig::paper_managed();
    let app_loop = managed_cfg.jade.app_loop;
    let horizon = SimDuration::from_secs(3000);
    let results = harness.run(vec![
        RunSpec::new("managed", managed_cfg, horizon),
        RunSpec::new("unmanaged", SystemConfig::paper_unmanaged(), horizon),
    ]);
    harness.write_manifest("fig7", &results);
    for r in &results {
        Harness::print_record(&r.record);
    }
    let (managed, unmanaged) = (&results[0].out, &results[1].out);

    let cpu_managed = managed.series("cpu.app.smoothed");
    let cpu_unmanaged = unmanaged.series("cpu.app.smoothed");
    let servers = managed.series("replicas.app");

    println!(
        "{}",
        ascii_chart("CPU used, managed (moving average)", &cpu_managed, 8, 100)
    );
    println!(
        "{}",
        ascii_chart("CPU without Jade (moving average)", &cpu_unmanaged, 8, 100)
    );
    println!(
        "{}",
        ascii_chart("# of enterprise servers", &servers, 6, 100)
    );
    println!(
        "thresholds: max={} min={}",
        app_loop.max_threshold, app_loop.min_threshold
    );

    write_series("fig7_cpu_managed", &cpu_managed);
    write_series("fig7_cpu_unmanaged", &cpu_unmanaged);
    write_series("fig7_servers", &servers);

    // The paper's observation: unmanaged app-tier CPU stays moderate
    // because the database thrashes first.
    let peak_unmanaged_app = cpu_unmanaged.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let peak_unmanaged_db = unmanaged
        .series("cpu.db.smoothed")
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    println!(
        "unmanaged peaks: app tier {peak_unmanaged_app:.2} vs database {peak_unmanaged_db:.2} \
         (paper: app CPU remains moderate while the database saturates)"
    );
}
