//! Table 1: "Performance overhead" — the intrusivity of the Jade
//! management layer.
//!
//! Runs the J2EE application at a constant medium workload (80 clients, no
//! reconfiguration triggered) with and without Jade, and reports the four
//! rows of the paper's table: throughput, response time, CPU usage and
//! memory usage. The paper measured 12 vs 12 req/s, 89 vs 87 ms,
//! 12.74 vs 12.42 % CPU and 20.1 vs 17.5 % memory — i.e. no significant
//! CPU overhead and a slight memory overhead from the management
//! components deployed on every node.

use jade::config::SystemConfig;
use jade_bench::{Harness, RunSpec};
use jade_sim::SimDuration;

fn main() {
    println!("=== Table 1: performance overhead (intrusivity) ===");
    let harness = Harness::from_env();
    let horizon = SimDuration::from_secs(1200);
    let results = harness.run(vec![
        RunSpec::new("with Jade", SystemConfig::intrusivity(true, 80), horizon),
        RunSpec::new(
            "without Jade",
            SystemConfig::intrusivity(false, 80),
            horizon,
        ),
    ]);
    harness.write_manifest("table1", &results);
    let (managed, unmanaged) = (&results[0].out, &results[1].out);
    // Skip the first 120 s (warm-up) like the paper's steady-state runs.
    let (tp_j, rt_j, cpu_j, mem_j) = managed.intrusivity_row(120.0, 1200.0);
    let (tp_n, rt_n, cpu_n, mem_n) = unmanaged.intrusivity_row(120.0, 1200.0);

    println!("                      with Jade    without Jade   (paper: 12/12, 89/87, 12.74/12.42, 20.1/17.5)");
    println!("Throughput (req./s)   {tp_j:10.1}    {tp_n:10.1}");
    println!("Resp.time (ms)        {rt_j:10.0}    {rt_n:10.0}");
    println!("CPU usage (%)         {cpu_j:10.2}    {cpu_n:10.2}");
    println!("Memory usage (%)      {mem_j:10.1}    {mem_n:10.1}");

    let cpu_overhead = cpu_j - cpu_n;
    let mem_overhead = mem_j - mem_n;
    println!(
        "\noverheads: CPU {cpu_overhead:+.2} points (paper: +0.32), memory {mem_overhead:+.1} \
         points (paper: +2.6) — no significant CPU overhead, slight memory overhead from the \
         management components on every node"
    );
    assert!(
        managed.app.reconfig_log.is_empty(),
        "intrusivity runs must not reconfigure"
    );
}
