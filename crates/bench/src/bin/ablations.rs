//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation runs a compressed version of the paper's ramp (same
//! shape, 3× faster, 1000 s) with one knob changed, and reports replica
//! churn (number of reconfigurations), mean latency, and peak replicas:
//!
//! 1. **Moving-average window** (paper §5.2: 60 s app / 90 s db, "the
//!    strength of this average is experimentally fixed") — without
//!    smoothing the loops chase CPU artifacts.
//! 2. **Inhibition window** (paper §5.2: one minute, "to prevent
//!    oscillations").
//! 3. **Load-balancing policy** (paper §2: Random vs Round-Robin).
//! 4. **Adaptive thresholds** (paper §7 future work).
//! 5. **Latency-driven provisioning** (paper §4.2's response-time sensor).

use jade::config::SystemConfig;
use jade::experiment::{run_experiment, ExperimentOutput};
use jade::system::ManagedTier;
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;
use jade_tiers::BalancePolicy;

fn fast_ramp() -> WorkloadRamp {
    WorkloadRamp {
        base_clients: 80,
        peak_clients: 500,
        step_clients: 42,
        step_interval: SimDuration::from_secs(30),
        warmup: SimDuration::from_secs(60),
        plateau: SimDuration::from_secs(120),
    }
}

fn base_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = fast_ramp();
    cfg
}

struct Row {
    label: String,
    out: ExperimentOutput,
}

fn run(label: &str, cfg: SystemConfig) -> Row {
    Row {
        label: label.to_owned(),
        out: run_experiment(cfg, SimDuration::from_secs(1000)),
    }
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n--- {title} ---");
    println!(
        "{:<38} {:>8} {:>10} {:>9} {:>9} {:>8}",
        "configuration", "reconfig", "latency_ms", "peak_db", "peak_app", "failed"
    );
    for r in rows {
        println!(
            "{:<38} {:>8} {:>10.0} {:>9} {:>9} {:>8}",
            r.label,
            r.out.metrics.counter("reconfigurations"),
            r.out.mean_latency_ms(),
            r.out.max_replicas(ManagedTier::Database),
            r.out.max_replicas(ManagedTier::Application),
            r.out.app.stats.total_failed(),
        );
    }
}

fn main() {
    println!("=== Ablations (compressed ramp, 1000 s) ===");

    // 1. Moving-average window.
    let mut rows = Vec::new();
    for window_s in [1u64, 15, 60, 180] {
        let mut cfg = base_cfg();
        cfg.jade.app_loop.window = SimDuration::from_secs(window_s);
        cfg.jade.db_loop.window = SimDuration::from_secs((window_s * 3) / 2);
        rows.push(run(&format!("smoothing window {window_s}s (db x1.5)"), cfg));
    }
    print_rows("ablation 1: moving-average strength", &rows);
    println!("(expected: very short windows over-react to artifacts — more reconfigurations)");

    // 2. Inhibition window.
    let mut rows = Vec::new();
    for inhibition_s in [0u64, 10, 60, 180] {
        let mut cfg = base_cfg();
        cfg.jade.inhibition = SimDuration::from_secs(inhibition_s);
        rows.push(run(&format!("inhibition {inhibition_s}s"), cfg));
    }
    print_rows("ablation 2: inhibition window", &rows);
    println!("(expected: no inhibition => oscillation-prone; too long => sluggish scaling)");

    // 3. Load-balancing policy.
    let mut rows = Vec::new();
    for (name, policy) in [
        ("round-robin", BalancePolicy::RoundRobin),
        ("random", BalancePolicy::Random),
    ] {
        let mut cfg = base_cfg();
        cfg.description.application.balance_policy = policy;
        rows.push(run(&format!("app-tier balancing: {name}"), cfg));
    }
    print_rows("ablation 3: load-balancing policy", &rows);

    // 4. Adaptive thresholds (paper §7). A constant load is placed so
    // that one database backend sits *above* the max threshold while two
    // sit *below* the min threshold — a mis-calibrated band that makes
    // the static reactor oscillate add/remove forever. The adaptive
    // reactor detects the reversals and widens the band until it settles.
    let mut rows = Vec::new();
    for adaptive in [false, true] {
        let mut cfg = base_cfg();
        cfg.ramp = WorkloadRamp::constant(240);
        cfg.jade.adaptive = adaptive;
        cfg.jade.db_loop.min_threshold = 0.50;
        cfg.jade.db_loop.max_threshold = 0.65;
        rows.push(run(
            &format!("oscillating db band 0.50..0.65, adaptive={adaptive}"),
            cfg,
        ));
    }
    print_rows("ablation 4: adaptive thresholds", &rows);
    println!("(expected: the static band oscillates; adaptation widens it and settles)");

    // 5. Sensor driver: CPU vs client response time.
    let mut rows = Vec::new();
    for latency_driver in [false, true] {
        let mut cfg = base_cfg();
        cfg.jade.latency_driver = latency_driver;
        let label = if latency_driver {
            "latency-driven provisioning"
        } else {
            "cpu-driven provisioning"
        };
        rows.push(run(label, cfg));
    }
    print_rows("ablation 5: sensor driver (paper §4.2)", &rows);

    // 6. Client navigation model: i.i.d. weighted mix vs the RUBiS
    // transition-table state machine (session correlation).
    let mut rows = Vec::new();
    for markov in [false, true] {
        let mut cfg = base_cfg();
        cfg.markov_navigation = markov;
        let label = if markov {
            "markov transition-table navigation"
        } else {
            "i.i.d. weighted mix"
        };
        rows.push(run(label, cfg));
    }
    print_rows("ablation 6: client navigation model", &rows);
    println!("(expected: similar macroscopic behaviour — the chain's stationary mix matches)");

    // 7. Policy arbitration (paper §7) under the oscillating band of
    // ablation 4: serialization + conflict coalescing also damp churn.
    let mut rows = Vec::new();
    for arbitration in [false, true] {
        let mut cfg = base_cfg();
        cfg.ramp = WorkloadRamp::constant(240);
        cfg.jade.arbitration = arbitration;
        cfg.jade.db_loop.min_threshold = 0.50;
        cfg.jade.db_loop.max_threshold = 0.65;
        rows.push(run(
            &format!("oscillating band, arbitration={arbitration}"),
            cfg,
        ));
    }
    print_rows("ablation 7: policy arbitration (paper §7)", &rows);
}
