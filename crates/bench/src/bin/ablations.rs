//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation runs a compressed version of the paper's ramp (same
//! shape, 3× faster, 1000 s) with one knob changed, and reports replica
//! churn (number of reconfigurations), mean latency, and peak replicas:
//!
//! 1. **Moving-average window** (paper §5.2: 60 s app / 90 s db, "the
//!    strength of this average is experimentally fixed") — without
//!    smoothing the loops chase CPU artifacts.
//! 2. **Inhibition window** (paper §5.2: one minute, "to prevent
//!    oscillations").
//! 3. **Load-balancing policy** (paper §2: Random vs Round-Robin).
//! 4. **Adaptive thresholds** (paper §7 future work).
//! 5. **Latency-driven provisioning** (paper §4.2's response-time sensor).
//!
//! All configurations go through the shared harness in one batch, so the
//! whole study parallelises across `--jobs` workers.

use jade::config::SystemConfig;
use jade::system::ManagedTier;
use jade_bench::{Harness, RunResult, RunSpec};
use jade_rubis::WorkloadRamp;
use jade_sim::SimDuration;
use jade_tiers::BalancePolicy;

const HORIZON_SECS: u64 = 1000;

fn fast_ramp() -> WorkloadRamp {
    WorkloadRamp {
        base_clients: 80,
        peak_clients: 500,
        step_clients: 42,
        step_interval: SimDuration::from_secs(30),
        warmup: SimDuration::from_secs(60),
        plateau: SimDuration::from_secs(120),
    }
}

fn base_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::paper_managed();
    cfg.ramp = fast_ramp();
    cfg
}

struct Section {
    title: &'static str,
    note: Option<&'static str>,
    specs: Vec<RunSpec>,
}

fn spec(label: String, cfg: SystemConfig) -> RunSpec {
    RunSpec::new(label, cfg, SimDuration::from_secs(HORIZON_SECS))
}

fn sections() -> Vec<Section> {
    let mut sections = Vec::new();

    // 1. Moving-average window.
    let mut specs = Vec::new();
    for window_s in [1u64, 15, 60, 180] {
        let mut cfg = base_cfg();
        cfg.jade.app_loop.window = SimDuration::from_secs(window_s);
        cfg.jade.db_loop.window = SimDuration::from_secs((window_s * 3) / 2);
        specs.push(spec(format!("smoothing window {window_s}s (db x1.5)"), cfg));
    }
    sections.push(Section {
        title: "ablation 1: moving-average strength",
        note: Some(
            "(expected: very short windows over-react to artifacts — more reconfigurations)",
        ),
        specs,
    });

    // 2. Inhibition window.
    let mut specs = Vec::new();
    for inhibition_s in [0u64, 10, 60, 180] {
        let mut cfg = base_cfg();
        cfg.jade.inhibition = SimDuration::from_secs(inhibition_s);
        specs.push(spec(format!("inhibition {inhibition_s}s"), cfg));
    }
    sections.push(Section {
        title: "ablation 2: inhibition window",
        note: Some("(expected: no inhibition => oscillation-prone; too long => sluggish scaling)"),
        specs,
    });

    // 3. Load-balancing policy.
    let mut specs = Vec::new();
    for (name, policy) in [
        ("round-robin", BalancePolicy::RoundRobin),
        ("random", BalancePolicy::Random),
    ] {
        let mut cfg = base_cfg();
        cfg.description.application.balance_policy = policy;
        specs.push(spec(format!("app-tier balancing: {name}"), cfg));
    }
    sections.push(Section {
        title: "ablation 3: load-balancing policy",
        note: None,
        specs,
    });

    // 4. Adaptive thresholds (paper §7). A constant load is placed so
    // that one database backend sits *above* the max threshold while two
    // sit *below* the min threshold — a mis-calibrated band that makes
    // the static reactor oscillate add/remove forever. The adaptive
    // reactor detects the reversals and widens the band until it settles.
    let mut specs = Vec::new();
    for adaptive in [false, true] {
        let mut cfg = base_cfg();
        cfg.ramp = WorkloadRamp::constant(240);
        cfg.jade.adaptive = adaptive;
        cfg.jade.db_loop.min_threshold = 0.50;
        cfg.jade.db_loop.max_threshold = 0.65;
        specs.push(spec(
            format!("oscillating db band 0.50..0.65, adaptive={adaptive}"),
            cfg,
        ));
    }
    sections.push(Section {
        title: "ablation 4: adaptive thresholds",
        note: Some("(expected: the static band oscillates; adaptation widens it and settles)"),
        specs,
    });

    // 5. Sensor driver: CPU vs client response time.
    let mut specs = Vec::new();
    for latency_driver in [false, true] {
        let mut cfg = base_cfg();
        cfg.jade.latency_driver = latency_driver;
        let label = if latency_driver {
            "latency-driven provisioning"
        } else {
            "cpu-driven provisioning"
        };
        specs.push(spec(label.to_owned(), cfg));
    }
    sections.push(Section {
        title: "ablation 5: sensor driver (paper §4.2)",
        note: None,
        specs,
    });

    // 6. Client navigation model: i.i.d. weighted mix vs the RUBiS
    // transition-table state machine (session correlation).
    let mut specs = Vec::new();
    for markov in [false, true] {
        let mut cfg = base_cfg();
        cfg.markov_navigation = markov;
        let label = if markov {
            "markov transition-table navigation"
        } else {
            "i.i.d. weighted mix"
        };
        specs.push(spec(label.to_owned(), cfg));
    }
    sections.push(Section {
        title: "ablation 6: client navigation model",
        note: Some(
            "(expected: similar macroscopic behaviour — the chain's stationary mix matches)",
        ),
        specs,
    });

    // 7. Policy arbitration (paper §7) under the oscillating band of
    // ablation 4: serialization + conflict coalescing also damp churn.
    let mut specs = Vec::new();
    for arbitration in [false, true] {
        let mut cfg = base_cfg();
        cfg.ramp = WorkloadRamp::constant(240);
        cfg.jade.arbitration = arbitration;
        cfg.jade.db_loop.min_threshold = 0.50;
        cfg.jade.db_loop.max_threshold = 0.65;
        specs.push(spec(
            format!("oscillating band, arbitration={arbitration}"),
            cfg,
        ));
    }
    sections.push(Section {
        title: "ablation 7: policy arbitration (paper §7)",
        note: None,
        specs,
    });

    sections
}

fn print_rows(title: &str, rows: &[RunResult]) {
    println!("\n--- {title} ---");
    println!(
        "{:<38} {:>8} {:>10} {:>9} {:>9} {:>8}",
        "configuration", "reconfig", "latency_ms", "peak_db", "peak_app", "failed"
    );
    for r in rows {
        println!(
            "{:<38} {:>8} {:>10.0} {:>9} {:>9} {:>8}",
            r.record.label,
            r.out.metrics.counter("reconfigurations"),
            r.record.mean_latency_ms,
            r.out.max_replicas(ManagedTier::Database),
            r.out.max_replicas(ManagedTier::Application),
            r.record.failed,
        );
    }
}

fn main() {
    println!("=== Ablations (compressed ramp, {HORIZON_SECS} s) ===");
    let harness = Harness::from_env();
    let sections = sections();

    // One flat batch keeps all workers busy across section boundaries.
    let all_specs: Vec<RunSpec> = sections.iter().flat_map(|s| s.specs.clone()).collect();
    let mut results = harness.run(all_specs);
    harness.write_manifest("ablations", &results);

    let mut rest = results.drain(..);
    for section in &sections {
        let rows: Vec<RunResult> = rest.by_ref().take(section.specs.len()).collect();
        print_rows(section.title, &rows);
        if let Some(note) = section.note {
            println!("{note}");
        }
    }
}
