//! Figure 6: "Behavior of the database tier".
//!
//! Plots the database tier's smoothed CPU usage and backend count under
//! the managed run, against the same workload without Jade (where the
//! single MySQL saturates and thrashes), with the min/max thresholds.

use jade::config::SystemConfig;
use jade_bench::{ascii_chart, write_series, Harness, RunSpec};
use jade_sim::SimDuration;

fn main() {
    println!("=== Figure 6: behavior of the database tier ===");
    let harness = Harness::from_env();
    let managed_cfg = SystemConfig::paper_managed();
    let db_loop = managed_cfg.jade.db_loop;
    let horizon = SimDuration::from_secs(3000);
    // Both runs share stream 0: under `--seed` they keep a common seed,
    // so managed vs unmanaged stays a common-random-numbers comparison.
    let results = harness.run(vec![
        RunSpec::new("managed", managed_cfg, horizon),
        RunSpec::new("unmanaged", SystemConfig::paper_unmanaged(), horizon),
    ]);
    harness.write_manifest("fig6", &results);
    for r in &results {
        Harness::print_record(&r.record);
    }
    let (managed, unmanaged) = (&results[0].out, &results[1].out);

    let cpu_smoothed = managed.series("cpu.db.smoothed");
    let cpu_unmanaged = unmanaged.series("cpu.db.smoothed");
    let backends = managed.series("replicas.db");

    println!(
        "{}",
        ascii_chart("CPU used, managed (moving average)", &cpu_smoothed, 8, 100)
    );
    println!(
        "{}",
        ascii_chart("CPU without Jade (moving average)", &cpu_unmanaged, 8, 100)
    );
    println!(
        "{}",
        ascii_chart("# of database backends", &backends, 6, 100)
    );
    println!(
        "thresholds: max={} min={}",
        db_loop.max_threshold, db_loop.min_threshold
    );

    write_series("fig6_cpu_managed", &cpu_smoothed);
    write_series("fig6_cpu_unmanaged", &cpu_unmanaged);
    write_series("fig6_backends", &backends);

    // Shape checks mirrored from the paper's discussion.
    let peak_unmanaged = cpu_unmanaged.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let peak_managed_sustained = {
        // Managed CPU should mostly stay under the max threshold after a
        // short excursion that triggers each reconfiguration.
        let over = cpu_smoothed
            .iter()
            .filter(|&&(_, v)| v > db_loop.max_threshold + 0.1)
            .count();
        over as f64 / cpu_smoothed.len().max(1) as f64
    };
    println!(
        "unmanaged CPU saturates at {:.2} (paper: saturation ~1.0); managed spends {:.1}% of the \
         run more than 0.1 above the max threshold (paper: brief excursions only)",
        peak_unmanaged,
        peak_managed_sustained * 100.0
    );
}
