//! Figure 9: "Response time with Jade".
//!
//! The same ramp against the managed system: Jade's dynamic provisioning
//! keeps the client-perceived response time stable (the paper reports a
//! ~590 ms run-wide average vs 10.42 s unmanaged).

use jade::config::SystemConfig;
use jade_bench::{ascii_chart, write_series, Harness, RunSpec};
use jade_sim::SimDuration;

fn main() {
    println!("=== Figure 9: response time with Jade ===");
    let harness = Harness::from_env();
    let results = harness.run(vec![RunSpec::new(
        "managed",
        SystemConfig::paper_managed(),
        SimDuration::from_secs(3000),
    )]);
    harness.write_manifest("fig9", &results);
    Harness::print_record(&results[0].record);
    let out = &results[0].out;

    let latency: Vec<(f64, f64)> = out
        .app
        .stats
        .latency_series()
        .into_iter()
        .map(|(t, v)| (t.as_secs_f64(), v))
        .collect();
    let workload = out.series("clients");
    println!("{}", ascii_chart("Latency (ms)", &latency, 10, 100));
    println!("{}", ascii_chart("Workload (# clients)", &workload, 5, 100));
    write_series("fig9_latency_ms", &latency);
    write_series("fig9_workload", &workload);

    println!(
        "mean latency {:.0} ms (paper: ~590 ms average, stable across the ramp)",
        out.mean_latency_ms()
    );
}
